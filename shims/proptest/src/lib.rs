//! Minimal stand-in for `proptest`: random-sampling property tests.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, range strategies over
//! the numeric primitives, tuple strategies, [`Just`], `prop_oneof!`,
//! `prop::collection::vec`, `prop_map` / `prop_filter` combinators, and
//! the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Compared to real proptest there is no shrinking and no failure
//! persistence: a failing case panics with the sampled inputs' Debug
//! representation in the message. Sampling is deterministic per test
//! (seeded from the test's module path and name).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic source of randomness for strategies.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seed from a test name; the same test always replays the same cases.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.rng.gen_range(0..n)
    }
}

/// Error raised by a test case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: resample, don't fail.
    Reject,
    /// `prop_assert!` failed: the property is violated.
    Fail(String),
}

/// How many cases to run.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A source of random values of one type.
///
/// `sample` returns `None` when the draw was rejected (by a filter);
/// the driver then retries with fresh randomness.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value, or `None` on rejection.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Reject generated values failing `pred`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        pred: F,
    ) -> FilterStrategy<Self, F>
    where
        Self: Sized,
    {
        FilterStrategy { inner: self, pred }
    }

    /// Type-erase for heterogeneous unions (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> Option<V>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> Option<V> {
        self.0.sample_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// `prop_map` result.
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// `prop_filter` result.
pub struct FilterStrategy<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.pred)(v))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> Option<V> {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                Some(self.start.wrapping_add(rng.below(span) as $t))
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty strategy range");
                let span = (e as u128).wrapping_sub(s as u128) as u64;
                Some(s.wrapping_add((rng.below(span.saturating_add(1))) as $t))
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                Some(self.start + (self.end - self.start) * rng.unit() as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (s, e) = (*self.start(), *self.end());
                Some(s + (e - s) * rng.unit() as $t)
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident : $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

impl Strategy for bool {
    type Value = bool;
    fn sample(&self, _rng: &mut TestRng) -> Option<bool> {
        Some(*self)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// `collection::vec` result.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.len.clone().sample(rng)?;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                // Give each slot a few retries before rejecting the vector.
                let mut item = None;
                for _ in 0..16 {
                    item = self.element.sample(rng);
                    if item.is_some() {
                        break;
                    }
                }
                out.push(item?);
            }
            Some(out)
        }
    }
}

/// The glob-import surface: traits, types, and macros.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Driver used by the generated tests; not public API.
pub fn __max_attempts(cases: u32) -> u32 {
    cases.saturating_mul(64).max(1024)
}

/// Define property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let __max = $crate::__max_attempts(__config.cases);
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __max,
                        "proptest shim: exceeded {} sampling attempts in {}",
                        __max,
                        stringify!($name)
                    );
                    $(
                        let $pat = match $crate::Strategy::sample(&($strat), &mut __rng) {
                            Some(__v) => __v,
                            None => continue,
                        };
                    )+
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            Ok(())
                        })();
                    match __outcome {
                        Ok(()) => __accepted += 1,
                        Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!("proptest case failed: {}", __msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a property inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}",
                concat!("assertion failed: ", stringify!($cond))
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Discard the current case (resample) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($item)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y={y}");
        }

        #[test]
        fn filters_reject(v in (0u32..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn maps_apply(s in (1u32..5).prop_map(|v| v * 10)) {
            prop_assert!((10..50).contains(&s));
        }

        #[test]
        fn oneof_and_vec(
            choice in prop_oneof![Just(1u8), Just(2u8)],
            items in prop::collection::vec(0u8..5, 1..10),
        ) {
            prop_assert!(choice == 1 || choice == 2);
            prop_assert!(!items.is_empty() && items.len() < 10);
            prop_assume!(!items.is_empty());
        }
    }
}
