//! Minimal stand-in for `serde_json`, backed by the in-repo serde shim's
//! [`Value`] tree: a recursive-descent JSON parser plus compact and
//! pretty printers. Object keys are sorted (BTreeMap), so output is
//! byte-deterministic for a given value — which the workspace's
//! determinism tests rely on.

pub use serde::{Error, Map, Number, Value};

/// Serialize a value into its JSON tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Rebuild a typed value from a JSON tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON document into a typed value.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::deserialize(&value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_finite() {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    // Keep a trailing ".0" so floats stay floats on re-parse.
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&format!("{v}"));
                }
            } else {
                // JSON has no NaN/inf; serde_json emits null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn utf8_width(lead: u8) -> usize {
    match lead {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 1,
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a JSON document into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            m.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(m)),
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pair handling.
                        if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(Error::custom("lone high surrogate"));
                            }
                            let lo = self.hex4()?;
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                            s.push(
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("bad surrogate pair"))?,
                            );
                        } else {
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("bad unicode escape"))?,
                            );
                        }
                    }
                    _ => return Err(Error::custom("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(Error::custom("truncated UTF-8 sequence"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::custom("truncated unicode escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::custom("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_document() {
        let text = r#"{"a": [1, 2.5, -3], "b": {"nested": true}, "c": null, "d": "x\ny"}"#;
        let v = parse(text).unwrap();
        let printed = to_string(&v).unwrap();
        let v2 = parse(&printed).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn pretty_printer_is_stable() {
        let v = parse(r#"{"b": 1, "a": [true, false]}"#).unwrap();
        let a = to_string_pretty(&v).unwrap();
        let b = to_string_pretty(&v).unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\n"));
    }

    #[test]
    fn floats_keep_roundtrip_fidelity() {
        let v = parse("[0.1, 1.0, 1e-9, 123456789.25]").unwrap();
        let printed = to_string(&v).unwrap();
        let v2 = parse(&printed).unwrap();
        assert_eq!(v, v2);
    }
}
