//! Minimal stand-in for the `rand` crate (offline build environment).
//!
//! Provides [`StdRng`] (xoshiro256++ under the hood — the exact stream
//! differs from upstream `rand`, which is fine because every consumer in
//! this workspace only requires *self-consistent* determinism), plus the
//! [`Rng`] / [`SeedableRng`] trait surface the workspace uses:
//! `gen`, `gen_range`, `gen_bool`.

/// Sampling support for `Rng::gen`.
pub trait Standard: Sized {
    /// Draw a uniformly-distributed value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Rejection sampling for unbiased draws.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128 - start as u128) as u64;
                if span == u64::MAX {
                    return <u64 as Standard>::from_rng(rng) as $t;
                }
                let span = span + 1;
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

macro_rules! sint_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return ((self.start as i128) + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
sint_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u: f64 = Standard::from_rng(rng);
                self.start + (self.end - self.start) * (u as $t)
            }
        }
    )*};
}
float_range!(f32, f64);

/// The subset of `rand::Rng` this workspace uses.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly-distributed value (`f64` in `[0,1)`, full-width ints).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        let u: f64 = self.gen();
        u < p
    }
}

/// The subset of `rand::SeedableRng` this workspace uses.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic PRNG (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(mut seed: u64) -> Self {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut seed);
        }
        // All-zero state would be degenerate; splitmix64 never yields it
        // for all four words, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Self { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self::from_state(seed)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Named RNGs.
pub mod rngs {
    pub use super::StdRng;
}

/// The commonly-glob-imported surface.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let (xa, xb, xc): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = StdRng::seed_from_u64(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / f64::from(n) - 0.5).abs() < 0.01);
    }
}
