//! Minimal, self-contained stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so this shim provides the small slice of serde's surface the workspace
//! actually uses: `Serialize`/`Deserialize` traits driven by a JSON-like
//! [`Value`] data model, plus derive macros (re-exported from
//! `serde_derive`) supporting named structs, tuple structs, enums
//! (externally tagged and `#[serde(untagged)]`), and the attributes
//! `#[serde(default)]`, `#[serde(default = "path")]`, and
//! `#[serde(skip)]`.
//!
//! Unlike real serde there is no streaming serializer: serialization goes
//! through the in-memory [`Value`] tree, which is plenty for scenario
//! files and experiment reports.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number, kept in its widest lossless representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

impl Number {
    /// Lossy conversion to `f64`.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }

    /// Exact conversion to `u64` when representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(v) => Some(v),
            Number::I64(v) => u64::try_from(v).ok(),
            Number::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// Exact conversion to `i64` when representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U64(v) => i64::try_from(v).ok(),
            Number::I64(v) => Some(v),
            Number::F64(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F64(_) => None,
        }
    }
}

/// Object representation: sorted keys make serialization deterministic.
pub type Map = BTreeMap<String, Value>;

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a [`Value`].
pub trait Serialize {
    /// Build the value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent entirely.
    ///
    /// `None` means "absence is an error" (unless the field carries a
    /// `#[serde(default)]`); `Option<T>` overrides this to yield
    /// `Some(None)`, matching serde's implicit-optional semantics.
    fn deserialize_missing() -> Option<Self> {
        None
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| {
                            Error::custom(format!(
                                "number {n:?} does not fit in {}",
                                stringify!($t)
                            ))
                        }),
                    other => Err(Error::custom(format!(
                        "expected {}, found {}",
                        stringify!($t),
                        other.type_name()
                    ))),
                }
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U64(v as u64))
                } else {
                    Value::Number(Number::I64(v))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|x| <$t>::try_from(x).ok())
                        .ok_or_else(|| {
                            Error::custom(format!(
                                "number {n:?} does not fit in {}",
                                stringify!($t)
                            ))
                        }),
                    other => Err(Error::custom(format!(
                        "expected {}, found {}",
                        stringify!($t),
                        other.type_name()
                    ))),
                }
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected f64, found {}", v.type_name())))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, found {}", v.type_name())))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
    fn deserialize_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", v.type_name())))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", v.type_name())))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, found {}", items.len())))
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident : $idx:tt),+) with $n:expr;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| {
                    Error::custom(format!("expected {}-tuple array, found {}", $n, v.type_name()))
                })?;
                if a.len() != $n {
                    return Err(Error::custom(format!(
                        "expected array of length {}, found {}",
                        $n,
                        a.len()
                    )));
                }
                Ok(($($t::deserialize(&a[$idx])?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

/// Map keys must render to / parse from JSON object keys (strings).
pub trait JsonKey: Sized + Ord {
    /// Render the key.
    fn to_key(&self) -> String;
    /// Parse the key back.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

macro_rules! json_key_num {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse()
                    .map_err(|_| Error::custom(format!("bad {} map key: {s:?}", stringify!($t))))
            }
        }
    )*};
}
json_key_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}
impl<K: JsonKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", v.type_name())))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: JsonKey + std::hash::Hash, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn serialize(&self) -> Value {
        let mut sorted: Vec<(&K, &V)> = self.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            sorted
                .into_iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}
impl<K: JsonKey + std::hash::Hash, V: Deserialize> Deserialize for std::collections::HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", v.type_name())))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Helpers used by the derive macro expansions
// ---------------------------------------------------------------------------

/// Support routines referenced by `serde_derive` output. Not public API.
pub mod helpers {
    use super::{Deserialize, Error, Map, Value};

    /// The object map or a typed error.
    pub fn as_object<'v>(v: &'v Value, ty: &str) -> Result<&'v Map, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("{ty}: expected object")))
    }

    /// A required field: absent is an error unless the target type opts
    /// into implicit-missing (`Option<T>`).
    pub fn req_field<T: Deserialize>(m: &Map, field: &str, ty: &str) -> Result<T, Error> {
        match m.get(field) {
            Some(v) => T::deserialize(v).map_err(|e| Error::custom(format!("{ty}.{field}: {e}"))),
            None => T::deserialize_missing()
                .ok_or_else(|| Error::custom(format!("{ty}: missing field `{field}`"))),
        }
    }

    /// An optional field: `Ok(None)` when absent, parse error when present
    /// but malformed.
    pub fn opt_field<T: Deserialize>(m: &Map, field: &str, ty: &str) -> Result<Option<T>, Error> {
        match m.get(field) {
            Some(v) => T::deserialize(v)
                .map(Some)
                .map_err(|e| Error::custom(format!("{ty}.{field}: {e}"))),
            None => Ok(None),
        }
    }

    /// The single `tag: payload` entry of an externally-tagged enum value.
    pub fn single_entry<'v>(v: &'v Value, ty: &str) -> Result<(&'v str, &'v Value), Error> {
        let m = as_object(v, ty)?;
        if m.len() != 1 {
            return Err(Error::custom(format!(
                "{ty}: expected single-key variant object, found {} keys",
                m.len()
            )));
        }
        let (k, v) = m.iter().next().expect("len checked");
        Ok((k.as_str(), v))
    }

    /// Error for an unrecognized enum tag.
    pub fn unknown_variant(ty: &str, tag: &str) -> Error {
        Error::custom(format!("{ty}: unknown variant `{tag}`"))
    }

    /// The fixed-length payload array of a tuple variant / tuple struct.
    pub fn tuple_payload<'v>(v: &'v Value, len: usize, ty: &str) -> Result<&'v [Value], Error> {
        let a = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("{ty}: expected array payload")))?;
        if a.len() != len {
            return Err(Error::custom(format!(
                "{ty}: expected array of length {len}, found {}",
                a.len()
            )));
        }
        Ok(a)
    }
}
