//! Minimal stand-in for `rayon`, covering the one idiom this workspace
//! uses: `collection.par_iter().map(f).collect()` (and the `into_par_iter`
//! variant). Unlike a sequential passthrough this shim really fans the
//! mapped closure out across `std::thread::scope` workers, preserving
//! input order in the collected output — the experiment harnesses run
//! dozens of independent simulations per figure and benefit directly.

use std::sync::Mutex;

/// Create a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Convert into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Create a parallel iterator over references.
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a reference).
    type Item: Send;
    /// Borrow into a [`ParIter`].
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        self.as_slice().par_iter()
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map every element through `f` (evaluated in parallel at collect).
    pub fn map<O, F>(self, f: F) -> ParMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every element, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _: Vec<()> = parallel_map(self.items, &|x| f(x));
    }
}

/// The result of [`ParIter::map`].
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T, O, F> ParMap<T, F>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    /// Evaluate the map across worker threads and collect in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

fn parallel_map<T: Send, O: Send, F: Fn(T) -> O + Sync>(items: Vec<T>, f: &F) -> Vec<O> {
    let len = items.len();
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(len);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work = Mutex::new(items.into_iter().enumerate());
    let done: Mutex<Vec<(usize, O)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = work.lock().expect("work queue poisoned").next();
                let Some((idx, item)) = next else { break };
                let out = f(item);
                done.lock().expect("results poisoned").push((idx, out));
            });
        }
    });
    let mut results = done.into_inner().expect("results poisoned");
    results.sort_by_key(|&(idx, _)| idx);
    results.into_iter().map(|(_, out)| out).collect()
}

/// The commonly-glob-imported surface.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_by_value() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|x| format!("v{x}"))
            .collect();
        assert_eq!(out, vec!["v1", "v2", "v3"]);
    }

    #[test]
    fn for_each_visits_everything() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..257).collect();
        items.par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
