//! Minimal stand-in for `rayon`, covering the one idiom this workspace
//! uses: `collection.par_iter().map(f).collect()` (and the `into_par_iter`
//! variant). Unlike a sequential passthrough this shim really fans the
//! mapped closure out across `std::thread::scope` workers, preserving
//! input order in the collected output — the experiment harnesses run
//! dozens of independent simulations per figure and benefit directly.

use std::sync::Mutex;

/// Create a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Convert into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Create a parallel iterator over references.
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a reference).
    type Item: Send;
    /// Borrow into a [`ParIter`].
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    fn par_iter(&'data self) -> ParIter<&'data T> {
        self.as_slice().par_iter()
    }
}

/// A materialized parallel iterator.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map every element through `f` (evaluated in parallel at collect).
    pub fn map<O, F>(self, f: F) -> ParMap<T, F>
    where
        O: Send,
        F: Fn(T) -> O + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every element, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let _: Vec<()> = parallel_map(self.items, &|x| f(x));
    }
}

/// The result of [`ParIter::map`].
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T, O, F> ParMap<T, F>
where
    T: Send,
    O: Send,
    F: Fn(T) -> O + Sync,
{
    /// Evaluate the map across worker threads and collect in input order.
    pub fn collect<C: FromIterator<O>>(self) -> C {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

fn parallel_map<T: Send, O: Send, F: Fn(T) -> O + Sync>(items: Vec<T>, f: &F) -> Vec<O> {
    let len = items.len();
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(len);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work = Mutex::new(items.into_iter().enumerate());
    let done: Mutex<Vec<(usize, O)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = work.lock().expect("work queue poisoned").next();
                let Some((idx, item)) = next else { break };
                let out = f(item);
                done.lock().expect("results poisoned").push((idx, out));
            });
        }
    });
    let mut results = done.into_inner().expect("results poisoned");
    results.sort_by_key(|&(idx, _)| idx);
    results.into_iter().map(|(_, out)| out).collect()
}

/// Run two closures, potentially in parallel, and return both results
/// (`rayon::join` semantics: `a` on the calling thread, `b` on a scoped
/// worker). Panics propagate to the caller once both sides have been
/// joined.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = match hb.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// A fork-join scope handed to the closure passed to [`scope`]; spawned
/// tasks may borrow from the enclosing stack frame (`'scope` outlives
/// every task) and all complete before `scope` returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task into the scope. Unlike real rayon the task body
    /// takes no argument (no nested-scope handle); nest by calling
    /// [`scope`] again inside the task.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(f);
    }
}

/// `rayon::scope` semantics on OS threads: run `f` with a [`Scope`],
/// block until every spawned task finishes, and propagate the first
/// panic. One OS thread per spawn — callers in this workspace fan out a
/// handful of long-running workers, not thousands of tasks.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// The commonly-glob-imported surface.
pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_by_value() {
        let out: Vec<String> = vec![1, 2, 3]
            .into_par_iter()
            .map(|x| format!("v{x}"))
            .collect();
        assert_eq!(out, vec!["v1", "v2", "v3"]);
    }

    #[test]
    fn for_each_visits_everything() {
        let count = AtomicUsize::new(0);
        let items: Vec<usize> = (0..257).collect();
        items.par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "b".repeat(3));
        assert_eq!(a, 4);
        assert_eq!(b, "bbb");
    }

    #[test]
    fn join_allows_borrowing_the_stack() {
        let data: Vec<u64> = (0..100).collect();
        let (front, back) = super::join(
            || data[..50].iter().sum::<u64>(),
            || data[50..].iter().sum::<u64>(),
        );
        assert_eq!(front + back, data.iter().sum());
    }

    #[test]
    fn join_propagates_panics_from_the_spawned_side() {
        let caught = std::panic::catch_unwind(|| {
            super::join(|| 1, || panic!("worker exploded"));
        });
        assert!(caught.is_err());
    }

    #[test]
    fn scope_runs_all_spawns_before_returning() {
        let count = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn scope_spawns_can_borrow_and_mutate_disjoint_slices() {
        let mut data = vec![0u64; 64];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(16).collect();
        super::scope(|s| {
            for (i, chunk) in chunks.into_iter().enumerate() {
                s.spawn(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (i * 16 + j) as u64;
                    }
                });
            }
        });
        assert_eq!(data, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn scopes_nest() {
        let total = AtomicUsize::new(0);
        super::scope(|outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    super::scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn scope_returns_the_closure_value() {
        let v = super::scope(|s| {
            s.spawn(|| {});
            7
        });
        assert_eq!(v, 7);
    }
}
