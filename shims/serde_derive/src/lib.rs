//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros
//! for the in-repo serde shim.
//!
//! No `syn`/`quote`: the item is parsed directly from the
//! [`proc_macro::TokenStream`] and the impl is emitted as a string. The
//! supported shapes are exactly what this workspace uses:
//!
//! * structs with named fields (`#[serde(default)]`,
//!   `#[serde(default = "path")]`, `#[serde(skip)]` honoured per field;
//!   container-level `#[serde(default)]` marks every field defaultable);
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! * enums with unit / newtype / tuple / struct variants, externally
//!   tagged like serde (`"Unit"` or `{"Variant": payload}`);
//! * `#[serde(untagged)]` enums with newtype variants (first variant
//!   that deserializes wins).
//!
//! Generic types are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Clone)]
struct SerdeAttrs {
    /// `Some("")` for bare `default`, `Some(path)` for `default = "path"`.
    default: Option<String>,
    skip: bool,
    untagged: bool,
}

struct Field {
    name: String,
    attrs: SerdeAttrs,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    untagged: bool,
    /// Container-level `#[serde(default)]`: absent fields fall back to
    /// the corresponding field of `Self::default()`.
    container_default: bool,
    kind: Kind,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});")
                .parse()
                .expect("literal")
        }
    };
    let code = if ser {
        gen_serialize(&item)
    } else {
        gen_deserialize(&item)
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive generated invalid code: {e:?}\");")
            .parse()
            .expect("literal")
    })
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut container = SerdeAttrs::default();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    merge_attr(&g.stream(), &mut container);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if *id.to_string() == *"pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if *id.to_string() == *"struct" || *id.to_string() == *"enum" => {
                let is_struct = id.to_string() == "struct";
                let name = match tokens.get(i + 1) {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    _ => return Err("expected type name".into()),
                };
                if matches!(tokens.get(i + 2), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                    return Err(format!(
                        "serde shim derive does not support generic type `{name}`"
                    ));
                }
                let body = match tokens.get(i + 2) {
                    Some(TokenTree::Group(g)) => g,
                    _ => return Err(format!("expected body for `{name}`")),
                };
                let kind = if is_struct {
                    match body.delimiter() {
                        Delimiter::Brace => Kind::NamedStruct(parse_fields(body.stream())?),
                        Delimiter::Parenthesis => Kind::TupleStruct(count_tuple(body.stream())),
                        _ => return Err(format!("unexpected struct body for `{name}`")),
                    }
                } else {
                    Kind::Enum(parse_variants(body.stream())?)
                };
                return Ok(Item {
                    name,
                    untagged: container.untagged,
                    container_default: container.default.is_some(),
                    kind,
                });
            }
            _ => i += 1,
        }
    }
    Err("expected a struct or enum".into())
}

/// Fold any `#[serde(...)]` arguments in an attribute token stream into
/// `out`; other attributes (doc comments, lints) are ignored.
fn merge_attr(stream: &TokenStream, out: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if *id.to_string() == *"serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        match &args[i] {
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "skip" | "skip_serializing" | "skip_deserializing" => {
                    out.skip = true;
                    i += 1;
                }
                "untagged" => {
                    out.untagged = true;
                    i += 1;
                }
                "default" => {
                    if matches!(args.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                        let lit = args.get(i + 2).map(|t| t.to_string()).unwrap_or_default();
                        out.default = Some(lit.trim_matches('"').to_string());
                        i += 3;
                    } else {
                        out.default = Some(String::new());
                        i += 1;
                    }
                }
                _ => i += 1,
            },
            _ => i += 1,
        }
    }
}

fn parse_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = SerdeAttrs::default();
        while matches!(&tokens[i..], [TokenTree::Punct(p), ..] if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                merge_attr(&g.stream(), &mut attrs);
                i += 2;
            } else {
                i += 1;
            }
        }
        if i >= tokens.len() {
            break;
        }
        if matches!(&tokens[i], TokenTree::Ident(id) if *id.to_string() == *"pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        if !matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

fn count_tuple(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Variant-level attributes (doc comments etc.) are skipped.
        while matches!(&tokens[i..], [TokenTree::Punct(p), ..] if p.as_char() == '#') {
            i += if tokens.get(i + 1).is_some() { 2 } else { 1 };
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                s.push_str(&format!(
                    "m.insert(::std::string::String::from(\"{0}\"), ::serde::Serialize::serialize(&self.{0}));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Kind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        let value = if item.untagged {
                            "::serde::Value::Null".to_string()
                        } else {
                            format!(
                                "::serde::Value::String(::std::string::String::from(\"{vname}\"))"
                            )
                        };
                        arms.push_str(&format!("{name}::{vname} => {value},\n"));
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        let value = if item.untagged {
                            payload
                        } else {
                            format!(
                                "{{ let mut m = ::serde::Map::new(); m.insert(::std::string::String::from(\"{vname}\"), {payload}); ::serde::Value::Object(m) }}"
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {value},\n",
                            binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut payload = String::from("{ let mut __m = ::serde::Map::new();\n");
                        for f in fields {
                            if f.attrs.skip {
                                continue;
                            }
                            payload.push_str(&format!(
                                "__m.insert(::std::string::String::from(\"{0}\"), ::serde::Serialize::serialize({0}));\n",
                                f.name
                            ));
                        }
                        payload.push_str("::serde::Value::Object(__m) }");
                        let value = if item.untagged {
                            payload
                        } else {
                            format!(
                                "{{ let mut m = ::serde::Map::new(); m.insert(::std::string::String::from(\"{vname}\"), {payload}); ::serde::Value::Object(m) }}"
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {value},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn field_expr(f: &Field, map_var: &str, ty: &str) -> String {
    if f.attrs.skip {
        return "::std::default::Default::default()".to_string();
    }
    match &f.attrs.default {
        Some(path) => {
            let fallback = if path.is_empty() {
                "::std::default::Default::default()".to_string()
            } else {
                format!("{path}()")
            };
            format!(
                "match ::serde::helpers::opt_field({map_var}, \"{0}\", \"{ty}\")? {{ Some(__v) => __v, None => {fallback} }}",
                f.name
            )
        }
        None => format!(
            "::serde::helpers::req_field({map_var}, \"{0}\", \"{ty}\")?",
            f.name
        ),
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) if item.container_default => {
            // Start from `Self::default()` and overwrite the fields the
            // document actually provides (serde's container-default
            // semantics; field-level attributes still win).
            let mut s = format!(
                "let m = ::serde::helpers::as_object(v, \"{name}\")?;\n\
                 let mut __out = <{name} as ::std::default::Default>::default();\n"
            );
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                if f.attrs.default.is_some() {
                    s.push_str(&format!(
                        "__out.{0} = {1};\n",
                        f.name,
                        field_expr(f, "m", name)
                    ));
                } else {
                    s.push_str(&format!(
                        "if let Some(__v) = ::serde::helpers::opt_field(m, \"{0}\", \"{name}\")? \
                         {{ __out.{0} = __v; }}\n",
                        f.name
                    ));
                }
            }
            s.push_str("Ok(__out)");
            s
        }
        Kind::NamedStruct(fields) => {
            let mut s =
                format!("let m = ::serde::helpers::as_object(v, \"{name}\")?;\nOk({name} {{\n");
            for f in fields {
                s.push_str(&format!("{}: {},\n", f.name, field_expr(f, "m", name)));
            }
            s.push_str("})");
            s
        }
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = ::serde::helpers::tuple_payload(v, {n}, \"{name}\")?;\nOk({name}({}))",
                items.join(", ")
            )
        }
        Kind::Enum(variants) if item.untagged => {
            let mut s = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Tuple(1) => {
                        s.push_str(&format!(
                            "{{ let __attempt: ::std::result::Result<{name}, ::serde::Error> = \
                             (|| Ok({name}::{0}(::serde::Deserialize::deserialize(v)?)))();\n\
                             if let Ok(__x) = __attempt {{ return Ok(__x); }} }}\n",
                            v.name
                        ));
                    }
                    _ => {
                        return format!(
                            "compile_error!(\"serde shim: untagged enum `{name}` may only have newtype variants\");"
                        )
                    }
                }
            }
            s.push_str(&format!(
                "Err(::serde::Error::custom(\"{name}: no untagged variant matched\"))"
            ));
            s
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    VariantShape::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    VariantShape::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::deserialize(__payload)?)),\n"
                        ));
                    }
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__a[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{ let __a = ::serde::helpers::tuple_payload(__payload, {n}, \"{name}::{vname}\")?; Ok({name}::{vname}({})) }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let ty = format!("{name}::{vname}");
                        let mut ctor = format!(
                            "{{ let __m = ::serde::helpers::as_object(__payload, \"{ty}\")?; Ok({name}::{vname} {{ "
                        );
                        for f in fields {
                            ctor.push_str(&format!("{}: {}, ", f.name, field_expr(f, "__m", &ty)));
                        }
                        ctor.push_str("}) },\n");
                        tagged_arms.push_str(&format!("\"{vname}\" => {ctor}"));
                    }
                }
            }
            format!(
                "if let Some(__s) = v.as_str() {{\n\
                 return match __s {{\n{unit_arms}\
                 __other => Err(::serde::helpers::unknown_variant(\"{name}\", __other)),\n}};\n}}\n\
                 let (__tag, __payload) = ::serde::helpers::single_entry(v, \"{name}\")?;\n\
                 match __tag {{\n{tagged_arms}\
                 __other => Err(::serde::helpers::unknown_variant(\"{name}\", __other)),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) -> ::std::result::Result<{name}, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
