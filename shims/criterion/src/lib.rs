//! Minimal stand-in for `criterion`: wall-clock micro-benchmarking with
//! the `criterion_group!` / `criterion_main!` entry points and the
//! `bench_function` / `bench_with_input` / `benchmark_group` API this
//! workspace's benches use. No statistics beyond mean-of-N and no HTML
//! reports — results print to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A bare parameter id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, keeping its output alive to prevent dead-code
    /// elimination.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_bench(&id.to_string(), self.sample_size, None, f);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Iterations per measurement.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_bench(&id.to_string(), self.sample_size, self.throughput, f);
        self
    }

    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&id.to_string(), self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed.as_secs_f64() / b.iters as f64
    } else {
        0.0
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  ({:.0} B/s)", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("  {id}: {:.3} ms/iter{rate}", per_iter * 1e3);
}

/// Group several benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// The bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(8));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn api_surface_works() {
        let mut c = Criterion::default();
        quick(&mut c);
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
