//! Minimal stand-in for `rand_distr`: the exponential, log-normal,
//! normal, and Poisson distributions used by the simulator's RNG layer.
//! Sampling algorithms are textbook (inversion, Box–Muller, Knuth /
//! normal-approximation Poisson); streams differ from upstream
//! `rand_distr` but are deterministic given the shim `rand` RNG.

use rand::Rng;

/// A distribution that can be sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}
impl std::error::Error for ParamError {}

fn unit_open(rng: &mut (impl Rng + ?Sized)) -> f64 {
    // (0, 1]: guards ln(0).
    let bits = rng.next_u64() >> 11;
    (bits as f64 + 1.0) * (1.0 / (1u64 << 53) as f64)
}

fn standard_normal(rng: &mut (impl Rng + ?Sized)) -> f64 {
    // Box–Muller; one value per call (the pair's partner is discarded,
    // which keeps the distribution stateless).
    let u1 = unit_open(rng);
    let u2 = unit_open(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    rate: f64,
}

impl Exp {
    /// A new exponential; `rate` must be positive and finite.
    pub fn new(rate: f64) -> Result<Self, ParamError> {
        if rate > 0.0 && rate.is_finite() {
            Ok(Self { rate })
        } else {
            Err(ParamError("Exp rate must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_open(rng).ln() / self.rate
    }
}

/// Normal distribution.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A new normal; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite() {
            Ok(Self { mean, std_dev })
        } else {
            Err(ParamError("Normal parameters must be finite, std_dev >= 0"))
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution (parameters are of the underlying normal).
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// A new log-normal; `sigma` must be finite and non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if sigma.is_finite() && sigma >= 0.0 && mu.is_finite() {
            Ok(Self { mu, sigma })
        } else {
            Err(ParamError(
                "LogNormal parameters must be finite, sigma >= 0",
            ))
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Poisson distribution. Samples are returned as `f64` to match
/// `rand_distr`'s API.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// A new Poisson; `mean` must be positive and finite.
    pub fn new(mean: f64) -> Result<Self, ParamError> {
        if mean > 0.0 && mean.is_finite() {
            Ok(Self { mean })
        } else {
            Err(ParamError("Poisson mean must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.mean < 30.0 {
            // Knuth's product-of-uniforms method (exact).
            let limit = (-self.mean).exp();
            let mut product = unit_open(rng);
            let mut count = 0u64;
            while product > limit {
                product *= unit_open(rng);
                count += 1;
            }
            count as f64
        } else {
            // Normal approximation with continuity correction — adequate
            // for the large per-minute trace means this workspace uses.
            let z = standard_normal(rng);
            (self.mean + self.mean.sqrt() * z + 0.5).floor().max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Exp::new(4.0).unwrap();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn poisson_small_mean_exact_method() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Poisson::new(6.5).unwrap();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 6.5).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn poisson_large_mean_approximation() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Poisson::new(400.0).unwrap();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 400.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn lognormal_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        // mu/sigma chosen for linear mean 0.1, cv 0.5.
        let sigma2 = (1.0 + 0.25f64).ln();
        let d = LogNormal::new((0.1f64).ln() - sigma2 / 2.0, sigma2.sqrt()).unwrap();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.1).abs() < 0.002, "mean={mean}");
    }

    #[test]
    fn constructors_reject_bad_parameters() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Poisson::new(-1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
    }
}
