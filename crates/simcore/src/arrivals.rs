//! Arrival processes.
//!
//! The LaSS workload generator supports three modes (§6.1): a *static*
//! arrival rate, *discrete changes* at given instants, and *continuous
//! change* after every request — plus replay of per-minute trace counts
//! (the Azure Functions 2019 dataset format, §6.7). All modes produce
//! Poisson arrivals (the paper's modeling assumption) with the requested
//! time-varying intensity.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime, NANOS_PER_SEC};
use std::sync::Arc;

/// A (possibly time-varying) stochastic arrival process.
pub trait ArrivalProcess {
    /// The first arrival strictly after `now`, or `None` when the process
    /// has ended.
    fn next_after(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime>;
}

/// Homogeneous Poisson arrivals at a fixed rate (req/s), optionally ending
/// at a horizon.
#[derive(Debug, Clone)]
pub struct StaticPoisson {
    rate: f64,
    end: Option<SimTime>,
}

impl StaticPoisson {
    /// Unbounded process at `rate` requests/second.
    pub fn new(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite());
        Self { rate, end: None }
    }

    /// Process at `rate` requests/second until `end`.
    pub fn until(rate: f64, end: SimTime) -> Self {
        assert!(rate >= 0.0 && rate.is_finite());
        Self {
            rate,
            end: Some(end),
        }
    }
}

impl ArrivalProcess for StaticPoisson {
    fn next_after(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        if self.rate <= 0.0 {
            return None;
        }
        let t = now + SimDuration::from_secs_f64(rng.exp(self.rate));
        match self.end {
            Some(end) if t >= end => None,
            _ => Some(t),
        }
    }
}

/// Piecewise-constant Poisson arrivals: the rate changes at discrete
/// instants and stays constant in between (the paper's "discrete change"
/// generator). Thanks to memorylessness, the sampler simply restarts the
/// exponential draw at each segment boundary it crosses.
#[derive(Debug, Clone)]
pub struct PiecewiseConstantPoisson {
    /// `(segment start, rate)` — must be sorted by start, first at t=0.
    segments: Vec<(SimTime, f64)>,
    end: SimTime,
}

impl PiecewiseConstantPoisson {
    /// Build from `(start, rate)` breakpoints (sorted ascending; the first
    /// breakpoint must be at `t = 0`) and an end horizon.
    pub fn new(segments: Vec<(SimTime, f64)>, end: SimTime) -> Self {
        assert!(!segments.is_empty(), "at least one segment required");
        assert_eq!(
            segments[0].0,
            SimTime::ZERO,
            "first segment must start at 0"
        );
        for w in segments.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "segment starts must be strictly increasing"
            );
        }
        assert!(segments.iter().all(|&(_, r)| r >= 0.0 && r.is_finite()));
        Self { segments, end }
    }

    /// The rate in force at instant `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let idx = match self.segments.binary_search_by(|&(s, _)| s.cmp(&t)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        self.segments[idx].1
    }

    /// End of the segment containing `t` (or the process horizon).
    fn segment_end(&self, t: SimTime) -> SimTime {
        for &(s, _) in &self.segments {
            if s > t {
                return s.min(self.end);
            }
        }
        self.end
    }
}

impl ArrivalProcess for PiecewiseConstantPoisson {
    fn next_after(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        let mut t = now;
        loop {
            if t >= self.end {
                return None;
            }
            let rate = self.rate_at(t);
            let seg_end = self.segment_end(t);
            if rate <= 0.0 {
                t = seg_end;
                continue;
            }
            let cand = t + SimDuration::from_secs_f64(rng.exp(rate));
            if cand < seg_end {
                return if cand >= self.end { None } else { Some(cand) };
            }
            t = seg_end; // memoryless restart at the boundary
        }
    }
}

/// Non-homogeneous Poisson arrivals with an arbitrary rate function,
/// sampled by Lewis–Shedler thinning (the paper's "continuous change"
/// generator, where the rate is adjusted after each request).
pub struct ModulatedPoisson {
    rate_fn: Box<dyn Fn(f64) -> f64 + Send>,
    rate_max: f64,
    end: SimTime,
}

impl std::fmt::Debug for ModulatedPoisson {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModulatedPoisson")
            .field("rate_max", &self.rate_max)
            .field("end", &self.end)
            .finish_non_exhaustive()
    }
}

impl ModulatedPoisson {
    /// `rate_fn(t_secs)` gives the instantaneous rate; `rate_max` must
    /// dominate it everywhere on `[0, end]`.
    pub fn new(rate_fn: impl Fn(f64) -> f64 + Send + 'static, rate_max: f64, end: SimTime) -> Self {
        assert!(rate_max > 0.0 && rate_max.is_finite());
        Self {
            rate_fn: Box::new(rate_fn),
            rate_max,
            end,
        }
    }
}

impl ArrivalProcess for ModulatedPoisson {
    fn next_after(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        let mut t = now;
        loop {
            t += SimDuration::from_secs_f64(rng.exp(self.rate_max));
            if t >= self.end {
                return None;
            }
            let r = (self.rate_fn)(t.as_secs_f64());
            debug_assert!(
                r <= self.rate_max * (1.0 + 1e-9),
                "rate function exceeds its stated bound at t={t}"
            );
            if rng.uniform() < r / self.rate_max {
                return Some(t);
            }
        }
    }
}

/// Replay of per-minute invocation counts (the Azure Functions trace
/// format): within each minute, arrivals are Poisson at `count/60` req/s —
/// the paper's load generator "adjusts the arrival rate each minute" in
/// discrete-change mode when driven by these traces.
#[derive(Debug, Clone)]
pub struct PerMinuteTrace {
    inner: PiecewiseConstantPoisson,
}

impl PerMinuteTrace {
    /// Build from one count per minute.
    pub fn new(per_minute_counts: &[u64]) -> Self {
        assert!(!per_minute_counts.is_empty());
        let segments: Vec<(SimTime, f64)> = per_minute_counts
            .iter()
            .enumerate()
            .map(|(m, &c)| (SimTime::from_secs(m as u64 * 60), c as f64 / 60.0))
            .collect();
        let end = SimTime::from_secs(per_minute_counts.len() as u64 * 60);
        Self {
            inner: PiecewiseConstantPoisson::new(segments, end),
        }
    }

    /// The per-second rate in force at `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        self.inner.rate_at(t)
    }
}

impl ArrivalProcess for PerMinuteTrace {
    fn next_after(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        self.inner.next_after(now, rng)
    }
}

/// Per-minute trace replay sharing one rate *shape* across many functions.
///
/// Replaying 10⁴–10⁶ distinct functions with a private segment table per
/// function costs O(minutes) memory each; popularity in such traces is
/// Zipf-like, so most functions can share a handful of temporal shapes
/// and differ only in magnitude. The shape — per-second rates for a
/// scale of 1.0, one entry per minute — lives once behind an `Arc`, and
/// each function's process is just `(shared shape, scale)`: a few words
/// of private state regardless of trace length. Arrivals are Poisson at
/// `shape[minute] × scale` within each minute, the same
/// piecewise-constant semantics as [`PerMinuteTrace`].
#[derive(Debug, Clone)]
pub struct ScaledShapeTrace {
    shape: Arc<[f64]>,
    scale: f64,
    end: SimTime,
}

impl ScaledShapeTrace {
    /// Build from a shared per-minute rate shape (req/s at scale 1.0)
    /// and this function's scale factor. The process ends with the
    /// shape's last minute.
    pub fn new(shape: Arc<[f64]>, scale: f64) -> Self {
        assert!(!shape.is_empty(), "shape needs at least one minute");
        assert!(scale >= 0.0 && scale.is_finite(), "invalid scale");
        assert!(shape.iter().all(|&r| r >= 0.0 && r.is_finite()));
        let end = SimTime::from_secs(shape.len() as u64 * 60);
        Self { shape, scale, end }
    }

    /// The per-second rate in force at `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let minute = (t.0 / (60 * NANOS_PER_SEC)) as usize;
        self.shape.get(minute).map_or(0.0, |r| r * self.scale)
    }
}

impl ArrivalProcess for ScaledShapeTrace {
    fn next_after(&mut self, now: SimTime, rng: &mut SimRng) -> Option<SimTime> {
        const MINUTE: u64 = 60 * NANOS_PER_SEC;
        let mut t = now;
        loop {
            if t >= self.end {
                return None;
            }
            let minute = t.0 / MINUTE;
            let rate = self.shape[minute as usize] * self.scale;
            let seg_end = SimTime((minute + 1) * MINUTE);
            if rate <= 0.0 {
                t = seg_end;
                continue;
            }
            let cand = t + SimDuration::from_secs_f64(rng.exp(rate));
            if cand < seg_end {
                return if cand >= self.end { None } else { Some(cand) };
            }
            t = seg_end; // memoryless restart at the minute boundary
        }
    }
}

/// Drain a process into a vector of arrival instants (test/analysis helper).
pub fn collect_arrivals(
    p: &mut dyn ArrivalProcess,
    rng: &mut SimRng,
    limit: usize,
) -> Vec<SimTime> {
    let mut out = Vec::new();
    let mut now = SimTime::ZERO;
    while out.len() < limit {
        match p.next_after(now, rng) {
            Some(t) => {
                now = t;
                out.push(t);
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_poisson_rate_recovers() {
        let mut p = StaticPoisson::new(20.0);
        let mut rng = SimRng::from_seed(1);
        let arr = collect_arrivals(&mut p, &mut rng, 50_000);
        let span = arr.last().unwrap().as_secs_f64();
        let rate = arr.len() as f64 / span;
        assert!((rate - 20.0).abs() < 0.5, "rate={rate}");
    }

    #[test]
    fn static_poisson_interarrivals_are_exponential() {
        let mut p = StaticPoisson::new(10.0);
        let mut rng = SimRng::from_seed(2);
        let arr = collect_arrivals(&mut p, &mut rng, 20_000);
        let gaps: Vec<f64> = arr
            .windows(2)
            .map(|w| (w[1] - w[0]).as_secs_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        // CV of an exponential is 1.
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 0.1).abs() < 0.005, "mean={mean}");
        assert!((cv - 1.0).abs() < 0.05, "cv={cv}");
    }

    #[test]
    fn static_poisson_respects_horizon() {
        let mut p = StaticPoisson::until(100.0, SimTime::from_secs(2));
        let mut rng = SimRng::from_seed(3);
        let arr = collect_arrivals(&mut p, &mut rng, usize::MAX);
        assert!(!arr.is_empty());
        assert!(arr.iter().all(|&t| t < SimTime::from_secs(2)));
    }

    #[test]
    fn zero_rate_yields_nothing() {
        let mut p = StaticPoisson::new(0.0);
        let mut rng = SimRng::from_seed(4);
        assert!(p.next_after(SimTime::ZERO, &mut rng).is_none());
    }

    #[test]
    fn piecewise_rates_match_per_segment() {
        // 0-100s at 5/s, 100-200s at 50/s.
        let mut p = PiecewiseConstantPoisson::new(
            vec![(SimTime::ZERO, 5.0), (SimTime::from_secs(100), 50.0)],
            SimTime::from_secs(200),
        );
        let mut rng = SimRng::from_seed(5);
        let arr = collect_arrivals(&mut p, &mut rng, usize::MAX);
        let in_first = arr.iter().filter(|&&t| t < SimTime::from_secs(100)).count();
        let in_second = arr.len() - in_first;
        assert!(
            (in_first as f64 - 500.0).abs() < 90.0,
            "first segment count {in_first}"
        );
        assert!(
            (in_second as f64 - 5000.0).abs() < 300.0,
            "second segment count {in_second}"
        );
    }

    #[test]
    fn piecewise_skips_zero_rate_segment() {
        let mut p = PiecewiseConstantPoisson::new(
            vec![
                (SimTime::ZERO, 10.0),
                (SimTime::from_secs(10), 0.0),
                (SimTime::from_secs(20), 10.0),
            ],
            SimTime::from_secs(30),
        );
        let mut rng = SimRng::from_seed(6);
        let arr = collect_arrivals(&mut p, &mut rng, usize::MAX);
        assert!(arr
            .iter()
            .all(|&t| t < SimTime::from_secs(10) || t >= SimTime::from_secs(20)));
        assert!(arr.len() > 100);
    }

    #[test]
    fn piecewise_rate_at_boundaries() {
        let p = PiecewiseConstantPoisson::new(
            vec![(SimTime::ZERO, 1.0), (SimTime::from_secs(60), 2.0)],
            SimTime::from_secs(120),
        );
        assert_eq!(p.rate_at(SimTime::ZERO), 1.0);
        assert_eq!(p.rate_at(SimTime::from_secs(59)), 1.0);
        assert_eq!(p.rate_at(SimTime::from_secs(60)), 2.0);
        assert_eq!(p.rate_at(SimTime::from_secs(100)), 2.0);
    }

    #[test]
    fn modulated_ramp_has_increasing_density() {
        // Rate ramps 0 -> 100 over 100 s.
        let mut p = ModulatedPoisson::new(|t| t, 100.0, SimTime::from_secs(100));
        let mut rng = SimRng::from_seed(7);
        let arr = collect_arrivals(&mut p, &mut rng, usize::MAX);
        let first_half = arr.iter().filter(|&&t| t < SimTime::from_secs(50)).count();
        let second_half = arr.len() - first_half;
        // Integral of rate: 1250 vs 3750 -> 3x more in the second half.
        let ratio = second_half as f64 / first_half as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio={ratio}");
    }

    #[test]
    fn per_minute_trace_counts_roughly_replay() {
        let counts = vec![600u64, 0, 1200];
        let mut p = PerMinuteTrace::new(&counts);
        let mut rng = SimRng::from_seed(8);
        let arr = collect_arrivals(&mut p, &mut rng, usize::MAX);
        let m0 = arr.iter().filter(|&&t| t < SimTime::from_secs(60)).count();
        let m1 = arr
            .iter()
            .filter(|&&t| t >= SimTime::from_secs(60) && t < SimTime::from_secs(120))
            .count();
        let m2 = arr.len() - m0 - m1;
        assert!((m0 as f64 - 600.0).abs() < 100.0, "m0={m0}");
        assert_eq!(m1, 0);
        assert!((m2 as f64 - 1200.0).abs() < 140.0, "m2={m2}");
        assert_eq!(p.rate_at(SimTime::from_secs(61)), 0.0);
    }

    #[test]
    fn scaled_shape_shares_one_table() {
        // Two functions, same shape, 10x apart in scale.
        let shape: Arc<[f64]> = Arc::from(vec![10.0, 0.0, 5.0].into_boxed_slice());
        let mut small = ScaledShapeTrace::new(shape.clone(), 0.1);
        let mut big = ScaledShapeTrace::new(shape, 1.0);
        assert_eq!(small.rate_at(SimTime::ZERO), 1.0);
        assert_eq!(big.rate_at(SimTime::from_secs(61)), 0.0);
        assert_eq!(big.rate_at(SimTime::from_secs(121)), 5.0);
        assert_eq!(big.rate_at(SimTime::from_secs(300)), 0.0);

        let mut rng = SimRng::from_seed(9);
        let arr_b = collect_arrivals(&mut big, &mut rng, usize::MAX);
        let mut rng = SimRng::from_seed(9);
        let arr_s = collect_arrivals(&mut small, &mut rng, usize::MAX);
        // Minute 1 has rate zero for both; everything ends at minute 3.
        for arr in [&arr_b, &arr_s] {
            assert!(arr
                .iter()
                .all(|&t| t < SimTime::from_secs(60) || t >= SimTime::from_secs(120)));
            assert!(arr.iter().all(|&t| t < SimTime::from_secs(180)));
        }
        // 10 req/s for 60 s + 5 req/s for 60 s ≈ 900 arrivals at scale 1.
        assert!(
            (arr_b.len() as f64 - 900.0).abs() < 120.0,
            "{}",
            arr_b.len()
        );
        assert!((arr_s.len() as f64 - 90.0).abs() < 40.0, "{}", arr_s.len());
    }

    #[test]
    #[should_panic(expected = "first segment must start at 0")]
    fn piecewise_requires_zero_start() {
        PiecewiseConstantPoisson::new(vec![(SimTime::from_secs(5), 1.0)], SimTime::from_secs(10));
    }
}
