//! A hierarchical timer wheel: the cache-friendly event calendar behind
//! [`crate::events::EventQueue`].
//!
//! A binary heap pays `O(log n)` pointer-chasing comparisons per
//! operation over the whole pending set. Trace replay at 10⁴–10⁶
//! distinct functions keeps hundreds of thousands of timers in flight,
//! and the heap becomes the hot loop's bottleneck. The classic answer
//! (Varghese & Lauck) is a hierarchy of slotted wheels: near-future
//! events hash into fine-grained slots, far-future events into
//! exponentially coarser ones, and buckets cascade downward as the
//! cursor approaches them. Scheduling is `O(1)`; each event cascades at
//! most once per level before it pops.
//!
//! Determinism contract (shared with the heap implementation and
//! enforced by a differential proptest): events pop **earliest first**,
//! ties at the same instant broken by insertion order (a monotonically
//! increasing sequence number). To guarantee bit-identical pop order,
//! the wheel never pops straight out of a bucket: the bucket owning the
//! cursor's current slot is drained into a tiny `(time, seq)`-ordered
//! *ready heap*, and pops come from there. The ready heap holds one
//! slot's worth of events (typically a handful), so the `O(log k)` it
//! pays is on `k ≈` events-per-slot, not the whole calendar.
//!
//! Geometry: [`LEVELS`] wheels of [`SLOTS`] slots. Level 0 slots span
//! 2^[`SHIFT0`] ns ≈ 4 µs; each level is 64× coarser. The hierarchy
//! covers ~3.2 days from the cursor; anything farther sits in a sorted
//! overflow map and is fed back when the wheels drain toward it.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Slots per wheel level (64 so occupancy fits one `u64` bitmap).
const SLOTS: u64 = 64;
/// log2([`SLOTS`]).
const SLOT_BITS: u32 = 6;
/// Wheel levels before the overflow map takes over.
const LEVELS: u32 = 6;
/// log2 of the level-0 slot width in nanoseconds (2^12 ns ≈ 4.1 µs).
const SHIFT0: u32 = 12;

/// Slot width shift for `level`.
#[inline]
const fn shift(level: u32) -> u32 {
    SHIFT0 + SLOT_BITS * level
}

/// Absolute slot number of `t` at `level`.
#[inline]
const fn slot_of(t: u64, level: u32) -> u64 {
    t >> shift(level)
}

/// An event waiting in the ready heap, ordered earliest-`(at, seq)`
/// first (inverted for `BinaryHeap`'s max-heap).
#[derive(Debug)]
struct Ready<E> {
    at: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Ready<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Ready<E> {}
impl<E> PartialOrd for Ready<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Ready<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One wheel level: 64 buckets plus an occupancy bitmap (bit `i` set ⟺
/// bucket `i` non-empty) so the next occupied slot is a `rotate` +
/// `trailing_zeros` away.
#[derive(Debug)]
struct Level<E> {
    occupied: u64,
    buckets: [Vec<(u64, u64, E)>; SLOTS as usize],
}

impl<E> Level<E> {
    fn new() -> Self {
        Self {
            occupied: 0,
            buckets: std::array::from_fn(|_| Vec::new()),
        }
    }

    #[inline]
    fn push(&mut self, abs_slot: u64, at: u64, seq: u64, event: E) {
        let idx = (abs_slot & (SLOTS - 1)) as usize;
        self.buckets[idx].push((at, seq, event));
        self.occupied |= 1 << idx;
    }

    /// Drain bucket `abs_slot` (if occupied), returning its events.
    #[inline]
    fn take(&mut self, abs_slot: u64) -> Vec<(u64, u64, E)> {
        let idx = (abs_slot & (SLOTS - 1)) as usize;
        if self.occupied & (1 << idx) == 0 {
            return Vec::new();
        }
        self.occupied &= !(1 << idx);
        std::mem::take(&mut self.buckets[idx])
    }

    /// Absolute slot of the nearest occupied bucket strictly after
    /// `cursor_slot`. Relies on the invariant that every resident event
    /// lies within `(cursor_slot, cursor_slot + 63]` at this level, so
    /// each set bit maps to exactly one absolute slot in that window.
    #[inline]
    fn next_occupied(&self, cursor_slot: u64) -> Option<u64> {
        if self.occupied == 0 {
            return None;
        }
        let start = (cursor_slot + 1) & (SLOTS - 1);
        let rotated = self.occupied.rotate_right(start as u32);
        let dist = rotated.trailing_zeros() as u64;
        Some(cursor_slot + 1 + dist)
    }
}

/// A deterministic hierarchical timer wheel with the same observable
/// contract as a `(time, seq)`-ordered binary heap.
#[derive(Debug)]
pub struct TimerWheel<E> {
    levels: Vec<Level<E>>,
    /// Events beyond the top level's horizon, keyed by top-level slot.
    overflow: BTreeMap<u64, Vec<(u64, u64, E)>>,
    /// Events at or before the cursor's level-0 slot, in pop order.
    ready: BinaryHeap<Ready<E>>,
    /// Level-0 absolute slot the wheel has drained up to.
    cursor: u64,
    len: usize,
    /// Tombstones for cancelled-but-still-resident events, keyed by the
    /// unique insertion `seq`. Entries are purged lazily as pops and
    /// peeks encounter them; `len` excludes them from the moment of
    /// cancellation.
    cancelled: HashSet<u64>,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// An empty wheel with the cursor at `t = 0`.
    pub fn new() -> Self {
        Self {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BTreeMap::new(),
            ready: BinaryHeap::new(),
            cursor: 0,
            len: 0,
            cancelled: HashSet::new(),
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop all pending events; the cursor is kept.
    pub fn clear(&mut self) {
        for level in &mut self.levels {
            while level.occupied != 0 {
                let idx = level.occupied.trailing_zeros() as usize;
                level.occupied &= !(1 << idx);
                level.buckets[idx].clear();
            }
        }
        self.overflow.clear();
        self.ready.clear();
        self.cancelled.clear();
        self.len = 0;
    }

    /// Cancel a pending event by its insertion `seq`. The event stays
    /// physically resident as a tombstone and is purged lazily when a
    /// pop or peek reaches it; `len` drops immediately. The `seq` must
    /// belong to an event that is currently pending — cancelling one
    /// that already popped (or cancelling twice) is a caller logic
    /// error; the double-cancel case is absorbed (returns `false`).
    pub fn cancel(&mut self, seq: u64) -> bool {
        if self.cancelled.insert(seq) {
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Insert an event. `at` must not precede the cursor's window start
    /// (callers clamp to the engine clock, which never trails the
    /// cursor's last pop).
    pub fn insert(&mut self, at: SimTime, seq: u64, event: E) {
        self.len += 1;
        self.place(at.0, seq, event);
    }

    /// Route one event to the ready heap, a wheel level, or overflow,
    /// relative to the current cursor.
    fn place(&mut self, at: u64, seq: u64, event: E) {
        let s0 = slot_of(at, 0);
        if s0 <= self.cursor {
            // Current (or already-drained) slot: compete in the ready
            // heap, where (at, seq) ordering keeps the contract exact.
            self.ready.push(Ready { at, seq, event });
            return;
        }
        for level in 0..LEVELS {
            let s = slot_of(at, level);
            let c = slot_of(self.cursor << SHIFT0, level);
            if s - c < SLOTS {
                self.levels[level as usize].push(s, at, seq, event);
                return;
            }
        }
        self.overflow
            .entry(slot_of(at, LEVELS - 1))
            .or_default()
            .push((at, seq, event));
    }

    /// Move the cursor to level-0 slot `to`, cascading any bucket the
    /// cursor newly *entered* at each higher level. Entering a bucket
    /// invalidates the "strictly ahead of the cursor" invariant for its
    /// events, so they are re-placed (landing at lower levels or in the
    /// ready heap). When the top level's slot changes, overflow buckets
    /// that moved inside the top wheel's horizon are pulled in too —
    /// wheel residents keep the top-level slot within +1 of the cursor,
    /// so a bucket is always ingested long before the cursor could pass
    /// it.
    fn advance_cursor(&mut self, to: u64) {
        debug_assert!(to >= self.cursor);
        let from = self.cursor;
        self.cursor = to;
        for level in 1..LEVELS {
            let new_slot = slot_of(to << SHIFT0, level);
            if slot_of(from << SHIFT0, level) == new_slot {
                // Finer levels change only if this one did.
                break;
            }
            for (at, seq, event) in self.levels[level as usize].take(new_slot) {
                self.place(at, seq, event);
            }
        }
        let top = slot_of(to << SHIFT0, LEVELS - 1);
        if slot_of(from << SHIFT0, LEVELS - 1) != top {
            while let Some((&key, _)) = self.overflow.iter().next() {
                if key - top >= SLOTS {
                    break;
                }
                let bucket = self.overflow.remove(&key).expect("key just observed");
                for (at, seq, event) in bucket {
                    self.place(at, seq, event);
                }
            }
        }
    }

    /// Refill the ready heap from the wheels/overflow. Returns `false`
    /// when the calendar is empty.
    fn ensure_ready(&mut self) -> bool {
        loop {
            if !self.ready.is_empty() {
                return true;
            }
            // Lowest occupied level holds the globally earliest events:
            // level-l residents are strictly nearer than level-(l+1)'s.
            let mut found = None;
            for (level, lv) in self.levels.iter().enumerate() {
                let cursor_slot = slot_of(self.cursor << SHIFT0, level as u32);
                if let Some(abs) = lv.next_occupied(cursor_slot) {
                    found = Some((level as u32, abs));
                    break;
                }
            }
            match found {
                Some((0, abs_slot)) => {
                    self.advance_cursor(abs_slot);
                    for (at, seq, event) in self.levels[0].take(abs_slot) {
                        self.ready.push(Ready { at, seq, event });
                    }
                }
                Some((level, abs_slot)) => {
                    // Jump to the bucket's start and redistribute its
                    // events into finer levels.
                    self.advance_cursor(abs_slot << (SLOT_BITS * level));
                    for (at, seq, event) in self.levels[level as usize].take(abs_slot) {
                        self.place(at, seq, event);
                    }
                }
                None => {
                    // Wheels empty: jump to the first overflow bucket;
                    // the cursor advance ingests it (and any neighbors
                    // now inside the horizon).
                    let Some((&key, _)) = self.overflow.iter().next() else {
                        return false;
                    };
                    self.advance_cursor(key << (SLOT_BITS * (LEVELS - 1)));
                }
            }
        }
    }

    /// Remove and return the earliest `(at, seq)` event, purging any
    /// cancelled tombstones encountered on the way.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            if !self.ensure_ready() {
                return None;
            }
            let r = self.ready.pop().expect("ensure_ready refilled");
            if !self.cancelled.is_empty() && self.cancelled.remove(&r.seq) {
                // A tombstone: `len` already dropped at cancel time.
                continue;
            }
            self.len -= 1;
            return Some((SimTime(r.at), r.event));
        }
    }

    /// Timestamp of the earliest pending event without popping it.
    ///
    /// With cancellations outstanding the wheel must purge tombstones
    /// off the front so peek and pop agree (a cancelled front event
    /// must not masquerade as the next timestamp); the purge cascades
    /// exactly the buckets a pop would, so the calendar's observable
    /// order is unchanged.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.cancelled.is_empty() {
            return self.peek_time_raw();
        }
        loop {
            if !self.ensure_ready() {
                return None;
            }
            // After `ensure_ready` the ready-heap top is the global
            // earliest event (the same invariant `pop` relies on), so
            // purging tombstones off the top yields the true peek.
            while let Some(top) = self.ready.peek() {
                if self.cancelled.contains(&top.seq) {
                    let r = self.ready.pop().expect("peeked");
                    self.cancelled.remove(&r.seq);
                } else {
                    return Some(SimTime(top.at));
                }
            }
            // Every ready event was a tombstone: refill and retry.
        }
    }

    /// Tombstone-free peek: non-destructive (no cascading), so it
    /// cannot assume buckets have been re-leveled as the cursor
    /// advanced: a coarse-level resident can be earlier than everything
    /// at finer levels. Per level, the nearest occupied bucket does
    /// hold that level's minimum, so the global minimum is the min over
    /// the ready heap, each level's nearest bucket, and the first
    /// overflow bucket.
    fn peek_time_raw(&self) -> Option<SimTime> {
        let mut best = self.ready.peek().map(|r| r.at);
        for (level, lv) in self.levels.iter().enumerate() {
            let cursor_slot = slot_of(self.cursor << SHIFT0, level as u32);
            if let Some(abs) = lv.next_occupied(cursor_slot) {
                let idx = (abs & (SLOTS - 1)) as usize;
                let m = lv.buckets[idx].iter().map(|&(at, _, _)| at).min();
                best = match (best, m) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
        }
        let of = self
            .overflow
            .values()
            .next()
            .and_then(|b| b.iter().map(|&(at, _, _)| at).min());
        match (best, of) {
            (Some(a), Some(b)) => Some(SimTime(a.min(b))),
            (a, b) => a.or(b).map(SimTime),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u64>) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| w.pop().map(|(t, e)| (t.0, e))).collect()
    }

    #[test]
    fn pops_sorted_across_levels_and_overflow() {
        let mut w = TimerWheel::new();
        // Timestamps spanning every level plus the overflow map.
        let times: Vec<u64> = vec![
            0,
            1,
            4096,
            5000,
            1 << 20,
            (1 << 20) + 7,
            1 << 30,
            1 << 40,
            1 << 49, // beyond the 2^48 horizon → overflow
            (1 << 49) + 3,
        ];
        for (i, &t) in times.iter().rev().enumerate() {
            w.insert(SimTime(t), i as u64, t);
        }
        assert_eq!(w.len(), times.len());
        let popped = drain(&mut w);
        let mut expect = times.clone();
        expect.sort_unstable();
        assert_eq!(popped.iter().map(|&(t, _)| t).collect::<Vec<_>>(), expect);
        assert!(w.is_empty());
    }

    #[test]
    fn same_instant_ties_pop_in_seq_order() {
        let mut w = TimerWheel::new();
        let t = SimTime(123_456_789);
        for seq in 0..50 {
            w.insert(t, seq, seq);
        }
        let order: Vec<u64> = drain(&mut w).into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn insert_into_current_slot_during_drain() {
        let mut w = TimerWheel::new();
        w.insert(SimTime(100), 0, 0);
        w.insert(SimTime(10_000_000), 1, 1);
        assert_eq!(w.pop().map(|(_, e)| e), Some(0));
        // Cursor now sits at slot 0's window; a nearer event must still
        // pop before the far one.
        w.insert(SimTime(200), 2, 2);
        assert_eq!(w.pop().map(|(_, e)| e), Some(2));
        assert_eq!(w.pop().map(|(_, e)| e), Some(1));
    }

    #[test]
    fn peek_matches_pop_without_disturbing_order() {
        let mut w = TimerWheel::new();
        for &t in &[5_000_000u64, 42, 1 << 33, 77] {
            w.insert(SimTime(t), t, t);
        }
        while let Some(pt) = w.peek_time() {
            let (t, _) = w.pop().unwrap();
            assert_eq!(pt, t);
        }
    }

    #[test]
    fn cancel_purges_lazily_across_levels() {
        let mut w = TimerWheel::new();
        // One resident per region: ready slot, level 0, a coarse level,
        // and the overflow map.
        let times = [5u64, 5000, 1 << 30, 1 << 50];
        for (seq, &t) in times.iter().enumerate() {
            w.insert(SimTime(t), seq as u64, t);
        }
        // Cancel the earliest and the overflow resident.
        assert!(w.cancel(0));
        assert!(w.cancel(3));
        assert!(!w.cancel(3), "double cancel must be absorbed");
        assert_eq!(w.len(), 2);
        // Peek skips the cancelled front event.
        assert_eq!(w.peek_time(), Some(SimTime(5000)));
        assert_eq!(drain(&mut w), vec![(5000, 5000), (1 << 30, 1 << 30)]);
        assert!(w.is_empty());
    }

    #[test]
    fn cancel_during_drain_of_current_slot() {
        let mut w = TimerWheel::new();
        let t = SimTime(123);
        for seq in 0..4u64 {
            w.insert(t, seq, seq);
        }
        assert_eq!(w.pop().map(|(_, e)| e), Some(0));
        // 1 and 2 are already staged in the ready heap: cancel mid-drain.
        assert!(w.cancel(1));
        assert!(w.cancel(2));
        assert_eq!(w.peek_time(), Some(t));
        assert_eq!(w.pop().map(|(_, e)| e), Some(3));
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn clear_empties_but_keeps_cursor() {
        let mut w = TimerWheel::new();
        w.insert(SimTime(1 << 30), 0, 0);
        w.insert(SimTime(1 << 50), 1, 1);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.pop(), None);
        w.insert(SimTime(9), 2, 2);
        assert_eq!(w.pop().map(|(_, e)| e), Some(2));
    }
}
