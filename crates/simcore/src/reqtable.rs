//! Arena storage for the engine's request lifecycle records.
//!
//! The engine retires most requests within a bounded horizon of their
//! arrival, so the live set occupies a *moving window* of the
//! sequentially-assigned request-id space. A `HashMap<u64, _>` pays
//! hashing, probing, and amortized rehash allocations on every request;
//! this table instead keeps
//!
//! * a **slab** of record slots recycled through a free list, each
//!   guarded by a generation counter so a stale slot reference can never
//!   alias a recycled record, and
//! * a **ring index** mapping request id → slot handle, dense over the
//!   live window (`rid - base`), popped from the front as the oldest
//!   requests retire.
//!
//! Steady-state insert/lookup/remove are O(1) with **zero heap
//! allocation**: the slab and ring grow to the peak live-window size
//! during warm-up and are reused thereafter. Memory is O(peak live
//! window), not O(total requests).

use crate::time::SimTime;
use std::collections::VecDeque;

/// A slot handle packed as `generation << 32 | slot`.
const INVALID: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Slot {
    fn_idx: u32,
    generation: u32,
    arrival: SimTime,
}

/// Arena table mapping sequentially-assigned request ids to
/// `(fn_idx, arrival)` lifecycle records.
#[derive(Debug, Default)]
pub struct RequestTable {
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Ring of packed slot handles for rids `base .. base + ring.len()`;
    /// `INVALID` marks retired requests inside the window.
    ring: VecDeque<u64>,
    /// Request id of `ring[0]`.
    base: u64,
    live: usize,
}

impl RequestTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live requests.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no requests are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert the record for `rid`. Ids must be inserted in increasing
    /// order without gaps (the engine assigns them sequentially).
    pub fn insert(&mut self, rid: u64, fn_idx: u32, arrival: SimTime) {
        debug_assert_eq!(
            rid,
            self.base + self.ring.len() as u64,
            "request ids must arrive sequentially"
        );
        let slot = match self.free.pop() {
            Some(s) => {
                let rec = &mut self.slots[s as usize];
                rec.fn_idx = fn_idx;
                rec.arrival = arrival;
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Slot {
                    fn_idx,
                    generation: 0,
                    arrival,
                });
                s
            }
        };
        let generation = self.slots[slot as usize].generation;
        self.ring
            .push_back(u64::from(generation) << 32 | u64::from(slot));
        self.live += 1;
    }

    #[inline]
    fn handle(&self, rid: u64) -> Option<(u32, u32)> {
        let idx = rid.checked_sub(self.base)?;
        let packed = *self.ring.get(usize::try_from(idx).ok()?)?;
        if packed == INVALID {
            return None;
        }
        Some(((packed >> 32) as u32, packed as u32))
    }

    /// Look up a live request: `(fn_idx, arrival)`.
    pub fn get(&self, rid: u64) -> Option<(u32, SimTime)> {
        let (generation, slot) = self.handle(rid)?;
        let rec = self.slots[slot as usize];
        debug_assert_eq!(rec.generation, generation, "stale slot handle");
        Some((rec.fn_idx, rec.arrival))
    }

    /// A generation-stamped token for `rid`'s current slot (packed
    /// `generation << 32 | slot`), or `None` if the request already
    /// retired. Hedging holds these across clone lifetimes: retiring
    /// the request bumps the slot generation, so a token taken before
    /// retirement fails [`RequestTable::token_live`] even after the
    /// slot is recycled for a later request.
    pub fn slot_token(&self, rid: u64) -> Option<u64> {
        let (generation, slot) = self.handle(rid)?;
        Some(u64::from(generation) << 32 | u64::from(slot))
    }

    /// Whether `token` (from [`RequestTable::slot_token`]) still refers
    /// to the live record of `rid`: the request must still be in the
    /// table *and* its slot generation must match the token's stamp. A
    /// stale token — the request retired, even if its slot was reused
    /// by a newer request — never validates.
    pub fn token_live(&self, rid: u64, token: u64) -> bool {
        self.handle(rid).is_some_and(|(generation, slot)| {
            u64::from(generation) << 32 | u64::from(slot) == token
        })
    }

    /// Retire `rid`, returning its record. The slot goes back on the
    /// free list; fully-retired prefixes of the ring are reclaimed so
    /// the window tracks the live span.
    pub fn remove(&mut self, rid: u64) -> Option<(u32, SimTime)> {
        let (generation, slot) = self.handle(rid)?;
        let rec = &mut self.slots[slot as usize];
        debug_assert_eq!(rec.generation, generation, "stale slot handle");
        let out = (rec.fn_idx, rec.arrival);
        rec.generation = rec.generation.wrapping_add(1);
        self.free.push(slot);
        self.ring[(rid - self.base) as usize] = INVALID;
        self.live -= 1;
        while let Some(&front) = self.ring.front() {
            if front != INVALID {
                break;
            }
            self.ring.pop_front();
            self.base += 1;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = RequestTable::new();
        assert!(t.is_empty());
        for rid in 0..10u64 {
            t.insert(rid, rid as u32 * 2, SimTime(rid * 100));
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.get(3), Some((6, SimTime(300))));
        assert_eq!(t.get(10), None);
        assert_eq!(t.remove(3), Some((6, SimTime(300))));
        assert_eq!(t.get(3), None);
        assert_eq!(t.remove(3), None);
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn out_of_order_retirement_reclaims_window() {
        let mut t = RequestTable::new();
        for rid in 0..6u64 {
            t.insert(rid, 0, SimTime(rid));
        }
        // Retire out of order; the window only shrinks when the oldest
        // live request goes.
        for rid in [4, 2, 0, 1, 3] {
            assert!(t.remove(rid).is_some());
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(5), Some((0, SimTime(5))));
        assert!(t.remove(5).is_some());
        assert!(t.is_empty());
        // Sequential ids continue past the drained window.
        t.insert(6, 7, SimTime(60));
        assert_eq!(t.get(6), Some((7, SimTime(60))));
    }

    #[test]
    fn steady_state_reuses_capacity() {
        let mut t = RequestTable::new();
        let mut rid = 0u64;
        // Warm up to a window of 64 in-flight requests.
        for _ in 0..64 {
            t.insert(rid, 1, SimTime(rid));
            rid += 1;
        }
        // Churn: every insert matched by retiring the oldest live one.
        for i in 0..10_000u64 {
            assert!(t.remove(i).is_some());
            t.insert(rid, 1, SimTime(rid));
            rid += 1;
        }
        assert_eq!(t.len(), 64);
        // The slab never outgrew the peak window (+1 transient).
        assert!(t.slots.len() <= 65, "slab grew to {}", t.slots.len());
        assert!(
            t.ring.capacity() <= 256,
            "ring grew to {}",
            t.ring.capacity()
        );
    }

    #[test]
    fn unknown_and_double_remove_are_none() {
        let mut t = RequestTable::new();
        t.insert(0, 0, SimTime(0));
        assert_eq!(t.remove(99), None);
        assert_eq!(t.remove(0), Some((0, SimTime(0))));
        assert_eq!(t.remove(0), None);
        assert_eq!(t.get(0), None);
    }
}
