//! Deterministic discrete-event simulation substrate for the LaSS
//! reproduction.
//!
//! The paper's prototype runs on a physical OpenWhisk cluster; this crate
//! provides the simulated equivalent of "the world": a nanosecond-precision
//! clock, an event calendar with deterministic tie-breaking, seeded random
//! streams, the paper's three workload-generator modes plus per-minute
//! trace replay, and measurement instruments (exact percentiles,
//! time-weighted gauges, timeline series).
//!
//! On top of that substrate, [`engine`] provides the generic
//! discrete-event simulation engine shared by every simulator in the
//! workspace: the event pump, the request lifecycle and its statistics,
//! and the [`SchedulerPolicy`] seam (driven through [`PolicyCtx`]) that
//! schedulers (LaSS, the OpenWhisk baseline, static round-robin,
//! Knative-style scaling, …) plug into. [`federation`] stacks a
//! multi-site meta-policy on that seam — one scheduler instance per
//! site behind a [`router`]-provided front-end routing policy — for
//! federated edge↔cloud topologies, and [`chaos`] stacks a
//! fault-injection meta-policy on top of *that*: site crashes,
//! router↔site partitions, container-crash bursts, and cross-site
//! migration of a dead site's orphans, all from labelled deterministic
//! RNG streams.
//!
//! Nothing in this crate knows about containers or controllers — those live
//! in `lass-cluster` and `lass-core`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrivals;
pub mod chaos;
pub mod engine;
pub mod events;
pub mod federation;
pub mod metrics;
pub mod parallel;
pub mod reqtable;
pub mod rng;
pub mod router;
pub mod telemetry;
pub mod time;
pub mod wheel;

pub use arrivals::{
    collect_arrivals, ArrivalProcess, ModulatedPoisson, PerMinuteTrace, PiecewiseConstantPoisson,
    ScaledShapeTrace, StaticPoisson,
};
pub use chaos::{ChaosConfig, ChaosEv, ChaosPolicy, ChaosTarget, ContainerChaos, Fault};
pub use engine::{
    run_simulation, Completion, EngineConfig, EngineCtx, EngineOutcome, FnStats, FunctionEntry,
    PolicyCtx, ReqId, SchedulerPolicy,
};
pub use events::{EventQueue, HeapCalendar};
pub use federation::{
    FedEv, FedFunction, FederatedReport, Federation, HedgeConfig, HedgeTrigger, SiteMeta,
    SiteReport,
};
pub use lass_queueing::{
    EvaluatedForecast, ForecastCache, PredictorConfig, SnapshotCache, WaitForecast, WaitPredictor,
};
pub use metrics::{DowntimeClock, SampleStats, TimeSeries, TimeWeightedGauge};
pub use parallel::run_federation_parallel;
pub use reqtable::RequestTable;
pub use rng::SimRng;
pub use router::{
    AffinityRouter, FailureAwareRouter, LatencyAwareRouter, LeastLoadedRouter, PlannerRouter,
    ResourceSnapshot, RoundRobinRouter, RouterConfig, RouterKind, RouterPolicy, SiteState,
    SloAwareRouter,
};
pub use telemetry::{ReconcilerSeam, TelemetryConfig, TelemetrySnapshot, UtilizationReconciler};
pub use time::{SimDuration, SimTime, NANOS_PER_SEC};
pub use wheel::TimerWheel;
