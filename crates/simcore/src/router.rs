//! Front-end routing policies for federated multi-site topologies.
//!
//! A federated simulation runs one scheduler instance per *site* (an
//! independent cluster with its own capacity, reached over a network hop
//! of known latency). Every arrival first passes through a front-end
//! router that picks a site; the routing hop's latency is added to the
//! request's response time. [`RouterPolicy`] is the seam that decision
//! plugs into — mirroring how [`SchedulerPolicy`](crate::SchedulerPolicy)
//! is the seam for per-site scheduling.
//!
//! Six routers ship with the workspace, in two families.
//!
//! **Load/latency routers** read only the instantaneous load picture:
//!
//! * [`RoundRobinRouter`] — deal arrivals across sites in rotation.
//! * [`LeastLoadedRouter`] — send each arrival to the site with the
//!   lowest in-flight load relative to its capacity.
//! * [`LatencyAwareRouter`] — prefer the lowest-latency (edge) site while
//!   it has headroom and spill to farther (cloud) sites under overload —
//!   the paper's future-work edge↔cloud offload pattern.
//!
//! **Model-driven routers** additionally consume the per-site telemetry
//! the federation maintains in [`SiteState`] — a
//! [`WaitForecast`](lass_queueing::WaitForecast) built from EWMA'd
//! arrival/service rates (the same M/M/c mathematics the per-site
//! scheduler plans with), a warm-container census for the routed
//! function, and a downtime EWMA fed by the chaos layer:
//!
//! * [`SloAwareRouter`] — hold the SLO at minimum network cost: among
//!   sites whose predicted wait percentile (plus hop) meets the SLO
//!   budget, pick the closest; when none qualifies, pick the site
//!   minimizing predicted percentile response, with hysteresis so the
//!   herd does not flap between near-equal sites.
//! * [`AffinityRouter`] — route a function to sites already holding its
//!   warm containers, spilling by predicted wait when they saturate.
//! * [`FailureAwareRouter`] — avoid recently-failed (browned-out) sites
//!   by their downtime EWMA, re-admitting them through a deterministic
//!   credit trickle as their health score decays.
//!
//! All routers are deterministic: decisions depend only on the event
//! history, never on wall-clock time or ambient randomness (the
//! failure-aware router's "probabilistic" re-admission is a Bresenham
//! style credit counter, not a coin flip).

use crate::time::{SimDuration, SimTime};
use lass_queueing::{EvaluatedForecast, PredictorConfig};
use serde::{Deserialize, Error, Serialize, Value};

/// A site's multi-dimensional capacity picture as the router sees it:
/// per-dimension capacity and usage in `[cpu, mem, bandwidth]` order
/// (milli-vCPU, MiB, Mbps). Plain floats so the router layer stays
/// decoupled from the cluster crate's integer newtypes. An all-zero
/// capacity means the site never reported resources (older policies,
/// cpu-only scenarios) — consumers must treat it as *unknown*, not as
/// a full site.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceSnapshot {
    /// Per-dimension capacity, `[cpu, mem, bandwidth]`.
    pub cap: [f64; 3],
    /// Per-dimension allocation, same order.
    pub used: [f64; 3],
}

impl ResourceSnapshot {
    /// Whether the site ever reported a capacity vector.
    pub fn known(&self) -> bool {
        self.cap.iter().any(|&c| c > 0.0)
    }

    /// How many more containers of `demand` the site can host, judged
    /// on its *binding* dimension (the minimum over demanded
    /// dimensions of `free / need`). Infinite when the demand is zero
    /// on every dimension or the site never reported resources — an
    /// unknown picture must not exclude a site.
    pub fn fit_count(&self, demand: [f64; 3]) -> f64 {
        if !self.known() {
            return f64::INFINITY;
        }
        let mut fits = f64::INFINITY;
        for (d, &need) in demand.iter().enumerate() {
            if need > 0.0 {
                let free = (self.cap[d] - self.used[d]).max(0.0);
                fits = fits.min((free / need).floor());
            }
        }
        fits
    }

    /// Per-dimension utilization in `[0, 1]` (0 where capacity is
    /// unreported).
    pub fn utilization(&self) -> [f64; 3] {
        let mut u = [0.0; 3];
        for (d, slot) in u.iter_mut().enumerate() {
            if self.cap[d] > 0.0 {
                *slot = (self.used[d] / self.cap[d]).clamp(0.0, 1.0);
            }
        }
        u
    }

    /// The highest per-dimension utilization — the binding dimension's.
    pub fn max_utilization(&self) -> f64 {
        self.utilization().into_iter().fold(0.0, f64::max)
    }
}

/// A router's view of one site at the instant of a routing decision.
#[derive(Debug, Clone)]
pub struct SiteState {
    /// Site display name (for reports and debugging).
    pub name: String,
    /// One-way network latency from the front-end router to the site.
    pub latency: SimDuration,
    /// Rough concurrent-request capacity of the site (the federated
    /// harness uses the site's total CPU core count). Only ratios
    /// matter; the hint normalizes load across heterogeneous sites.
    pub capacity_hint: f64,
    /// Requests currently delivered to the site and not yet finished
    /// (queued + in service).
    pub in_flight: u64,
    /// Whether the site is reachable *right now*. A crashed or
    /// partitioned site is marked down by the chaos layer; every router
    /// must treat a down site as nonexistent, so a site that dies
    /// mid-window stops receiving arrivals at the very next routing
    /// decision (not at the next load refresh).
    pub up: bool,
    /// Model-driven waiting-time forecast from the site's live λ̂/μ̂
    /// telemetry (zero-wait before any telemetry accumulates), with its
    /// M/M/c model pre-evaluated through the federation's per-site
    /// [`ForecastCache`](lass_queueing::ForecastCache) so the routers'
    /// waiting-time queries are O(1) and allocation-free. Old routers
    /// ignore it; the federation maintains it either way.
    pub forecast: EvaluatedForecast,
    /// EWMA'd recent downtime fraction in `[0, 1]` fed by the chaos
    /// layer: 0 for a site that has been healthy for a while, high for
    /// one that recently crashed or partitioned.
    pub flakiness: f64,
    /// Warm (booted, non-terminated) containers the site holds for the
    /// function being routed — the affinity census.
    pub warm: u64,
    /// The site's per-dimension capacity picture (all-zero = never
    /// reported; with delayed telemetry this is the last *arrived*
    /// snapshot's, like every other site-side column).
    pub resources: ResourceSnapshot,
    /// Containers of the routed function the site can still fit, judged
    /// on the binding dimension of the function's demand vector —
    /// `resources.fit_count(demand)`, refreshed per decision. Infinite
    /// when the demand or the capacity picture is unknown.
    pub fits: f64,
}

impl SiteState {
    /// In-flight load normalized by the capacity hint.
    pub fn load(&self) -> f64 {
        self.in_flight as f64 / self.capacity_hint.max(f64::MIN_POSITIVE)
    }
}

/// Knobs for the model-driven routers and the per-site telemetry that
/// feeds them, carried by the scenario `topology.router_config` block.
/// Every field has a default, so partial JSON blocks work.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[serde(default)]
pub struct RouterConfig {
    /// SLO budget (milliseconds) on the predicted percentile response
    /// (hop latency + predicted wait). The SLO-aware router holds this
    /// budget at minimum network cost; `0` disables the satisficing
    /// tier and yields pure minimum-predicted-response routing.
    pub slo_ms: f64,
    /// Waiting-time percentile the model-driven routers predict.
    pub percentile: f64,
    /// Score edge (milliseconds) a challenger site must have before the
    /// SLO-aware router abandons its previous pick (herd damping).
    pub hysteresis_ms: f64,
    /// Normalized load beyond which the affinity router considers a
    /// warm site saturated and spills by predicted wait.
    pub spill_load: f64,
    /// Downtime-EWMA score above which the failure-aware router browns
    /// a site out.
    pub flakiness_threshold: f64,
    /// Re-admission credit a browned-out site accrues per routing
    /// decision (scaled by its health); at credit 1 it receives one
    /// probe request.
    pub readmit_rate: f64,
    /// Arrival-rate estimation tick (seconds) for the per-site λ̂ EWMA.
    pub lambda_tick_secs: f64,
    /// EWMA weight on the newest per-tick arrival rate.
    pub lambda_alpha: f64,
    /// EWMA weight on the newest observed service time.
    pub service_alpha: f64,
    /// Downtime-EWMA tick (seconds) for the flakiness score.
    pub health_tick_secs: f64,
    /// EWMA weight on the newest per-tick downtime fraction.
    pub health_alpha: f64,
    /// Cold-start penalty (milliseconds) the model-driven routers blend
    /// into a site's predicted response, weighted by the probability
    /// that the routed function finds no warm container there
    /// (`1 / (1 + warm)` — certain when the census is zero, vanishing
    /// as warm capacity accumulates). `0` (the default) disables the
    /// term entirely, keeping older scenarios' scores bit-identical.
    pub cold_start_penalty_ms: f64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            slo_ms: 100.0,
            percentile: 0.95,
            hysteresis_ms: 2.0,
            spill_load: 1.0,
            flakiness_threshold: 0.1,
            readmit_rate: 0.05,
            lambda_tick_secs: 1.0,
            lambda_alpha: 0.3,
            service_alpha: 0.05,
            health_tick_secs: 5.0,
            health_alpha: 0.2,
            cold_start_penalty_ms: 0.0,
        }
    }
}

impl RouterConfig {
    /// The smoothing constants consumed by the federation's per-site
    /// [`WaitPredictor`](lass_queueing::WaitPredictor)s.
    pub fn predictor(&self) -> PredictorConfig {
        PredictorConfig {
            tick_secs: self.lambda_tick_secs,
            lambda_alpha: self.lambda_alpha,
            service_alpha: self.service_alpha,
        }
    }

    /// Check the knobs before building routers.
    pub fn validate(&self) -> Result<(), String> {
        self.predictor().validate()?;
        if !(self.slo_ms.is_finite() && self.slo_ms >= 0.0) {
            return Err(format!("slo_ms must be non-negative, got {}", self.slo_ms));
        }
        if !(0.0..1.0).contains(&self.percentile) {
            return Err(format!(
                "percentile must be in [0, 1), got {}",
                self.percentile
            ));
        }
        if !(self.hysteresis_ms.is_finite() && self.hysteresis_ms >= 0.0) {
            return Err(format!(
                "hysteresis_ms must be non-negative, got {}",
                self.hysteresis_ms
            ));
        }
        if !(self.spill_load.is_finite() && self.spill_load > 0.0) {
            return Err(format!(
                "spill_load must be positive, got {}",
                self.spill_load
            ));
        }
        if !(0.0..=1.0).contains(&self.flakiness_threshold) {
            return Err(format!(
                "flakiness_threshold must be in [0, 1], got {}",
                self.flakiness_threshold
            ));
        }
        if !(self.readmit_rate.is_finite() && self.readmit_rate >= 0.0) {
            return Err(format!(
                "readmit_rate must be non-negative, got {}",
                self.readmit_rate
            ));
        }
        if !(self.health_tick_secs.is_finite() && self.health_tick_secs > 0.0) {
            return Err(format!(
                "health_tick_secs must be positive, got {}",
                self.health_tick_secs
            ));
        }
        if !(self.health_alpha > 0.0 && self.health_alpha <= 1.0) {
            return Err(format!(
                "health_alpha must be in (0, 1], got {}",
                self.health_alpha
            ));
        }
        if !(self.cold_start_penalty_ms.is_finite() && self.cold_start_penalty_ms >= 0.0) {
            return Err(format!(
                "cold_start_penalty_ms must be non-negative, got {}",
                self.cold_start_penalty_ms
            ));
        }
        Ok(())
    }
}

/// A front-end routing policy: picks the destination site for each
/// arrival in a federated topology.
pub trait RouterPolicy {
    /// Choose a site index in `0..sites.len()` for an arrival of
    /// function `fn_idx` at simulated time `now`. `sites` is never
    /// empty and at least one site is up; the chosen site must be up
    /// (down sites are invisible to arrivals), and returning an
    /// out-of-range or down index is a logic error (the federation
    /// falls back to a live site in release builds and panics in
    /// debug).
    fn route(&mut self, fn_idx: u32, now: SimTime, sites: &[SiteState]) -> usize;

    /// Short policy name carried into reports.
    fn name(&self) -> &'static str;
}

/// Index of the least-loaded **up** site (ties broken toward the lower
/// index). Falls back to index 0 if every site is down (the federation
/// never routes in that state).
fn least_loaded(sites: &[SiteState]) -> usize {
    let mut best: Option<usize> = None;
    for (i, s) in sites.iter().enumerate() {
        if !s.up {
            continue;
        }
        match best {
            Some(b) if sites[b].load() <= s.load() => {}
            _ => best = Some(i),
        }
    }
    best.unwrap_or(0)
}

/// Deal arrivals across sites in strict rotation, ignoring load and
/// latency. The baseline router.
#[derive(Debug, Default)]
pub struct RoundRobinRouter {
    cursor: usize,
}

impl RoundRobinRouter {
    /// A router starting at site 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RouterPolicy for RoundRobinRouter {
    fn route(&mut self, _fn_idx: u32, _now: SimTime, sites: &[SiteState]) -> usize {
        // Deal from the cursor, skipping down sites; when every site is
        // up this is the classic strict rotation.
        let n = sites.len();
        for step in 0..n {
            let i = (self.cursor + step) % n;
            if sites[i].up {
                self.cursor = (i + 1) % n;
                return i;
            }
        }
        self.cursor % n
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Send each arrival to the site with the lowest normalized in-flight
/// load (capacity-aware join-the-shortest-queue).
#[derive(Debug, Default)]
pub struct LeastLoadedRouter;

impl LeastLoadedRouter {
    /// A stateless least-loaded router.
    pub fn new() -> Self {
        Self
    }
}

impl RouterPolicy for LeastLoadedRouter {
    fn route(&mut self, _fn_idx: u32, _now: SimTime, sites: &[SiteState]) -> usize {
        least_loaded(sites)
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

/// Prefer the lowest-latency site that still has headroom; spill to the
/// next-closest site when the preferred one is saturated, and fall back
/// to plain least-loaded when every site is saturated.
///
/// This is the edge↔cloud offload pattern: requests stay at the nearby
/// edge site until its in-flight load exceeds `spill_load × capacity`,
/// then overflow to the (higher-latency, higher-capacity) cloud site.
#[derive(Debug)]
pub struct LatencyAwareRouter {
    /// Normalized load (see [`SiteState::load`]) beyond which a site is
    /// considered saturated. 1.0 means "one in-flight request per unit
    /// of capacity".
    pub spill_load: f64,
}

impl LatencyAwareRouter {
    /// A router that spills once in-flight load reaches the site's
    /// capacity hint.
    pub fn new() -> Self {
        Self { spill_load: 1.0 }
    }
}

impl Default for LatencyAwareRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl RouterPolicy for LatencyAwareRouter {
    fn route(&mut self, _fn_idx: u32, _now: SimTime, sites: &[SiteState]) -> usize {
        let mut best: Option<usize> = None;
        for (i, s) in sites.iter().enumerate() {
            if !s.up || s.load() >= self.spill_load {
                continue;
            }
            match best {
                Some(b) if sites[b].latency <= s.latency => {}
                _ => best = Some(i),
            }
        }
        best.unwrap_or_else(|| least_loaded(sites))
    }

    fn name(&self) -> &'static str {
        "latency-aware"
    }
}

/// The explicit saturated score assigned to a site whose forecast is
/// unusable for ranking: an unstable model (estimated load at or beyond
/// estimated capacity) and any non-finite arithmetic both land here.
/// A saturated site loses every score comparison and never passes the
/// SLO tier, so it is only picked through the explicit least-loaded
/// degradation once *every* site saturates — a NaN can therefore never
/// win a min-comparison or poison the hysteresis anchor.
const SATURATED_SCORE: f64 = f64::INFINITY;

/// A site's predicted percentile *response* score: hop latency plus the
/// model-forecast waiting-time percentile (service time is omitted — it
/// is the same wherever the request lands), plus a cold-start term
/// blending the warm-container census in as a probability: the full
/// penalty when the site holds no warm container for the function,
/// shrinking as `1 / (1 + warm)` while capacity accumulates.
/// `cold_penalty_secs` is 0 unless the scenario opts in, keeping the
/// score identical for existing configurations. [`SATURATED_SCORE`]
/// when the site's estimated load exceeds its estimated capacity, or
/// when the telemetry is degenerate enough to produce a NaN.
pub(crate) fn predicted_score(s: &SiteState, percentile: f64, cold_penalty_secs: f64) -> f64 {
    let mut score = s.latency.as_secs_f64() + s.forecast.wait_percentile(percentile);
    if cold_penalty_secs > 0.0 {
        score += cold_penalty_secs / (1.0 + s.warm as f64);
    }
    if score.is_nan() {
        SATURATED_SCORE
    } else {
        score
    }
}

/// Model-driven SLO holder: among sites whose predicted percentile
/// response meets the SLO budget, pick the closest (cheapest network
/// hop); when none qualifies, pick the site minimizing the predicted
/// percentile response, sticking with the previous pick unless a
/// challenger beats it by more than the hysteresis margin. Falls back
/// to least-loaded when every forecast is unstable (estimated overload
/// everywhere — the model can no longer rank sites).
#[derive(Debug)]
pub struct SloAwareRouter {
    /// SLO budget, seconds (0 disables the satisficing tier).
    slo: f64,
    /// Predicted waiting-time percentile.
    percentile: f64,
    /// Required challenger edge, seconds.
    hysteresis: f64,
    /// Cold-start penalty, seconds (0 disables the census blend).
    cold: f64,
    /// Previous pick (hysteresis anchor).
    last: Option<usize>,
    /// Scratch: per-site scores, computed once per decision from the
    /// pre-evaluated forecasts (O(1) per site, allocation-free once the
    /// buffer has grown to the fleet size).
    scores: Vec<f64>,
}

impl SloAwareRouter {
    /// Build from the shared [`RouterConfig`].
    pub fn new(cfg: &RouterConfig) -> Self {
        Self {
            slo: cfg.slo_ms / 1e3,
            percentile: cfg.percentile,
            hysteresis: cfg.hysteresis_ms / 1e3,
            cold: cfg.cold_start_penalty_ms / 1e3,
            last: None,
            scores: Vec::new(),
        }
    }
}

impl RouterPolicy for SloAwareRouter {
    fn route(&mut self, _fn_idx: u32, _now: SimTime, sites: &[SiteState]) -> usize {
        self.scores.clear();
        self.scores.extend(
            sites
                .iter()
                .map(|s| predicted_score(s, self.percentile, self.cold)),
        );
        // Tier 1: closest site already predicted to meet the SLO.
        let mut satisficer: Option<usize> = None;
        // Tier 2: minimum predicted response among up sites.
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in sites.iter().enumerate() {
            if !s.up {
                continue;
            }
            let score = self.scores[i];
            if self.slo > 0.0 && score <= self.slo {
                match satisficer {
                    Some(b) if sites[b].latency <= s.latency => {}
                    _ => satisficer = Some(i),
                }
            }
            if score.is_finite() {
                match best {
                    Some((_, bs)) if bs <= score => {}
                    _ => best = Some((i, score)),
                }
            }
        }
        let pick = if let Some(i) = satisficer {
            i
        } else if let Some((i, best_score)) = best {
            // Hysteresis: keep the previous pick while it is within the
            // margin of the current minimum.
            match self.last {
                Some(prev)
                    if prev < sites.len()
                        && sites[prev].up
                        && self.scores[prev] <= best_score + self.hysteresis =>
                {
                    prev
                }
                _ => i,
            }
        } else {
            // Every model says overload: degrade to join-shortest-queue.
            least_loaded(sites)
        };
        self.last = Some(pick);
        pick
    }

    fn name(&self) -> &'static str {
        "slo-aware"
    }
}

/// Warm-container affinity: route a function to sites already holding
/// its warm containers (no cold start), choosing among them by predicted
/// percentile response; a warm site whose load passed the spill
/// threshold no longer counts. When no warm site is eligible the router
/// spills by predicted wait over all up sites, and degrades to
/// least-loaded when every forecast is unstable.
#[derive(Debug)]
pub struct AffinityRouter {
    percentile: f64,
    spill_load: f64,
    /// Cold-start penalty, seconds (0 disables the census blend).
    cold: f64,
    /// Scratch: per-site scores, evaluated once per decision and shared
    /// by the warm pass and the spill pass.
    scores: Vec<f64>,
}

impl AffinityRouter {
    /// Build from the shared [`RouterConfig`].
    pub fn new(cfg: &RouterConfig) -> Self {
        Self {
            percentile: cfg.percentile,
            spill_load: cfg.spill_load,
            cold: cfg.cold_start_penalty_ms / 1e3,
            scores: Vec::new(),
        }
    }

    /// Minimum pre-computed score over `sites` restricted by
    /// `eligible`; ties prefer the larger warm census, then the lower
    /// index.
    fn best_by_score(
        &self,
        sites: &[SiteState],
        mut eligible: impl FnMut(&SiteState) -> bool,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in sites.iter().enumerate() {
            if !s.up || !eligible(s) {
                continue;
            }
            let score = self.scores[i];
            if !score.is_finite() {
                continue;
            }
            match best {
                Some((b, bs)) if bs < score || (bs == score && sites[b].warm >= s.warm) => {}
                _ => best = Some((i, score)),
            }
        }
        best.map(|(i, _)| i)
    }
}

impl RouterPolicy for AffinityRouter {
    fn route(&mut self, _fn_idx: u32, _now: SimTime, sites: &[SiteState]) -> usize {
        self.scores.clear();
        self.scores.extend(
            sites
                .iter()
                .map(|s| predicted_score(s, self.percentile, self.cold)),
        );
        self.best_by_score(sites, |s| s.warm > 0 && s.load() < self.spill_load)
            .or_else(|| self.best_by_score(sites, |_| true))
            .unwrap_or_else(|| least_loaded(sites))
    }

    fn name(&self) -> &'static str {
        "affinity"
    }
}

/// Failure-aware brown-out avoidance: sites whose downtime EWMA exceeds
/// the flakiness threshold are excluded from normal (least-loaded)
/// routing and re-admitted through a deterministic credit trickle —
/// each browned-out site accrues `readmit_rate × (1 − flakiness)`
/// credit per decision and receives one probe request whenever the
/// credit reaches 1, so a recovering site is eased back in proportion
/// to its health instead of being herded onto the moment it reports up.
/// When every up site is browned out the router routes among all of
/// them (degraded service beats shedding).
#[derive(Debug)]
pub struct FailureAwareRouter {
    threshold: f64,
    readmit_rate: f64,
    /// Per-site deterministic re-admission credit.
    credit: Vec<f64>,
    /// Scratch: sites admitted for this decision.
    admitted: Vec<bool>,
}

impl FailureAwareRouter {
    /// Build from the shared [`RouterConfig`].
    pub fn new(cfg: &RouterConfig) -> Self {
        Self {
            threshold: cfg.flakiness_threshold,
            readmit_rate: cfg.readmit_rate,
            credit: Vec::new(),
            admitted: Vec::new(),
        }
    }
}

impl RouterPolicy for FailureAwareRouter {
    fn route(&mut self, _fn_idx: u32, _now: SimTime, sites: &[SiteState]) -> usize {
        let n = sites.len();
        self.credit.resize(n, 0.0);
        self.admitted.clear();
        self.admitted.resize(n, false);

        let any_healthy = sites.iter().any(|s| s.up && s.flakiness <= self.threshold);
        for (i, s) in sites.iter().enumerate() {
            if !s.up {
                // A dark site restarts its probation from zero.
                self.credit[i] = 0.0;
                continue;
            }
            if s.flakiness <= self.threshold || !any_healthy {
                self.admitted[i] = true;
            } else {
                // Browned out: accrue credit toward one probe request.
                // The bucket caps at one token so a site that stays
                // admitted-but-unpicked for a long stretch cannot bank
                // credit and later absorb a burst of back-to-back
                // probes — the whole point is a trickle.
                self.credit[i] =
                    (self.credit[i] + self.readmit_rate * (1.0 - s.flakiness).max(0.0)).min(1.0);
                if self.credit[i] >= 1.0 {
                    self.admitted[i] = true;
                }
            }
        }

        // Least-loaded among the admitted sites (ties → lower index).
        let mut best: Option<usize> = None;
        for (i, s) in sites.iter().enumerate() {
            if !s.up || !self.admitted[i] {
                continue;
            }
            match best {
                Some(b) if sites[b].load() <= s.load() => {}
                _ => best = Some(i),
            }
        }
        let pick = best.unwrap_or_else(|| least_loaded(sites));
        // A browned-out site spends its credit only when actually probed.
        if sites[pick].flakiness > self.threshold && self.credit[pick] >= 1.0 {
            self.credit[pick] -= 1.0;
        }
        pick
    }

    fn name(&self) -> &'static str {
        "failure-aware"
    }
}

/// Vector-aware placement planner: route where the next container of
/// the function actually *fits*. Tier 1 restricts the candidates to up
/// sites whose per-dimension capacity picture still has headroom for at
/// least one more container of the routed function's demand vector
/// ([`SiteState::fits`] ≥ 1 — headroom judged on the function's
/// *binding* dimension), and picks the minimum predicted percentile
/// response among them, breaking score ties toward the larger
/// binding-dimension headroom, then the lower index. When no site can
/// fit another container the planner degrades to minimum predicted
/// response over all up sites (the work must land somewhere), and to
/// least-loaded when every forecast is saturated.
///
/// With cpu-only scenarios (no demand vectors, no resource snapshots)
/// every site reports infinite fits, and the planner reduces to pure
/// minimum-predicted-response routing.
#[derive(Debug)]
pub struct PlannerRouter {
    percentile: f64,
    /// Cold-start penalty, seconds (0 disables the census blend).
    cold: f64,
    /// Scratch: per-site scores, computed once per decision.
    scores: Vec<f64>,
}

impl PlannerRouter {
    /// Build from the shared [`RouterConfig`].
    pub fn new(cfg: &RouterConfig) -> Self {
        Self {
            percentile: cfg.percentile,
            cold: cfg.cold_start_penalty_ms / 1e3,
            scores: Vec::new(),
        }
    }

    /// Minimum-score site among up sites passing `eligible`; ties break
    /// toward the larger fit headroom, then the lower index.
    fn best_fitting(
        &self,
        sites: &[SiteState],
        mut eligible: impl FnMut(usize, &SiteState) -> bool,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, s) in sites.iter().enumerate() {
            if !s.up || !eligible(i, s) {
                continue;
            }
            let score = self.scores[i];
            if !score.is_finite() {
                continue;
            }
            match best {
                Some((b, bs)) if bs < score || (bs == score && sites[b].fits >= s.fits) => {}
                _ => best = Some((i, score)),
            }
        }
        best.map(|(i, _)| i)
    }
}

impl RouterPolicy for PlannerRouter {
    fn route(&mut self, _fn_idx: u32, _now: SimTime, sites: &[SiteState]) -> usize {
        self.scores.clear();
        self.scores.extend(
            sites
                .iter()
                .map(|s| predicted_score(s, self.percentile, self.cold)),
        );
        self.best_fitting(sites, |_, s| s.fits >= 1.0)
            .or_else(|| self.best_fitting(sites, |_, _| true))
            .unwrap_or_else(|| least_loaded(sites))
    }

    fn name(&self) -> &'static str {
        "planner"
    }
}

/// The shipped router choices, as named in scenario JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterKind {
    /// [`RoundRobinRouter`] (default).
    #[default]
    RoundRobin,
    /// [`LeastLoadedRouter`].
    LeastLoaded,
    /// [`LatencyAwareRouter`] with the default spill threshold.
    LatencyAware,
    /// [`SloAwareRouter`] (model-driven SLO holder).
    SloAware,
    /// [`AffinityRouter`] (warm-container affinity).
    Affinity,
    /// [`FailureAwareRouter`] (downtime-EWMA brown-out avoidance).
    FailureAware,
    /// [`PlannerRouter`] (vector-aware placement planner).
    Planner,
}

impl RouterKind {
    /// Every shipped router, for sweeps and tests.
    pub const ALL: [RouterKind; 7] = [
        RouterKind::RoundRobin,
        RouterKind::LeastLoaded,
        RouterKind::LatencyAware,
        RouterKind::SloAware,
        RouterKind::Affinity,
        RouterKind::FailureAware,
        RouterKind::Planner,
    ];

    /// The model-driven routers added by the SLO-aware routing layer.
    pub const MODEL_DRIVEN: [RouterKind; 3] = [
        RouterKind::SloAware,
        RouterKind::Affinity,
        RouterKind::FailureAware,
    ];

    /// The JSON spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round-robin",
            RouterKind::LeastLoaded => "least-loaded",
            RouterKind::LatencyAware => "latency-aware",
            RouterKind::SloAware => "slo-aware",
            RouterKind::Affinity => "affinity",
            RouterKind::FailureAware => "failure-aware",
            RouterKind::Planner => "planner",
        }
    }

    /// Parse a JSON spelling (hyphen or underscore separated).
    pub fn parse(s: &str) -> Option<RouterKind> {
        match s {
            "round-robin" | "round_robin" | "rr" => Some(RouterKind::RoundRobin),
            "least-loaded" | "least_loaded" => Some(RouterKind::LeastLoaded),
            "latency-aware" | "latency_aware" => Some(RouterKind::LatencyAware),
            "slo-aware" | "slo_aware" | "slo" => Some(RouterKind::SloAware),
            "affinity" | "warm-affinity" | "warm_affinity" => Some(RouterKind::Affinity),
            "failure-aware" | "failure_aware" => Some(RouterKind::FailureAware),
            "planner" | "placement-planner" | "placement_planner" => Some(RouterKind::Planner),
            _ => None,
        }
    }

    /// Instantiate the router with the default [`RouterConfig`].
    pub fn build(self) -> Box<dyn RouterPolicy + Send> {
        self.build_with(&RouterConfig::default())
    }

    /// Instantiate the router with explicit knobs.
    pub fn build_with(self, cfg: &RouterConfig) -> Box<dyn RouterPolicy + Send> {
        match self {
            RouterKind::RoundRobin => Box::new(RoundRobinRouter::new()),
            RouterKind::LeastLoaded => Box::new(LeastLoadedRouter::new()),
            RouterKind::LatencyAware => Box::new(LatencyAwareRouter {
                spill_load: cfg.spill_load,
            }),
            RouterKind::SloAware => Box::new(SloAwareRouter::new(cfg)),
            RouterKind::Affinity => Box::new(AffinityRouter::new(cfg)),
            RouterKind::FailureAware => Box::new(FailureAwareRouter::new(cfg)),
            RouterKind::Planner => Box::new(PlannerRouter::new(cfg)),
        }
    }
}

impl Serialize for RouterKind {
    fn serialize(&self) -> Value {
        Value::String(self.as_str().to_owned())
    }
}

impl Deserialize for RouterKind {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v.as_str() {
            Some(s) => RouterKind::parse(s).ok_or_else(|| {
                Error::custom(format!(
                    "unknown router {s:?} (expected \"round-robin\", \"least-loaded\", \
                     \"latency-aware\", \"slo-aware\", \"affinity\", \"failure-aware\", or \"planner\")"
                ))
            }),
            None => Err(Error::custom("router must be a string")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lass_queueing::WaitForecast;

    pub(crate) fn site(latency: f64, cap: f64, in_flight: u64) -> SiteState {
        SiteState {
            name: String::new(),
            latency: SimDuration::from_secs_f64(latency),
            capacity_hint: cap,
            in_flight,
            up: true,
            forecast: EvaluatedForecast::default(),
            flakiness: 0.0,
            warm: 0,
            resources: ResourceSnapshot::default(),
            fits: f64::INFINITY,
        }
    }

    fn sites(spec: &[(f64, f64, u64)]) -> Vec<SiteState> {
        spec.iter()
            .enumerate()
            .map(|(i, &(latency, cap, in_flight))| {
                let mut s = site(latency, cap, in_flight);
                s.name = format!("s{i}");
                s
            })
            .collect()
    }

    /// A forecast predicting the given λ/μ/c model, pre-evaluated the
    /// way the federation's cache would.
    fn forecast(lambda: f64, mu: f64, servers: u32) -> EvaluatedForecast {
        WaitForecast {
            lambda,
            mu,
            servers,
        }
        .into()
    }

    #[test]
    fn round_robin_rotates() {
        let s = sites(&[(0.0, 1.0, 0), (0.0, 1.0, 0), (0.0, 1.0, 0)]);
        let mut r = RoundRobinRouter::new();
        let picks: Vec<usize> = (0..6).map(|_| r.route(0, SimTime::ZERO, &s)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_normalizes_by_capacity() {
        // Site 0: 3 in flight / 4 cap = 0.75; site 1: 5 / 12 ≈ 0.42.
        let s = sites(&[(0.001, 4.0, 3), (0.040, 12.0, 5)]);
        assert_eq!(LeastLoadedRouter::new().route(0, SimTime::ZERO, &s), 1);
    }

    #[test]
    fn latency_aware_prefers_edge_until_saturated() {
        let mut r = LatencyAwareRouter::new();
        // Edge has headroom: stay at the edge despite cloud being empty.
        let s = sites(&[(0.002, 4.0, 3), (0.040, 100.0, 0)]);
        assert_eq!(r.route(0, SimTime::ZERO, &s), 0);
        // Edge saturated: spill to the cloud.
        let s = sites(&[(0.002, 4.0, 4), (0.040, 100.0, 0)]);
        assert_eq!(r.route(0, SimTime::ZERO, &s), 1);
        // Everything saturated: degrade to least-loaded.
        let s = sites(&[(0.002, 4.0, 8), (0.040, 100.0, 150)]);
        assert_eq!(r.route(0, SimTime::ZERO, &s), 1);
    }

    /// Regression (chaos layer): a site marked down must receive zero
    /// picks from every router, even though routers only read load at
    /// routing time — the `up` flag is part of the per-decision
    /// snapshot, not of a periodic refresh.
    #[test]
    fn down_sites_are_never_picked() {
        let mut s = sites(&[(0.001, 4.0, 0), (0.020, 8.0, 50), (0.050, 16.0, 80)]);
        s[0].up = false; // the attractive site (empty, closest) is down
        s[0].warm = 5; // …and the only one holding warm containers
        for kind in RouterKind::ALL {
            let mut r = kind.build();
            for k in 0..100u64 {
                let i = r.route(0, SimTime::from_secs(k), &s);
                assert_ne!(i, 0, "{} picked a down site", kind.as_str());
                assert!(i < s.len());
            }
        }
    }

    #[test]
    fn round_robin_skips_down_sites_and_keeps_rotating() {
        let mut s = sites(&[(0.0, 1.0, 0), (0.0, 1.0, 0), (0.0, 1.0, 0)]);
        s[1].up = false;
        let mut r = RoundRobinRouter::new();
        let picks: Vec<usize> = (0..6).map(|_| r.route(0, SimTime::ZERO, &s)).collect();
        assert_eq!(picks, vec![0, 2, 0, 2, 0, 2]);
        // The site coming back mid-window rejoins the rotation.
        s[1].up = true;
        let picks: Vec<usize> = (0..6).map(|_| r.route(0, SimTime::ZERO, &s)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn kind_round_trips() {
        for kind in RouterKind::ALL {
            assert_eq!(RouterKind::parse(kind.as_str()), Some(kind));
            assert_eq!(kind.build().name(), kind.as_str());
        }
        assert_eq!(RouterKind::parse("nope"), None);
    }

    #[test]
    fn router_config_validates() {
        assert!(RouterConfig::default().validate().is_ok());
        let mut cfg = RouterConfig::default();
        cfg.percentile = 1.0;
        assert!(cfg.validate().is_err());
        let mut cfg = RouterConfig::default();
        cfg.lambda_alpha = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = RouterConfig::default();
        cfg.flakiness_threshold = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn slo_aware_holds_slo_at_minimum_latency() {
        let cfg = RouterConfig {
            slo_ms: 100.0,
            percentile: 0.95,
            ..RouterConfig::default()
        };
        let mut r = SloAwareRouter::new(&cfg);
        // Both sites meet the SLO comfortably: stay at the closer one
        // even though the far one predicts a shorter wait.
        let mut s = sites(&[(0.005, 2.0, 0), (0.050, 2.0, 0)]);
        s[0].forecast = forecast(4.0, 10.0, 2); // light queueing
        s[1].forecast = forecast(1.0, 10.0, 2); // nearly idle
        assert!(
            predicted_score(&s[0], 0.95, 0.0) <= 0.1,
            "site 0 must meet SLO"
        );
        assert_eq!(r.route(0, SimTime::ZERO, &s), 0);
        // The close site's model saturates: it no longer meets the SLO
        // and the router moves to the minimum predicted response.
        s[0].forecast = forecast(25.0, 10.0, 2); // unstable: ρ > 1
        assert_eq!(r.route(0, SimTime::ZERO, &s), 1);
    }

    #[test]
    fn slo_aware_minimizes_predicted_response_when_slo_unreachable() {
        // slo 0 disables the satisficing tier: pure min-response.
        let cfg = RouterConfig {
            slo_ms: 0.0,
            hysteresis_ms: 0.0,
            ..RouterConfig::default()
        };
        let mut r = SloAwareRouter::new(&cfg);
        let mut s = sites(&[(0.005, 2.0, 0), (0.030, 2.0, 0)]);
        // Site 0 is closer but predicts a long queue; site 1's model is
        // idle: 5 ms + W(0.95) vs 30 ms + ~0.
        s[0].forecast = forecast(18.0, 10.0, 2); // rho = 0.9 => long waits
        s[1].forecast = forecast(1.0, 10.0, 2);
        assert_eq!(r.route(0, SimTime::ZERO, &s), 1);
        // With no telemetry at all the score is the pure hop latency.
        let s = sites(&[(0.005, 2.0, 0), (0.030, 2.0, 0)]);
        assert_eq!(r.route(0, SimTime::ZERO, &s), 0);
    }

    #[test]
    fn slo_aware_hysteresis_damps_flapping() {
        let cfg = RouterConfig {
            slo_ms: 0.0,
            hysteresis_ms: 30.0,
            ..RouterConfig::default()
        };
        let mut r = SloAwareRouter::new(&cfg);
        // First decision with cold telemetry: site 0 wins (closer hop).
        let mut s = sites(&[(0.010, 2.0, 0), (0.012, 2.0, 0)]);
        assert_eq!(r.route(0, SimTime::ZERO, &s), 0);
        // Site 1 becomes marginally better (by < hysteresis): stick.
        s[0].forecast = forecast(4.4, 10.0, 2);
        let margin = predicted_score(&s[0], 0.95, 0.0) - predicted_score(&s[1], 0.95, 0.0);
        assert!(margin > 0.0 && margin < 0.030, "margin {margin}");
        assert_eq!(r.route(0, SimTime::ZERO, &s), 0);
        // Site 1 becomes decisively better: switch.
        s[0].forecast = forecast(19.0, 10.0, 2);
        assert_eq!(r.route(0, SimTime::ZERO, &s), 1);
    }

    #[test]
    fn slo_aware_degrades_to_least_loaded_under_total_overload() {
        let cfg = RouterConfig {
            slo_ms: 0.0,
            ..RouterConfig::default()
        };
        let mut r = SloAwareRouter::new(&cfg);
        let mut s = sites(&[(0.005, 2.0, 9), (0.030, 2.0, 2)]);
        s[0].forecast = forecast(30.0, 10.0, 2); // unstable
        s[1].forecast = forecast(28.0, 10.0, 2); // unstable
        assert_eq!(r.route(0, SimTime::ZERO, &s), 1);
    }

    #[test]
    fn affinity_prefers_warm_sites_and_spills_when_saturated() {
        let cfg = RouterConfig::default();
        let mut r = AffinityRouter::new(&cfg);
        // Only the far site holds warm containers: affinity wins over
        // latency.
        let mut s = sites(&[(0.002, 4.0, 0), (0.040, 4.0, 1)]);
        s[1].warm = 3;
        assert_eq!(r.route(0, SimTime::ZERO, &s), 1);
        // The warm site saturates: spill to the cold-but-idle site by
        // predicted wait.
        s[1].in_flight = 4;
        assert_eq!(r.route(0, SimTime::ZERO, &s), 0);
        // Two warm sites: the one with the better predicted response
        // wins.
        let mut s = sites(&[(0.002, 4.0, 1), (0.040, 4.0, 1)]);
        s[0].warm = 1;
        s[1].warm = 2;
        s[0].forecast = forecast(35.0, 10.0, 4); // heavy queueing
        s[1].forecast = forecast(2.0, 10.0, 4);
        assert_eq!(r.route(0, SimTime::ZERO, &s), 1);
    }

    #[test]
    fn failure_aware_avoids_flaky_sites_with_trickle_readmission() {
        let cfg = RouterConfig {
            flakiness_threshold: 0.1,
            readmit_rate: 0.25,
            ..RouterConfig::default()
        };
        let mut r = FailureAwareRouter::new(&cfg);
        // Site 0 recently crashed (flaky, now empty and attractive);
        // site 1 is healthy but loaded.
        let mut s = sites(&[(0.002, 4.0, 0), (0.020, 4.0, 10)]);
        s[0].flakiness = 0.5;
        // credit grows by 0.25 × 0.5 = 0.125/decision: one probe every
        // 8 decisions, the rest pinned to the healthy site.
        let picks: Vec<usize> = (0..16).map(|_| r.route(0, SimTime::ZERO, &s)).collect();
        let probes = picks.iter().filter(|&&i| i == 0).count();
        assert_eq!(probes, 2, "picks {picks:?}");
        // Once the EWMA decays below threshold, normal routing resumes.
        s[0].flakiness = 0.05;
        assert_eq!(r.route(0, SimTime::ZERO, &s), 0);
        // All sites flaky: still route (degraded beats shedding).
        s[0].flakiness = 0.9;
        s[1].flakiness = 0.9;
        let i = r.route(0, SimTime::ZERO, &s);
        assert!(i < 2);
    }

    #[test]
    fn failure_aware_matches_least_loaded_on_healthy_fleet() {
        let cfg = RouterConfig::default();
        let mut fa = FailureAwareRouter::new(&cfg);
        let mut ll = LeastLoadedRouter::new();
        let s = sites(&[(0.001, 4.0, 3), (0.040, 12.0, 5), (0.010, 2.0, 1)]);
        for k in 0..20u64 {
            let t = SimTime::from_secs(k);
            assert_eq!(fa.route(0, t, &s), ll.route(0, t, &s));
        }
    }

    /// Regression (overload/NaN scoring): degenerate telemetry — an
    /// unstable model, μ̂ = 0 with traffic, extreme magnitudes — must
    /// never produce a NaN score, and a site with a saturated score
    /// must lose to any site with a finite one in both model-driven
    /// score passes.
    #[test]
    fn saturated_and_degenerate_forecasts_never_win() {
        let degenerate = [
            forecast(25.0, 10.0, 2),     // ρ > 1: unstable
            forecast(1e308, 1e-300, 1),  // r overflows to ∞
            forecast(1e-308, 1e308, 3),  // r underflows to 0
            forecast(5e-324, 5e-324, 1), // subnormal rates, ρ = 1
            forecast(1e10, 1e308, 10),   // c·μ̂ overflows
            WaitForecast {
                lambda: f64::NAN,
                mu: f64::NAN,
                servers: 2,
            }
            .into(), // hand-built NaN telemetry
        ];
        for (i, f) in degenerate.iter().enumerate() {
            let mut s = site(0.001, 2.0, 0);
            s.forecast = *f;
            let score = predicted_score(&s, 0.95, 0.0);
            assert!(!score.is_nan(), "case {i}: NaN score leaked");
        }
        // A healthy-but-distant site must beat every saturated site.
        let cfg = RouterConfig {
            slo_ms: 0.0,
            ..RouterConfig::default()
        };
        for f in &degenerate[..2] {
            let mut s = sites(&[(0.001, 2.0, 0), (0.090, 2.0, 5)]);
            s[0].forecast = *f; // attractive hop, saturated model
            s[1].forecast = forecast(1.0, 10.0, 2);
            let mut slo = SloAwareRouter::new(&cfg);
            assert_eq!(slo.route(0, SimTime::ZERO, &s), 1);
            let mut aff = AffinityRouter::new(&RouterConfig::default());
            s[0].warm = 5; // even warm affinity cannot save a saturated site
            assert_eq!(aff.route(0, SimTime::ZERO, &s), 1);
        }
        // Saturated everywhere: the explicit least-loaded degradation
        // picks the lower-load site instead of shedding.
        let mut s = sites(&[(0.001, 2.0, 7), (0.090, 2.0, 3)]);
        s[0].forecast = forecast(25.0, 10.0, 2);
        s[1].forecast = forecast(30.0, 10.0, 2);
        let mut slo = SloAwareRouter::new(&cfg);
        assert_eq!(slo.route(0, SimTime::ZERO, &s), 1);
    }

    /// Satellite (cold-start blend): a nonzero penalty shifts routing
    /// toward warm sites in proportion to `1 / (1 + warm)`, while the
    /// default zero penalty leaves scores — and hence every existing
    /// golden — untouched.
    #[test]
    fn cold_start_penalty_blends_warm_census_into_score() {
        let mut s = site(0.010, 2.0, 0);
        // Zero penalty: identical to the pre-blend score.
        assert_eq!(
            predicted_score(&s, 0.95, 0.0),
            s.latency.as_secs_f64() + s.forecast.wait_percentile(0.95)
        );
        // No warm containers: full penalty lands on the score.
        let base = predicted_score(&s, 0.95, 0.0);
        assert!((predicted_score(&s, 0.95, 0.050) - (base + 0.050)).abs() < 1e-12);
        // Census grows: the expected cold-start cost decays as 1/(1+w).
        s.warm = 4;
        assert!((predicted_score(&s, 0.95, 0.050) - (base + 0.010)).abs() < 1e-12);

        // End to end: a closer cold site loses to a farther warm site
        // once the penalty outweighs the hop difference.
        let cfg = RouterConfig {
            slo_ms: 0.0,
            hysteresis_ms: 0.0,
            cold_start_penalty_ms: 100.0,
            ..RouterConfig::default()
        };
        let mut r = SloAwareRouter::new(&cfg);
        let mut sites = sites(&[(0.005, 2.0, 0), (0.030, 2.0, 0)]);
        sites[1].warm = 9; // 100 ms / 10 = 10 ms expected cold cost
        assert_eq!(r.route(0, SimTime::ZERO, &sites), 1);
        // Penalty off: the closer site wins again.
        let mut r = SloAwareRouter::new(&RouterConfig {
            slo_ms: 0.0,
            hysteresis_ms: 0.0,
            ..RouterConfig::default()
        });
        assert_eq!(r.route(0, SimTime::ZERO, &sites), 0);
    }

    #[test]
    fn router_config_round_trips_through_json() {
        let cfg = RouterConfig {
            slo_ms: 150.0,
            percentile: 0.99,
            ..RouterConfig::default()
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: RouterConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.slo_ms, 150.0);
        assert_eq!(back.percentile, 0.99);
        // Partial blocks fill from defaults.
        let partial: RouterConfig = serde_json::from_str(r#"{ "percentile": 0.9 }"#).unwrap();
        assert_eq!(partial.percentile, 0.9);
        assert_eq!(partial.slo_ms, RouterConfig::default().slo_ms);
    }
}
