//! Front-end routing policies for federated multi-site topologies.
//!
//! A federated simulation runs one scheduler instance per *site* (an
//! independent cluster with its own capacity, reached over a network hop
//! of known latency). Every arrival first passes through a front-end
//! router that picks a site; the routing hop's latency is added to the
//! request's response time. [`RouterPolicy`] is the seam that decision
//! plugs into — mirroring how [`SchedulerPolicy`](crate::SchedulerPolicy)
//! is the seam for per-site scheduling.
//!
//! Three routers ship with the workspace:
//!
//! * [`RoundRobinRouter`] — deal arrivals across sites in rotation.
//! * [`LeastLoadedRouter`] — send each arrival to the site with the
//!   lowest in-flight load relative to its capacity.
//! * [`LatencyAwareRouter`] — prefer the lowest-latency (edge) site while
//!   it has headroom and spill to farther (cloud) sites under overload —
//!   the paper's future-work edge↔cloud offload pattern.
//!
//! All routers are deterministic: decisions depend only on the event
//! history, never on wall-clock time or ambient randomness.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Error, Serialize, Value};

/// A router's view of one site at the instant of a routing decision.
#[derive(Debug, Clone)]
pub struct SiteState {
    /// Site display name (for reports and debugging).
    pub name: String,
    /// One-way network latency from the front-end router to the site.
    pub latency: SimDuration,
    /// Rough concurrent-request capacity of the site (the federated
    /// harness uses the site's total CPU core count). Only ratios
    /// matter; the hint normalizes load across heterogeneous sites.
    pub capacity_hint: f64,
    /// Requests currently delivered to the site and not yet finished
    /// (queued + in service).
    pub in_flight: u64,
    /// Whether the site is reachable *right now*. A crashed or
    /// partitioned site is marked down by the chaos layer; every router
    /// must treat a down site as nonexistent, so a site that dies
    /// mid-window stops receiving arrivals at the very next routing
    /// decision (not at the next load refresh).
    pub up: bool,
}

impl SiteState {
    /// In-flight load normalized by the capacity hint.
    pub fn load(&self) -> f64 {
        self.in_flight as f64 / self.capacity_hint.max(f64::MIN_POSITIVE)
    }
}

/// A front-end routing policy: picks the destination site for each
/// arrival in a federated topology.
pub trait RouterPolicy {
    /// Choose a site index in `0..sites.len()` for an arrival of
    /// function `fn_idx` at simulated time `now`. `sites` is never
    /// empty and at least one site is up; the chosen site must be up
    /// (down sites are invisible to arrivals), and returning an
    /// out-of-range or down index is a logic error (the federation
    /// falls back to a live site in release builds and panics in
    /// debug).
    fn route(&mut self, fn_idx: u32, now: SimTime, sites: &[SiteState]) -> usize;

    /// Short policy name carried into reports.
    fn name(&self) -> &'static str;
}

/// Index of the least-loaded **up** site (ties broken toward the lower
/// index). Falls back to index 0 if every site is down (the federation
/// never routes in that state).
fn least_loaded(sites: &[SiteState]) -> usize {
    let mut best: Option<usize> = None;
    for (i, s) in sites.iter().enumerate() {
        if !s.up {
            continue;
        }
        match best {
            Some(b) if sites[b].load() <= s.load() => {}
            _ => best = Some(i),
        }
    }
    best.unwrap_or(0)
}

/// Deal arrivals across sites in strict rotation, ignoring load and
/// latency. The baseline router.
#[derive(Debug, Default)]
pub struct RoundRobinRouter {
    cursor: usize,
}

impl RoundRobinRouter {
    /// A router starting at site 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RouterPolicy for RoundRobinRouter {
    fn route(&mut self, _fn_idx: u32, _now: SimTime, sites: &[SiteState]) -> usize {
        // Deal from the cursor, skipping down sites; when every site is
        // up this is the classic strict rotation.
        let n = sites.len();
        for step in 0..n {
            let i = (self.cursor + step) % n;
            if sites[i].up {
                self.cursor = (i + 1) % n;
                return i;
            }
        }
        self.cursor % n
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Send each arrival to the site with the lowest normalized in-flight
/// load (capacity-aware join-the-shortest-queue).
#[derive(Debug, Default)]
pub struct LeastLoadedRouter;

impl LeastLoadedRouter {
    /// A stateless least-loaded router.
    pub fn new() -> Self {
        Self
    }
}

impl RouterPolicy for LeastLoadedRouter {
    fn route(&mut self, _fn_idx: u32, _now: SimTime, sites: &[SiteState]) -> usize {
        least_loaded(sites)
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

/// Prefer the lowest-latency site that still has headroom; spill to the
/// next-closest site when the preferred one is saturated, and fall back
/// to plain least-loaded when every site is saturated.
///
/// This is the edge↔cloud offload pattern: requests stay at the nearby
/// edge site until its in-flight load exceeds `spill_load × capacity`,
/// then overflow to the (higher-latency, higher-capacity) cloud site.
#[derive(Debug)]
pub struct LatencyAwareRouter {
    /// Normalized load (see [`SiteState::load`]) beyond which a site is
    /// considered saturated. 1.0 means "one in-flight request per unit
    /// of capacity".
    pub spill_load: f64,
}

impl LatencyAwareRouter {
    /// A router that spills once in-flight load reaches the site's
    /// capacity hint.
    pub fn new() -> Self {
        Self { spill_load: 1.0 }
    }
}

impl Default for LatencyAwareRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl RouterPolicy for LatencyAwareRouter {
    fn route(&mut self, _fn_idx: u32, _now: SimTime, sites: &[SiteState]) -> usize {
        let mut best: Option<usize> = None;
        for (i, s) in sites.iter().enumerate() {
            if !s.up || s.load() >= self.spill_load {
                continue;
            }
            match best {
                Some(b) if sites[b].latency <= s.latency => {}
                _ => best = Some(i),
            }
        }
        best.unwrap_or_else(|| least_loaded(sites))
    }

    fn name(&self) -> &'static str {
        "latency-aware"
    }
}

/// The shipped router choices, as named in scenario JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterKind {
    /// [`RoundRobinRouter`] (default).
    #[default]
    RoundRobin,
    /// [`LeastLoadedRouter`].
    LeastLoaded,
    /// [`LatencyAwareRouter`] with the default spill threshold.
    LatencyAware,
}

impl RouterKind {
    /// Every shipped router, for sweeps and tests.
    pub const ALL: [RouterKind; 3] = [
        RouterKind::RoundRobin,
        RouterKind::LeastLoaded,
        RouterKind::LatencyAware,
    ];

    /// The JSON spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round-robin",
            RouterKind::LeastLoaded => "least-loaded",
            RouterKind::LatencyAware => "latency-aware",
        }
    }

    /// Parse a JSON spelling (hyphen or underscore separated).
    pub fn parse(s: &str) -> Option<RouterKind> {
        match s {
            "round-robin" | "round_robin" | "rr" => Some(RouterKind::RoundRobin),
            "least-loaded" | "least_loaded" => Some(RouterKind::LeastLoaded),
            "latency-aware" | "latency_aware" => Some(RouterKind::LatencyAware),
            _ => None,
        }
    }

    /// Instantiate the router.
    pub fn build(self) -> Box<dyn RouterPolicy + Send> {
        match self {
            RouterKind::RoundRobin => Box::new(RoundRobinRouter::new()),
            RouterKind::LeastLoaded => Box::new(LeastLoadedRouter::new()),
            RouterKind::LatencyAware => Box::new(LatencyAwareRouter::new()),
        }
    }
}

impl Serialize for RouterKind {
    fn serialize(&self) -> Value {
        Value::String(self.as_str().to_owned())
    }
}

impl Deserialize for RouterKind {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v.as_str() {
            Some(s) => RouterKind::parse(s).ok_or_else(|| {
                Error::custom(format!(
                    "unknown router {s:?} (expected \"round-robin\", \"least-loaded\", or \"latency-aware\")"
                ))
            }),
            None => Err(Error::custom("router must be a string")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(spec: &[(f64, f64, u64)]) -> Vec<SiteState> {
        spec.iter()
            .enumerate()
            .map(|(i, &(latency, cap, in_flight))| SiteState {
                name: format!("s{i}"),
                latency: SimDuration::from_secs_f64(latency),
                capacity_hint: cap,
                in_flight,
                up: true,
            })
            .collect()
    }

    #[test]
    fn round_robin_rotates() {
        let s = sites(&[(0.0, 1.0, 0), (0.0, 1.0, 0), (0.0, 1.0, 0)]);
        let mut r = RoundRobinRouter::new();
        let picks: Vec<usize> = (0..6).map(|_| r.route(0, SimTime::ZERO, &s)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_normalizes_by_capacity() {
        // Site 0: 3 in flight / 4 cap = 0.75; site 1: 5 / 12 ≈ 0.42.
        let s = sites(&[(0.001, 4.0, 3), (0.040, 12.0, 5)]);
        assert_eq!(LeastLoadedRouter::new().route(0, SimTime::ZERO, &s), 1);
    }

    #[test]
    fn latency_aware_prefers_edge_until_saturated() {
        let mut r = LatencyAwareRouter::new();
        // Edge has headroom: stay at the edge despite cloud being empty.
        let s = sites(&[(0.002, 4.0, 3), (0.040, 100.0, 0)]);
        assert_eq!(r.route(0, SimTime::ZERO, &s), 0);
        // Edge saturated: spill to the cloud.
        let s = sites(&[(0.002, 4.0, 4), (0.040, 100.0, 0)]);
        assert_eq!(r.route(0, SimTime::ZERO, &s), 1);
        // Everything saturated: degrade to least-loaded.
        let s = sites(&[(0.002, 4.0, 8), (0.040, 100.0, 150)]);
        assert_eq!(r.route(0, SimTime::ZERO, &s), 1);
    }

    /// Regression (chaos layer): a site marked down must receive zero
    /// picks from every router, even though routers only read load at
    /// routing time — the `up` flag is part of the per-decision
    /// snapshot, not of a periodic refresh.
    #[test]
    fn down_sites_are_never_picked() {
        let mut s = sites(&[(0.001, 4.0, 0), (0.020, 8.0, 50), (0.050, 16.0, 80)]);
        s[0].up = false; // the attractive site (empty, closest) is down
        for kind in RouterKind::ALL {
            let mut r = kind.build();
            for k in 0..100u64 {
                let i = r.route(0, SimTime::from_secs(k), &s);
                assert_ne!(i, 0, "{} picked a down site", kind.as_str());
                assert!(i < s.len());
            }
        }
    }

    #[test]
    fn round_robin_skips_down_sites_and_keeps_rotating() {
        let mut s = sites(&[(0.0, 1.0, 0), (0.0, 1.0, 0), (0.0, 1.0, 0)]);
        s[1].up = false;
        let mut r = RoundRobinRouter::new();
        let picks: Vec<usize> = (0..6).map(|_| r.route(0, SimTime::ZERO, &s)).collect();
        assert_eq!(picks, vec![0, 2, 0, 2, 0, 2]);
        // The site coming back mid-window rejoins the rotation.
        s[1].up = true;
        let picks: Vec<usize> = (0..6).map(|_| r.route(0, SimTime::ZERO, &s)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn kind_round_trips() {
        for kind in RouterKind::ALL {
            assert_eq!(RouterKind::parse(kind.as_str()), Some(kind));
            assert_eq!(kind.build().name(), kind.as_str());
        }
        assert_eq!(RouterKind::parse("nope"), None);
    }
}
