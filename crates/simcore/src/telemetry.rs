//! Delayed control-plane telemetry between sites and the router.
//!
//! The oracle-fresh federation rebuilds every site's forecast
//! synchronously at the instant of each routing decision — something no
//! real control plane can do. This module models the realistic path: a
//! per-site node agent publishes a [`TelemetrySnapshot`] of its local
//! estimates on a jittered report interval, the snapshot crosses the
//! network at the site's latency, and the router scores sites on the
//! last snapshot that **arrived** — not on live state. While a
//! router↔site partition is active, snapshots are (configurably)
//! dropped, so a partitioned site ages out of the router's view instead
//! of vanishing instantly.
//!
//! Three pieces live here:
//!
//! * [`TelemetryConfig`] — the scenario-level knobs
//!   (`report_interval_ms`, `jitter_ms`, `loss_under_partition`). A
//!   zero interval disables the layer entirely and the federation
//!   routes on oracle-fresh state, byte-for-byte identical to the
//!   pre-telemetry engine (pinned by the goldens).
//! * [`TelemetryRuntime`] — the router-side bookkeeping shared by the
//!   sequential ([`Federation`](crate::federation::Federation)) and
//!   parallel ([`run_federation_parallel`](crate::parallel)) drivers:
//!   the per-site publish schedule (deterministic, from labelled RNG
//!   streams) and the per-site [`SiteView`] of the last arrived
//!   snapshot, with its M/M/c model evaluated once per *arrival*
//!   through a value-keyed
//!   [`SnapshotCache`](lass_queueing::SnapshotCache) — cheaper than the
//!   oracle path, which re-keys per decision.
//! * [`ReconcilerSeam`] — the scaling side of the same delay: a
//!   reconciler reads each *reported* snapshot and emits a desired
//!   server count, which travels back to the site at the same latency
//!   and is applied through the
//!   [`ContainerChaos::apply_desired_fleet`](crate::chaos::ContainerChaos::apply_desired_fleet)
//!   seam — so scaling decisions act on desired-vs-reported state, one
//!   full round-trip stale, like a real control loop.
//!
//! Failure detection under stale telemetry is *passive*: the router
//! marks a site down when its snapshots age out
//! ([`TelemetryRuntime::view_up`]) or when a delivery bounces off the
//! dark site ([`TelemetryRuntime::mark_down`]); the next arrived
//! snapshot marks it back up.

use crate::rng::SimRng;
use crate::router::ResourceSnapshot;
use crate::time::{SimDuration, SimTime};
use lass_queueing::{EvaluatedForecast, SnapshotCache, WaitForecast};

/// Scenario-level telemetry-propagation knobs (the
/// `topology.telemetry` block).
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Interval between a site's telemetry publishes. `ZERO` disables
    /// the propagation layer: the router reads oracle-fresh state,
    /// byte-for-byte identical to the pre-telemetry engine.
    pub report_interval: SimDuration,
    /// Uniform per-publish jitter added to each report instant
    /// (de-synchronizes site agents; must not exceed the interval).
    pub jitter: SimDuration,
    /// Drop snapshots (and reconciler directives) while a router↔site
    /// partition is active, so a partitioned site ages out of the
    /// router's view. `false` models a control plane on a separate
    /// network that survives data-path partitions.
    pub loss_under_partition: bool,
    /// Per-snapshot loss probability, independent of partitions —
    /// background packet loss on the control plane. Each publish slot
    /// draws once from the site's `telemetry:{site}` stream whenever
    /// the probability is nonzero (crashed or partitioned slots
    /// included), so the loss pattern — and the jitter schedule sharing
    /// the stream — is invariant across fault histories and thread
    /// counts. `0` (the default) draws nothing and is byte-identical
    /// to the pre-loss engine.
    pub loss_prob: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            report_interval: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            loss_under_partition: true,
            loss_prob: 0.0,
        }
    }
}

impl TelemetryConfig {
    /// Whether the propagation layer is active (nonzero interval).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.report_interval > SimDuration::ZERO
    }

    /// Check the knobs. A disabled config (zero interval) is always
    /// valid, whatever the jitter — scenario tooling zeroes the
    /// interval to recover oracle behavior without touching the other
    /// fields.
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled() && self.jitter > self.report_interval {
            return Err(format!(
                "telemetry jitter ({}) must not exceed the report interval ({})",
                self.jitter, self.report_interval
            ));
        }
        if self.enabled() && !(self.loss_prob.is_finite() && (0.0..=1.0).contains(&self.loss_prob))
        {
            return Err(format!(
                "telemetry loss_prob ({}) must be a probability in [0, 1]",
                self.loss_prob
            ));
        }
        Ok(())
    }
}

/// One site's published view of itself: what the node agent knew at
/// `published_at`, as it travels toward the router.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Publish instant at the site (routers can compute snapshot age).
    pub published_at: SimTime,
    /// The site's raw λ̂/μ̂/c forecast at publish time.
    pub forecast: WaitForecast,
    /// The site's downtime-EWMA flakiness score at publish time.
    pub flakiness: f64,
    /// Warm-container census per function (registration order).
    pub warm: Vec<u64>,
    /// The site's per-dimension capacity picture at publish time
    /// (all-zero = the site's scheduler reports no resources).
    pub resources: ResourceSnapshot,
}

/// The scaling half of the stale-telemetry loop: reads each *reported*
/// snapshot as it reaches the control plane and may emit a desired
/// server count, which travels back to the site at the same network
/// latency and is applied through
/// [`ContainerChaos::apply_desired_fleet`](crate::chaos::ContainerChaos::apply_desired_fleet).
/// Implementations must be deterministic — decisions may depend only on
/// the snapshot and the clock, never on ambient randomness.
pub trait ReconcilerSeam: Send {
    /// Desired server count for `site` given its `reported` snapshot,
    /// or `None` to leave the site alone this round.
    fn desired_fleet(
        &mut self,
        site: usize,
        reported: &TelemetrySnapshot,
        now: SimTime,
    ) -> Option<u32>;
}

/// A minimal reconciler: size each site's fleet so the *reported*
/// λ̂/μ̂ would run at the target utilization — `c = ⌈λ̂ / (μ̂ ρ)⌉`,
/// floored at one server. Emits a directive only when the desired count
/// differs from the reported one, and stays silent before the site has
/// accumulated a model.
///
/// When the reported snapshot carries a per-dimension capacity picture,
/// a scale-*up* is clamped to the reported fleet once the site's
/// binding dimension is nearly full (≥ `dimension_ceiling`): a fleet
/// directive cannot conjure memory or NIC capacity the site does not
/// have, so the reconciler stops asking. Snapshots without resources
/// (the historical cpu-only path) report zero utilization on every
/// dimension and are never clamped — byte-identical behavior.
#[derive(Debug, Clone, Copy)]
pub struct UtilizationReconciler {
    /// Target per-server utilization ρ ∈ (0, 1).
    pub target_utilization: f64,
    /// Binding-dimension utilization at which scale-up directives are
    /// suppressed (the site cannot fit the extra containers anyway).
    pub dimension_ceiling: f64,
}

impl UtilizationReconciler {
    /// A reconciler targeting utilization `rho`.
    pub fn new(rho: f64) -> Self {
        assert!(
            rho.is_finite() && rho > 0.0 && rho < 1.0,
            "target utilization must be in (0, 1), got {rho}"
        );
        Self {
            target_utilization: rho,
            dimension_ceiling: 0.95,
        }
    }
}

impl ReconcilerSeam for UtilizationReconciler {
    fn desired_fleet(
        &mut self,
        _site: usize,
        reported: &TelemetrySnapshot,
        _now: SimTime,
    ) -> Option<u32> {
        let f = reported.forecast;
        if !f.has_model() {
            return None;
        }
        let mut desired = (f.lambda / (f.mu * self.target_utilization))
            .ceil()
            .max(1.0) as u32;
        if desired > f.servers && reported.resources.max_utilization() >= self.dimension_ceiling {
            desired = f.servers;
        }
        (desired != f.servers).then_some(desired)
    }
}

/// The router's last-arrived view of one site.
#[derive(Debug, Clone, Default)]
pub(crate) struct SiteView {
    /// Believed reachability: cleared when a delivery bounces off the
    /// site, restored by the next arrived snapshot. Freshness is
    /// checked separately ([`TelemetryRuntime::view_up`]).
    pub(crate) up: bool,
    /// Publish instant of the last arrived snapshot (drops stale
    /// out-of-order arrivals; `ZERO` before any snapshot lands).
    pub(crate) last_published: SimTime,
    /// Arrival instant of the last snapshot (drives freshness aging).
    pub(crate) last_arrival: SimTime,
    /// The last arrived forecast, model pre-evaluated at ingest.
    pub(crate) forecast: EvaluatedForecast,
    /// The last arrived flakiness score.
    pub(crate) flakiness: f64,
    /// The last arrived warm census (empty before any snapshot).
    pub(crate) warm: Vec<u64>,
    /// The last arrived per-dimension capacity picture.
    pub(crate) resources: ResourceSnapshot,
    /// Value-keyed evaluation cache: consecutive snapshots of a quiet
    /// site hit without re-running the Erlang-C recurrence.
    cache: SnapshotCache,
}

/// Router-side telemetry bookkeeping: the per-site publish schedule and
/// the per-site last-arrived [`SiteView`]s. Shared by the sequential
/// and parallel federation drivers, which schedule the publish/arrive
/// instants through their own event plumbing but must agree bit-for-bit
/// on *when* snapshots are published (labelled RNG streams keyed by
/// site name) and on what the router sees.
#[derive(Default)]
pub(crate) struct TelemetryRuntime {
    pub(crate) cfg: TelemetryConfig,
    /// Per-site jitter streams, labelled `telemetry:{site name}` off the
    /// master seed — identical across sequential and parallel drivers.
    rngs: Vec<SimRng>,
    /// Per-site next *unjittered* publish instant (the jitter rides on
    /// top, so the base grid never drifts).
    base: Vec<SimTime>,
    pub(crate) views: Vec<SiteView>,
}

impl TelemetryRuntime {
    /// A disabled runtime (zero interval, no sites) — the default for
    /// federations built without a telemetry block.
    pub(crate) fn disabled() -> Self {
        Self::default()
    }

    /// Build the runtime for `site_names`, with `n_fns` functions, off
    /// the run's master seed. Panics on an invalid config (the scenario
    /// layer validates first; direct users get the assert).
    pub(crate) fn new(
        cfg: TelemetryConfig,
        seed: u64,
        site_names: &[String],
        n_fns: usize,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid telemetry config: {e}");
        }
        Self {
            cfg,
            rngs: site_names
                .iter()
                .map(|name| SimRng::from_seed_label(seed, &format!("telemetry:{name}")))
                .collect(),
            base: vec![SimTime::ZERO; site_names.len()],
            views: site_names
                .iter()
                .map(|_| SiteView {
                    up: true,
                    warm: vec![0; n_fns],
                    ..SiteView::default()
                })
                .collect(),
        }
    }

    /// Whether the propagation layer is active.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// The next publish instant for `site`: the base grid advances by
    /// exactly one interval, and a fresh uniform jitter rides on top.
    /// One RNG draw per call, so the schedule is identical however the
    /// run is partitioned across threads.
    pub(crate) fn next_publish(&mut self, site: usize) -> SimTime {
        debug_assert!(self.enabled());
        self.base[site] += self.cfg.report_interval;
        let jitter =
            SimDuration::from_secs_f64(self.rngs[site].uniform() * self.cfg.jitter.as_secs_f64());
        self.base[site] + jitter
    }

    /// Whether this publish slot's snapshot is lost in transit. Exactly
    /// one uniform draw per slot whenever `loss_prob > 0` — callers
    /// invoke this before any crash/partition gating, so the per-site
    /// stream position (and every schedule derived from it) is
    /// invariant across fault histories and thread counts. The zero
    /// default draws nothing, leaving pre-loss schedules untouched.
    pub(crate) fn publish_lost(&mut self, site: usize) -> bool {
        self.cfg.loss_prob > 0.0 && self.rngs[site].uniform() < self.cfg.loss_prob
    }

    /// Fold an arrived snapshot into the site's view. Snapshots
    /// published before the one already ingested are dropped (jitter ≤
    /// interval keeps arrivals in publish order per site, but the guard
    /// makes out-of-order delivery harmless).
    pub(crate) fn ingest(&mut self, site: usize, snap: TelemetrySnapshot, now: SimTime) {
        let view = &mut self.views[site];
        if snap.published_at < view.last_published {
            return;
        }
        view.up = true;
        view.last_published = snap.published_at;
        view.last_arrival = now;
        view.forecast = view.cache.evaluate(snap.forecast);
        view.flakiness = snap.flakiness;
        view.warm = snap.warm;
        view.resources = snap.resources;
    }

    /// Whether the router should treat `site` as up: believed reachable
    /// *and* heard from recently. A site is stale once no snapshot has
    /// arrived for three report intervals plus the maximum jitter plus
    /// the site's network latency — a crashed or partitioned site ages
    /// out after ~3 missed reports instead of vanishing instantly.
    pub(crate) fn view_up(&self, site: usize, latency: SimDuration, now: SimTime) -> bool {
        let view = &self.views[site];
        if !view.up {
            return false;
        }
        let stale_after = self.cfg.report_interval * 3 + self.cfg.jitter + latency;
        now.saturating_since(view.last_arrival) <= stale_after
    }

    /// Mark `site` unreachable in the router's view — passive failure
    /// detection when a delivery bounces off a dark site. The next
    /// arrived snapshot marks it back up.
    pub(crate) fn mark_down(&mut self, site: usize) {
        self.views[site].up = false;
    }

    /// Forget every arrived snapshot (views revert to the cold-start
    /// state) without touching the publish schedule. Used when the
    /// router configuration is swapped before a run.
    pub(crate) fn reset_views(&mut self) {
        for view in &mut self.views {
            view.up = true;
            view.last_published = SimTime::ZERO;
            view.last_arrival = SimTime::ZERO;
            view.forecast = EvaluatedForecast::default();
            view.flakiness = 0.0;
            view.warm.iter_mut().for_each(|w| *w = 0);
            view.resources = ResourceSnapshot::default();
            view.cache.invalidate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("s{i}")).collect()
    }

    #[test]
    fn disabled_config_is_valid_whatever_the_jitter() {
        let cfg = TelemetryConfig {
            report_interval: SimDuration::ZERO,
            jitter: SimDuration::from_millis(50),
            loss_under_partition: true,
            loss_prob: 0.0,
        };
        assert!(!cfg.enabled());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn jitter_beyond_interval_is_rejected_when_enabled() {
        let cfg = TelemetryConfig {
            report_interval: SimDuration::from_millis(100),
            jitter: SimDuration::from_millis(101),
            loss_under_partition: true,
            loss_prob: 0.0,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn loss_prob_outside_unit_interval_is_rejected_when_enabled() {
        let mut cfg = TelemetryConfig {
            report_interval: SimDuration::from_millis(100),
            ..TelemetryConfig::default()
        };
        cfg.loss_prob = 1.5;
        assert!(cfg.validate().is_err());
        cfg.loss_prob = f64::NAN;
        assert!(cfg.validate().is_err());
        cfg.loss_prob = 1.0;
        assert!(cfg.validate().is_ok());
    }

    /// `loss_prob = 0` must draw nothing: the jitter schedule of a
    /// runtime that consults `publish_lost` every slot has to match one
    /// that never heard of snapshot loss, so pre-loss goldens hold.
    #[test]
    fn zero_loss_prob_leaves_the_jitter_stream_untouched() {
        let cfg = TelemetryConfig {
            report_interval: SimDuration::from_millis(250),
            jitter: SimDuration::from_millis(50),
            loss_under_partition: true,
            loss_prob: 0.0,
        };
        let mut with_calls = TelemetryRuntime::new(cfg, 7, &names(1), 1);
        let mut without = TelemetryRuntime::new(cfg, 7, &names(1), 1);
        for _ in 0..20 {
            assert!(!with_calls.publish_lost(0));
            assert_eq!(with_calls.next_publish(0), without.next_publish(0));
        }
    }

    /// With a nonzero probability the loss pattern is deterministic,
    /// per-site, and roughly calibrated.
    #[test]
    fn loss_draws_are_deterministic_per_site_streams() {
        let mut cfg = TelemetryConfig {
            report_interval: SimDuration::from_millis(100),
            ..TelemetryConfig::default()
        };
        cfg.loss_prob = 0.3;
        let mut a = TelemetryRuntime::new(cfg, 7, &names(2), 1);
        let mut b = TelemetryRuntime::new(cfg, 7, &names(2), 1);
        let mut lost = [0u32; 2];
        for _ in 0..400 {
            for (site, tally) in lost.iter_mut().enumerate() {
                a.next_publish(site);
                b.next_publish(site);
                let la = a.publish_lost(site);
                assert_eq!(la, b.publish_lost(site), "loss must be deterministic");
                *tally += u32::from(la);
            }
        }
        for l in lost {
            assert!((60..=180).contains(&l), "loss rate off: {l}/400");
        }
    }

    #[test]
    fn publish_schedule_is_deterministic_and_jitter_bounded() {
        let cfg = TelemetryConfig {
            report_interval: SimDuration::from_millis(250),
            jitter: SimDuration::from_millis(50),
            loss_under_partition: true,
            loss_prob: 0.0,
        };
        let mut a = TelemetryRuntime::new(cfg, 7, &names(2), 1);
        let mut b = TelemetryRuntime::new(cfg, 7, &names(2), 1);
        let mut prev = SimTime::ZERO;
        for k in 1..=20u64 {
            let ta = a.next_publish(0);
            assert_eq!(ta, b.next_publish(0), "schedule must be deterministic");
            let base = SimTime::ZERO + cfg.report_interval * k;
            assert!(
                ta >= base && ta <= base + cfg.jitter,
                "publish {ta} off-grid"
            );
            assert!(ta > prev, "publishes must be strictly ordered");
            prev = ta;
        }
        // Distinct sites draw from distinct streams.
        assert_ne!(a.next_publish(0), b.next_publish(1));
    }

    #[test]
    fn ingest_updates_view_and_drops_out_of_order() {
        let cfg = TelemetryConfig {
            report_interval: SimDuration::from_millis(100),
            jitter: SimDuration::ZERO,
            loss_under_partition: true,
            loss_prob: 0.0,
        };
        let mut rt = TelemetryRuntime::new(cfg, 1, &names(1), 2);
        let fresh = TelemetrySnapshot {
            published_at: SimTime::from_millis(200),
            forecast: WaitForecast {
                lambda: 4.0,
                mu: 10.0,
                servers: 2,
            },
            flakiness: 0.25,
            warm: vec![3, 1],
            resources: ResourceSnapshot::default(),
        };
        rt.ingest(0, fresh, SimTime::from_millis(210));
        assert_eq!(rt.views[0].warm, vec![3, 1]);
        assert_eq!(rt.views[0].flakiness, 0.25);
        assert!(rt.views[0].forecast.has_model());
        // An older publish arriving late must not clobber the view.
        let stale = TelemetrySnapshot {
            published_at: SimTime::from_millis(100),
            forecast: WaitForecast::default(),
            flakiness: 0.9,
            warm: vec![0, 0],
            resources: ResourceSnapshot::default(),
        };
        rt.ingest(0, stale, SimTime::from_millis(215));
        assert_eq!(rt.views[0].flakiness, 0.25);
        assert_eq!(rt.views[0].last_published, SimTime::from_millis(200));
    }

    #[test]
    fn views_age_out_and_bounces_mark_down() {
        let cfg = TelemetryConfig {
            report_interval: SimDuration::from_millis(100),
            jitter: SimDuration::from_millis(20),
            loss_under_partition: true,
            loss_prob: 0.0,
        };
        let mut rt = TelemetryRuntime::new(cfg, 1, &names(1), 1);
        let lat = SimDuration::from_millis(10);
        // Cold start counts as "heard at t=0": up until the threshold.
        assert!(rt.view_up(0, lat, SimTime::from_millis(330)));
        assert!(!rt.view_up(0, lat, SimTime::from_millis(331)));
        let snap = TelemetrySnapshot {
            published_at: SimTime::from_millis(500),
            forecast: WaitForecast::default(),
            flakiness: 0.0,
            warm: vec![0],
            resources: ResourceSnapshot::default(),
        };
        rt.ingest(0, snap.clone(), SimTime::from_millis(510));
        assert!(rt.view_up(0, lat, SimTime::from_millis(840)));
        assert!(!rt.view_up(0, lat, SimTime::from_millis(841)));
        // A bounce marks the site down immediately…
        rt.mark_down(0);
        assert!(!rt.view_up(0, lat, SimTime::from_millis(600)));
        // …and the next arrived snapshot restores it.
        let again = TelemetrySnapshot {
            published_at: SimTime::from_millis(600),
            ..snap
        };
        rt.ingest(0, again, SimTime::from_millis(610));
        assert!(rt.view_up(0, lat, SimTime::from_millis(700)));
    }

    #[test]
    fn utilization_reconciler_sizes_from_reported_state() {
        let mut rec = UtilizationReconciler::new(0.5);
        let mut snap = TelemetrySnapshot {
            published_at: SimTime::ZERO,
            forecast: WaitForecast {
                lambda: 9.0,
                mu: 2.0,
                servers: 3,
            },
            flakiness: 0.0,
            warm: vec![],
            resources: ResourceSnapshot::default(),
        };
        // ⌈9 / (2 · 0.5)⌉ = 9 servers desired vs 3 reported.
        assert_eq!(rec.desired_fleet(0, &snap, SimTime::ZERO), Some(9));
        // Already at the desired size: silent.
        snap.forecast.servers = 9;
        assert_eq!(rec.desired_fleet(0, &snap, SimTime::ZERO), None);
        // No model yet: silent.
        snap.forecast = WaitForecast::default();
        assert_eq!(rec.desired_fleet(0, &snap, SimTime::ZERO), None);
    }

    #[test]
    #[should_panic(expected = "target utilization must be in (0, 1)")]
    fn reconciler_rejects_bad_target() {
        UtilizationReconciler::new(1.5);
    }
}
