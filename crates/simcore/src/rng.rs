//! Seeded random-number streams.
//!
//! Every stochastic component of a simulation (each function's arrival
//! process, each container's service times, …) draws from its **own**
//! deterministic stream, derived from a master seed and a stream label.
//! This keeps experiments exactly reproducible and lets one component's
//! extra draws leave every other component's sequence untouched (common
//! random numbers across policy comparisons).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, LogNormal, Poisson};

/// A deterministic random stream.
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: StdRng,
}

impl SimRng {
    /// Stream derived from a master seed and a label; the same
    /// `(seed, label)` pair always yields the same sequence.
    pub fn from_seed_label(master_seed: u64, label: &str) -> Self {
        // FNV-1a over the label, mixed with the master seed (splitmix64).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut z = master_seed ^ h;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Self {
            rng: StdRng::seed_from_u64(z),
        }
    }

    /// Stream from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Exponential sample with the given rate (mean `1/rate`).
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0 && rate.is_finite(), "invalid rate {rate}");
        Exp::new(rate)
            .expect("validated rate")
            .sample(&mut self.rng)
    }

    /// Poisson sample with the given mean. Returns 0 for a non-positive
    /// mean (an idle trace minute).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        Poisson::new(mean)
            .expect("positive mean")
            .sample(&mut self.rng) as u64
    }

    /// Log-normal sample parameterized by the **linear-space** mean and
    /// coefficient of variation.
    pub fn lognormal_mean_cv(&mut self, mean: f64, cv: f64) -> f64 {
        assert!(mean > 0.0 && cv > 0.0);
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal::new(mu, sigma2.sqrt())
            .expect("finite parameters")
            .sample(&mut self.rng)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen()
    }

    /// Uniform integer in `[0, n)`; panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        self.rng.gen_range(0..n)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_label_same_stream() {
        let mut a = SimRng::from_seed_label(42, "fn:mobilenet");
        let mut b = SimRng::from_seed_label(42, "fn:mobilenet");
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_labels_decorrelate() {
        let mut a = SimRng::from_seed_label(42, "fn:mobilenet");
        let mut b = SimRng::from_seed_label(42, "fn:squeezenet");
        let mut same = 0;
        for _ in 0..100 {
            if (a.uniform() - b.uniform()).abs() < 1e-15 {
                same += 1;
            }
        }
        assert!(same < 3);
    }

    #[test]
    fn exponential_mean_is_right() {
        let mut r = SimRng::from_seed(7);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exp(4.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.25).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn poisson_mean_is_right() {
        let mut r = SimRng::from_seed(8);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| r.poisson(6.5)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 6.5).abs() < 0.05, "mean={mean}");
        assert_eq!(r.poisson(0.0), 0);
        assert_eq!(r.poisson(-3.0), 0);
    }

    #[test]
    fn lognormal_mean_cv() {
        let mut r = SimRng::from_seed(9);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.lognormal_mean_cv(0.1, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 0.1).abs() < 0.002, "mean={mean}");
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 0.5).abs() < 0.02, "cv={cv}");
    }

    #[test]
    fn below_and_chance_bounds() {
        let mut r = SimRng::from_seed(10);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
