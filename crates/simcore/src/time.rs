//! Simulated time.
//!
//! Time is a `u64` count of **nanoseconds** since simulation start. Using an
//! integer (rather than `f64` seconds) keeps the event calendar totally
//! ordered, hash-friendly and exactly reproducible across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (panics on negative/non-finite).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// This instant as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Saturating difference to an earlier instant.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (panics on negative/non-finite).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// This span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// This span as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Integer multiplication (also available via the `*` operator).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, k: u64) -> SimDuration {
        self * k
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_secs_f64(), 3.0);
        assert_eq!(SimTime::from_millis(1500), SimTime::from_secs_f64(1.5));
        assert_eq!(SimDuration::from_micros(2_000), SimDuration::from_millis(2));
        assert!((SimDuration::from_secs_f64(0.1).as_millis_f64() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(500);
        assert_eq!(t, SimTime::from_secs_f64(10.5));
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(500));
        let mut u = SimTime::ZERO;
        u += SimDuration::from_secs(2);
        assert_eq!(u, SimTime::from_secs(2));
        assert_eq!(
            SimDuration::from_secs(1) + SimDuration::from_secs(2),
            SimDuration::from_secs(3)
        );
        assert_eq!(SimDuration::from_secs(5).mul(3), SimDuration::from_secs(15));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(10),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_time_rejected() {
        SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs(1)), "1.000000s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "250.000ms");
    }
}
