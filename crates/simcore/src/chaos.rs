//! Chaos injection: a meta-policy that schedules faults into any
//! fault-tolerant scheduler.
//!
//! [`ChaosPolicy`] wraps a [`ChaosTarget`] — a scheduler that knows how
//! to absorb [`Fault`]s, such as the multi-site
//! [`Federation`](crate::federation::Federation) — and delivers faults
//! from two sources:
//!
//! * **timed events** (`ChaosConfig::events`): an explicit list of
//!   `(instant, fault)` pairs, for reproducing one specific disaster
//!   (the site crash at t = 60 s in the golden tests, say);
//! * **stochastic processes**: per-domain crash/recovery and
//!   partition/heal alternating renewal processes (exponential MTBF /
//!   MTTR) plus a global container-crash-burst process, all drawn from
//!   labelled deterministic [`SimRng`] streams so every chaos run is
//!   byte-for-byte reproducible under its seed.
//!
//! The wrapper is *transparent* when no faults are configured: it
//! schedules nothing, adds no RNG draws, and forwards every engine
//! callback unchanged, so a `ChaosPolicy` around a no-chaos run
//! reproduces the unwrapped run exactly (the chaos test suite pins
//! this against the pre-chaos goldens).
//!
//! What a fault *means* is the target's business: the federation
//! re-routes a crashed site's orphans to surviving sites (cross-site
//! migration), routes arrivals around partitions, and forwards
//! container bursts to the per-site schedulers through the
//! [`ContainerChaos`] seam.

use crate::engine::{Completion, PolicyCtx, ReqId, SchedulerPolicy};
use crate::rng::SimRng;
use crate::time::SimTime;

/// One injectable fault. `site` indexes the target's fault domains
/// (topology order for a federation; domain 0 for single-site targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The site crashes: it drops out of the router's view, its queued
    /// and in-flight requests are orphaned (migrated or failed), and it
    /// stays dark until a matching [`Fault::SiteUp`].
    SiteDown {
        /// Fault-domain index.
        site: u32,
    },
    /// The site recovers from a crash, cold (freshly provisioned).
    SiteUp {
        /// Fault-domain index.
        site: u32,
    },
    /// The router↔site network link is cut: new arrivals are routed
    /// around the site, requests in transit are re-routed, and requests
    /// already at the site have their responses stalled until the
    /// partition heals.
    PartitionStart {
        /// Fault-domain index.
        site: u32,
    },
    /// The partition heals; stalled responses are released.
    PartitionEnd {
        /// Fault-domain index.
        site: u32,
    },
    /// A correlated burst of container crashes at the site — beyond the
    /// independent per-container `container_mtbf_secs` process.
    ContainerBurst {
        /// Fault-domain index.
        site: u32,
        /// How many containers to crash (clamped to the live fleet).
        count: u32,
    },
    /// A brown-out: the site keeps serving, but every service at it runs
    /// at `permille / 1000` of nominal speed (thermal throttling, noisy
    /// neighbours, a degraded disk). The site stays routable — the
    /// slowdown is visible only through the health EWMA and the service
    /// times themselves. `permille ≥ 1000` restores nominal speed (the
    /// recovery event).
    SiteSlowdown {
        /// Fault-domain index.
        site: u32,
        /// Service-speed factor in permille (500 = half speed). Integer
        /// so the fault stays `Eq`/hashable like its siblings.
        permille: u32,
    },
}

impl Fault {
    /// The fault-domain index the fault targets.
    pub fn site(&self) -> u32 {
        match *self {
            Fault::SiteDown { site }
            | Fault::SiteUp { site }
            | Fault::PartitionStart { site }
            | Fault::PartitionEnd { site }
            | Fault::ContainerBurst { site, .. }
            | Fault::SiteSlowdown { site, .. } => site,
        }
    }
}

/// The chaos schedule: timed faults plus stochastic fault processes.
///
/// The default configuration injects nothing — a `ChaosPolicy` built
/// from it is a transparent wrapper.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Explicit faults, as `(seconds, fault)`. Faults at or past the
    /// nominal end of the run are dropped.
    pub events: Vec<(f64, Fault)>,
    /// Mean time between site crashes (per site, exponential). `None`
    /// disables the stochastic crash process.
    pub site_mtbf_secs: Option<f64>,
    /// Mean time to recover a crashed site (exponential).
    pub site_mttr_secs: f64,
    /// Mean time between router↔site partitions (per site, exponential).
    /// `None` disables the stochastic partition process.
    pub partition_mtbf_secs: Option<f64>,
    /// Mean time for a partition to heal (exponential).
    pub partition_mttr_secs: f64,
    /// Mean time between container-crash bursts (global, exponential;
    /// each burst hits one uniformly-drawn site). `None` disables the
    /// stochastic burst process.
    pub burst_mtbf_secs: Option<f64>,
    /// Containers crashed per stochastic burst.
    pub burst_size: u32,
    /// Extra network latency added to a migrated request's re-delivery,
    /// on top of the destination site's inbound hop (checkpoint
    /// transfer, re-admission). Consumed by the federation.
    pub migration_penalty_secs: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            events: Vec::new(),
            site_mtbf_secs: None,
            site_mttr_secs: 30.0,
            partition_mtbf_secs: None,
            partition_mttr_secs: 15.0,
            burst_mtbf_secs: None,
            burst_size: 1,
            migration_penalty_secs: 0.0,
        }
    }
}

impl ChaosConfig {
    /// Whether this configuration injects nothing at all.
    pub fn is_noop(&self) -> bool {
        self.events.is_empty()
            && self.site_mtbf_secs.is_none()
            && self.partition_mtbf_secs.is_none()
            && self.burst_mtbf_secs.is_none()
    }

    /// Materialize the full fault schedule this configuration injects
    /// over a run of `domains` fault domains ending (nominally) at
    /// `end`, in **scheduling order**: timed events in config order
    /// (onsets at or past `end` dropped, recoveries kept), then the
    /// per-domain crash renewals, the per-domain partition renewals, and
    /// the burst process — exactly the order [`ChaosPolicy::on_start`]
    /// schedules them, so the `(time, seq)` pairs of a sequential run
    /// are reproducible from this list. The parallel federated executor
    /// consumes the same list, which is what keeps its fault timeline
    /// byte-identical to the sequential oracle's.
    pub fn build_schedule(&self, seed: u64, domains: usize, end: SimTime) -> Vec<(SimTime, Fault)> {
        let mut out = Vec::new();
        for &(at, fault) in &self.events {
            let at = SimTime::from_secs_f64(at);
            let is_recovery = matches!(
                fault,
                Fault::SiteUp { .. }
                    | Fault::PartitionEnd { .. }
                    | Fault::SiteSlowdown {
                        permille: 1000..,
                        ..
                    }
            );
            if is_recovery || at < end {
                out.push((at, fault));
            }
        }
        let renewal = |rng: &mut SimRng,
                       mtbf: f64,
                       mttr: f64,
                       out: &mut Vec<(SimTime, Fault)>,
                       mut fault_pair: Box<dyn FnMut(bool) -> Fault>| {
            let mut t = 0.0f64;
            loop {
                let down_at = t + rng.exp(1.0 / mtbf);
                if down_at >= end.as_secs_f64() {
                    return;
                }
                let up_at = down_at + rng.exp(1.0 / mttr);
                out.push((SimTime::from_secs_f64(down_at), fault_pair(true)));
                out.push((SimTime::from_secs_f64(up_at), fault_pair(false)));
                t = up_at;
            }
        };
        if let Some(mtbf) = self.site_mtbf_secs {
            for site in 0..domains as u32 {
                let mut rng = SimRng::from_seed_label(seed, &format!("chaos:crash:{site}"));
                renewal(
                    &mut rng,
                    mtbf,
                    self.site_mttr_secs,
                    &mut out,
                    Box::new(move |down| {
                        if down {
                            Fault::SiteDown { site }
                        } else {
                            Fault::SiteUp { site }
                        }
                    }),
                );
            }
        }
        if let Some(mtbf) = self.partition_mtbf_secs {
            for site in 0..domains as u32 {
                let mut rng = SimRng::from_seed_label(seed, &format!("chaos:partition:{site}"));
                renewal(
                    &mut rng,
                    mtbf,
                    self.partition_mttr_secs,
                    &mut out,
                    Box::new(move |down| {
                        if down {
                            Fault::PartitionStart { site }
                        } else {
                            Fault::PartitionEnd { site }
                        }
                    }),
                );
            }
        }
        if let Some(mtbf) = self.burst_mtbf_secs {
            let mut rng = SimRng::from_seed_label(seed, "chaos:burst");
            let mut t = 0.0f64;
            loop {
                t += rng.exp(1.0 / mtbf);
                if t >= end.as_secs_f64() {
                    break;
                }
                let site = rng.below(domains.max(1)) as u32;
                out.push((
                    SimTime::from_secs_f64(t),
                    Fault::ContainerBurst {
                        site,
                        count: self.burst_size,
                    },
                ));
            }
        }
        out
    }

    /// Basic sanity checks on the knobs.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("site_mtbf_secs", self.site_mtbf_secs),
            ("partition_mtbf_secs", self.partition_mtbf_secs),
            ("burst_mtbf_secs", self.burst_mtbf_secs),
        ] {
            if let Some(v) = v {
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!("{name} must be positive, got {v}"));
                }
            }
        }
        for (name, v) in [
            ("site_mttr_secs", self.site_mttr_secs),
            ("partition_mttr_secs", self.partition_mttr_secs),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if !(self.migration_penalty_secs.is_finite() && self.migration_penalty_secs >= 0.0) {
            return Err("migration_penalty_secs must be finite and non-negative".into());
        }
        for (at, _) in &self.events {
            if !(at.is_finite() && *at >= 0.0) {
                return Err(format!("chaos event time must be non-negative, got {at}"));
            }
        }
        Ok(())
    }
}

/// The per-site scheduler's introspection seam: how the federation
/// reaches *inside* a scheduler — to crash its containers (chaos) and
/// to census its warm fleet (affinity routing telemetry).
///
/// The default implementations ignore the request (a scheduler with no
/// container fleet, like a test stub, has nothing to crash or census).
/// Real schedulers terminate up to `count` live containers and
/// re-dispatch the orphaned requests, returning how many containers
/// actually died, and report their per-function warm-container counts.
pub trait ContainerChaos: SchedulerPolicy {
    /// Crash up to `count` containers at `now`. Returns the number of
    /// containers actually crashed.
    fn crash_containers(
        &mut self,
        _ctx: &mut impl PolicyCtx<Self::Event>,
        _count: u32,
        _now: SimTime,
    ) -> u32 {
        0
    }

    /// Warm (booted, non-terminated) containers currently held for
    /// function `fn_idx` — the affinity router's census. Observe-only:
    /// implementations must not mutate state or draw randomness.
    fn warm_containers(&self, _fn_idx: u32) -> u64 {
        0
    }

    /// Apply a reconciler directive: resize toward `desired` total warm
    /// containers. This is the receiving end of the
    /// [`ReconcilerSeam`](crate::telemetry::ReconcilerSeam) round-trip —
    /// the directive was computed from a *reported* snapshot and arrives
    /// one network hop later, so by the time it lands the site may
    /// already have moved on; implementations reconcile toward the
    /// desired state rather than assuming it. Returns whether the
    /// directive changed anything. The default ignores it (a scheduler
    /// with no elastic fleet, or one that scales autonomously, has
    /// nothing to reconcile).
    fn apply_desired_fleet(
        &mut self,
        _ctx: &mut impl PolicyCtx<Self::Event>,
        _desired: u32,
        _now: SimTime,
    ) -> bool {
        false
    }

    /// Scale every subsequent service duration by `factor` (a
    /// [`Fault::SiteSlowdown`] brown-out: 0.5 = half speed = services
    /// take twice as long; 1.0 restores nominal). Requests already in
    /// service finish on their old clock — only new dispatches see the
    /// new factor. The default ignores it (a stub with no service
    /// process has nothing to slow down).
    fn set_service_factor(&mut self, _factor: f64) {}

    /// The site's per-dimension capacity picture (capacity and
    /// allocation on cpu / memory / bandwidth), feeding the planner
    /// router and the per-dimension telemetry columns. Observe-only.
    /// The default reports nothing (all-zero = unknown), which keeps
    /// resource-blind schedulers and their reports byte-identical.
    fn resource_snapshot(&self) -> crate::router::ResourceSnapshot {
        crate::router::ResourceSnapshot::default()
    }
}

/// A scheduler that can absorb [`Fault`]s — the target side of
/// [`ChaosPolicy`].
pub trait ChaosTarget: SchedulerPolicy {
    /// Number of fault domains (sites) the target exposes. Stochastic
    /// fault processes run one renewal process per domain.
    fn fault_domains(&self) -> usize;

    /// Apply one fault at `now`. Out-of-range sites and redundant
    /// transitions (downing a dead site, healing an intact link) must be
    /// ignored, so overlapping timed and stochastic schedules compose.
    fn inject(&mut self, ctx: &mut impl PolicyCtx<Self::Event>, fault: Fault, now: SimTime);
}

/// Events of a chaos-wrapped run: the target's own events plus the
/// injected faults.
pub enum ChaosEv<E> {
    /// The wrapped policy's event.
    Inner(E),
    /// A scheduled fault fires.
    Fault(Fault),
}

/// Pass-through context that unwraps [`ChaosEv`] for the inner policy.
struct InnerCtx<'a, C> {
    inner: &'a mut C,
}

impl<E, C: PolicyCtx<ChaosEv<E>>> PolicyCtx<E> for InnerCtx<'_, C> {
    fn schedule(&mut self, at: SimTime, ev: E) {
        self.inner.schedule(at, ChaosEv::Inner(ev));
    }
    fn end_time(&self) -> SimTime {
        self.inner.end_time()
    }
    fn fn_count(&self) -> usize {
        self.inner.fn_count()
    }
    fn service_rng(&mut self, fn_idx: u32) -> &mut SimRng {
        self.inner.service_rng(fn_idx)
    }
    fn request_info(&self, rid: ReqId) -> Option<(u32, SimTime)> {
        self.inner.request_info(rid)
    }
    fn complete(&mut self, rid: ReqId, started: SimTime, now: SimTime) -> Option<Completion> {
        self.inner.complete(rid, started, now)
    }
    fn abandon(&mut self, rid: ReqId) -> Option<u32> {
        self.inner.abandon(rid)
    }
    fn lose(&mut self, rid: ReqId) -> Option<u32> {
        self.inner.lose(rid)
    }
    fn rerun(&mut self, rid: ReqId) -> Option<u32> {
        self.inner.rerun(rid)
    }
    fn take_window_counts(&mut self) -> Vec<u64> {
        self.inner.take_window_counts()
    }
    fn outstanding(&self) -> usize {
        self.inner.outstanding()
    }
    fn schedule_cancellable(&mut self, at: SimTime, ev: E) -> Option<u64> {
        self.inner.schedule_cancellable(at, ChaosEv::Inner(ev))
    }
    fn cancel_scheduled(&mut self, token: u64) -> bool {
        self.inner.cancel_scheduled(token)
    }
    fn note_hedged(&mut self, fn_idx: u32) {
        self.inner.note_hedged(fn_idx);
    }
    fn note_cancelled(&mut self, fn_idx: u32) {
        self.inner.note_cancelled(fn_idx);
    }
}

/// The chaos meta-policy: schedules the configured faults and forwards
/// everything else to the wrapped target.
pub struct ChaosPolicy<T: ChaosTarget> {
    target: T,
    cfg: ChaosConfig,
    seed: u64,
    /// Faults delivered so far (timed + stochastic).
    faults_injected: usize,
}

impl<T: ChaosTarget> ChaosPolicy<T> {
    /// Wrap `target` under the given chaos schedule. `seed` feeds the
    /// labelled fault streams (`chaos:crash:<site>`,
    /// `chaos:partition:<site>`, `chaos:burst`) — pass the engine seed
    /// so one scenario seed pins the whole run.
    pub fn new(target: T, cfg: ChaosConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid ChaosConfig");
        Self {
            target,
            cfg,
            seed,
            faults_injected: 0,
        }
    }

    /// Faults delivered so far.
    pub fn faults_injected(&self) -> usize {
        self.faults_injected
    }
}

impl<T: ChaosTarget> SchedulerPolicy for ChaosPolicy<T> {
    type Event = ChaosEv<T::Event>;
    type Report = T::Report;

    fn on_start(&mut self, ctx: &mut impl PolicyCtx<Self::Event>) {
        self.target.on_start(&mut InnerCtx { inner: ctx });
        let end = ctx.end_time();
        let domains = self.target.fault_domains();
        // Timed faults first (stable order for equal instants), then the
        // stochastic processes in domain order — all deterministic.
        // Fault onsets at or past the nominal end are pointless and
        // dropped; *recoveries* are scheduled regardless, so a down/up
        // pair straddling the end still heals during the drain instead
        // of leaving the site dark — or its stalled responses buffered —
        // forever. `build_schedule` encodes both rules.
        for (at, fault) in self.cfg.build_schedule(self.seed, domains, end) {
            ctx.schedule(at, ChaosEv::Fault(fault));
        }
    }

    fn on_arrival(
        &mut self,
        ctx: &mut impl PolicyCtx<Self::Event>,
        rid: ReqId,
        fn_idx: u32,
        now: SimTime,
    ) {
        self.target
            .on_arrival(&mut InnerCtx { inner: ctx }, rid, fn_idx, now);
    }

    fn on_event(&mut self, ctx: &mut impl PolicyCtx<Self::Event>, ev: Self::Event, now: SimTime) {
        match ev {
            ChaosEv::Inner(ev) => self.target.on_event(&mut InnerCtx { inner: ctx }, ev, now),
            ChaosEv::Fault(fault) => {
                self.faults_injected += 1;
                self.target.inject(&mut InnerCtx { inner: ctx }, fault, now);
            }
        }
    }

    fn finish(self, outcome: crate::engine::EngineOutcome) -> Self::Report {
        self.target.finish(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::StaticPoisson;
    use crate::engine::{run_simulation, EngineConfig, EngineOutcome, FunctionEntry};

    /// A target that serves everything instantly and logs the faults it
    /// receives (with timestamps).
    struct Probe {
        domains: usize,
        faults: Vec<(f64, Fault)>,
    }

    impl SchedulerPolicy for Probe {
        type Event = ();
        type Report = (EngineOutcome, Vec<(f64, Fault)>);

        fn on_start(&mut self, _ctx: &mut impl PolicyCtx<()>) {}
        fn on_arrival(&mut self, ctx: &mut impl PolicyCtx<()>, rid: ReqId, _f: u32, now: SimTime) {
            ctx.complete(rid, now, now);
        }
        fn on_event(&mut self, _ctx: &mut impl PolicyCtx<()>, _ev: (), _now: SimTime) {}
        fn finish(self, outcome: EngineOutcome) -> Self::Report {
            (outcome, self.faults)
        }
    }

    impl ChaosTarget for Probe {
        fn fault_domains(&self) -> usize {
            self.domains
        }
        fn inject(&mut self, _ctx: &mut impl PolicyCtx<()>, fault: Fault, now: SimTime) {
            self.faults.push((now.as_secs_f64(), fault));
        }
    }

    fn run_probe(cfg: ChaosConfig, seed: u64) -> (EngineOutcome, Vec<(f64, Fault)>) {
        run_simulation(
            EngineConfig {
                seed,
                rng_label_prefix: String::new(),
                duration_secs: 100.0,
                drain_secs: 20.0,
                stream_stats: false,
                parallel_sites: None,
            },
            vec![FunctionEntry {
                name: "probe".into(),
                slo_deadline: 1.0,
                process: Box::new(StaticPoisson::until(5.0, SimTime::from_secs(100))),
            }],
            ChaosPolicy::new(
                Probe {
                    domains: 3,
                    faults: Vec::new(),
                },
                cfg,
                seed,
            ),
        )
    }

    #[test]
    fn timed_faults_fire_in_order_and_past_end_onsets_are_dropped() {
        let cfg = ChaosConfig {
            events: vec![
                (60.0, Fault::SiteDown { site: 0 }),
                (20.0, Fault::PartitionStart { site: 1 }),
                (80.0, Fault::SiteUp { site: 0 }),
                (500.0, Fault::SiteDown { site: 2 }), // onset past the end: dropped
                (110.0, Fault::PartitionEnd { site: 1 }), // recovery in the drain: fires
            ],
            ..ChaosConfig::default()
        };
        let (_, faults) = run_probe(cfg, 1);
        let times: Vec<f64> = faults.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![20.0, 60.0, 80.0, 110.0]);
        assert_eq!(faults[1].1, Fault::SiteDown { site: 0 });
        assert_eq!(faults[3].1, Fault::PartitionEnd { site: 1 });
    }

    #[test]
    fn stochastic_faults_are_deterministic_and_alternate() {
        let cfg = ChaosConfig {
            site_mtbf_secs: Some(30.0),
            site_mttr_secs: 10.0,
            ..ChaosConfig::default()
        };
        let (_, a) = run_probe(cfg.clone(), 7);
        let (_, b) = run_probe(cfg, 7);
        assert!(!a.is_empty(), "mtbf 30 over 100s should crash something");
        assert_eq!(a, b, "same seed must give the same fault schedule");
        // Per site, the first fault is a SiteDown and states alternate.
        for site in 0..3u32 {
            let seq: Vec<&Fault> = a
                .iter()
                .map(|(_, f)| f)
                .filter(|f| f.site() == site)
                .collect();
            for (i, f) in seq.iter().enumerate() {
                let expect_down = i % 2 == 0;
                match f {
                    Fault::SiteDown { .. } => assert!(expect_down, "site {site} seq {i}"),
                    Fault::SiteUp { .. } => assert!(!expect_down, "site {site} seq {i}"),
                    other => panic!("unexpected fault {other:?}"),
                }
            }
        }
    }

    #[test]
    fn burst_process_targets_valid_sites() {
        let cfg = ChaosConfig {
            burst_mtbf_secs: Some(10.0),
            burst_size: 4,
            ..ChaosConfig::default()
        };
        let (_, faults) = run_probe(cfg, 3);
        assert!(!faults.is_empty());
        for (_, f) in &faults {
            match f {
                Fault::ContainerBurst { site, count } => {
                    assert!(*site < 3);
                    assert_eq!(*count, 4);
                }
                other => panic!("unexpected fault {other:?}"),
            }
        }
    }

    #[test]
    fn noop_chaos_is_transparent() {
        let plain = run_simulation(
            EngineConfig {
                seed: 5,
                rng_label_prefix: String::new(),
                duration_secs: 100.0,
                drain_secs: 20.0,
                stream_stats: false,
                parallel_sites: None,
            },
            vec![FunctionEntry {
                name: "probe".into(),
                slo_deadline: 1.0,
                process: Box::new(StaticPoisson::until(5.0, SimTime::from_secs(100))),
            }],
            Probe {
                domains: 3,
                faults: Vec::new(),
            },
        );
        let cfg = ChaosConfig::default();
        assert!(cfg.is_noop());
        let (wrapped, faults) = run_probe(cfg, 5);
        assert!(faults.is_empty());
        assert_eq!(plain.0.per_fn[0].arrivals, wrapped.per_fn[0].arrivals);
        assert_eq!(
            plain.0.per_fn[0].wait.samples(),
            wrapped.per_fn[0].wait.samples()
        );
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        let mut cfg = ChaosConfig::default();
        cfg.site_mtbf_secs = Some(0.0);
        assert!(cfg.validate().is_err());
        let mut cfg = ChaosConfig::default();
        cfg.site_mttr_secs = -1.0;
        assert!(cfg.validate().is_err());
        let mut cfg = ChaosConfig::default();
        cfg.migration_penalty_secs = f64::NAN;
        assert!(cfg.validate().is_err());
        let mut cfg = ChaosConfig::default();
        cfg.events.push((-2.0, Fault::SiteDown { site: 0 }));
        assert!(cfg.validate().is_err());
        assert!(ChaosConfig::default().validate().is_ok());
    }
}
