//! The generic discrete-event simulation engine.
//!
//! Every simulator in this workspace — the LaSS controller simulation,
//! the vanilla-OpenWhisk baseline, the static round-robin strawman — is
//! one event loop with the same skeleton: per-function Poisson arrival
//! processes feed a time-ordered event calendar; requests wait, get
//! served, and complete; per-function latency statistics accumulate. The
//! engine owns that skeleton once:
//!
//! * the event pump (arrival events interleaved with policy events, a
//!   hard drain deadline past the nominal end);
//! * the request table (ids, arrival instants, outstanding count);
//! * deterministic seeding: one labelled [`SimRng`] stream per function
//!   for arrivals and one for service times, derived from a master seed;
//! * per-function measurement ([`FnStats`]): waiting / service /
//!   response [`SampleStats`], SLO-violation, timeout, loss and rerun
//!   counters, plus a windowed arrival counter for rate monitors.
//!
//! What *scheduling* means — which container serves a request, when to
//! scale, when a node melts down — is delegated to a
//! [`SchedulerPolicy`]. A policy is notified of arrivals and of its own
//! scheduled events, and drives the request lifecycle through
//! [`EngineCtx`] (`complete`, `abandon`, `lose`, `rerun`). Adding a new
//! scheduler to the workspace means implementing this trait — roughly a
//! hundred lines — instead of forking another event loop.

use crate::arrivals::ArrivalProcess;
use crate::events::EventQueue;
use crate::metrics::SampleStats;
use crate::reqtable::RequestTable;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use serde::Serialize;

/// A request identifier, unique within one engine run (assigned in
/// arrival order, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

/// One function registered with the engine.
pub struct FunctionEntry {
    /// Display name (carried into [`FnStats`]).
    pub name: String,
    /// SLO deadline (seconds) on the waiting time.
    pub slo_deadline: f64,
    /// The arrival process driving this function.
    pub process: Box<dyn ArrivalProcess + Send>,
}

/// Engine-level run parameters.
pub struct EngineConfig {
    /// Master RNG seed; per-function streams are derived from it.
    pub seed: u64,
    /// Prefix for the derived RNG stream labels (`"{prefix}arrival:{i}"`
    /// / `"{prefix}service:{i}"`). Lets two simulators of the same
    /// scenario draw from decorrelated streams.
    pub rng_label_prefix: String,
    /// Nominal duration (seconds). Recurring policy timers should stop
    /// rescheduling at this horizon.
    pub duration_secs: f64,
    /// Grace period after the nominal end during which in-flight events
    /// still run (lets the system drain).
    pub drain_secs: f64,
    /// Collect per-function statistics in streaming (P², O(1)-memory)
    /// form instead of retaining every sample. Off for the figure-repro
    /// simulations (their goldens hash exact sample vectors); on for
    /// trace replay at 10⁴–10⁶ functions.
    pub stream_stats: bool,
    /// Worker threads for the parallel federated executor
    /// ([`crate::parallel::run_federation_parallel`]). `None` (the
    /// default) keeps the sequential event pump; [`run_simulation`]
    /// itself ignores the knob — federated launchers dispatch on it.
    /// The parallel executor is deterministic in this value's presence
    /// but not its magnitude: any `Some(n)` produces byte-identical
    /// reports.
    pub parallel_sites: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            rng_label_prefix: String::new(),
            duration_secs: 60.0,
            drain_secs: 30.0,
            stream_stats: false,
            parallel_sites: None,
        }
    }
}

/// Per-function statistics collected by the engine.
///
/// `hedged` / `cancelled` count request *clones*: a hedged dispatch
/// duplicates an in-flight request without creating a new engine
/// arrival, and a cancelled clone retires without touching the
/// completion/loss/timeout tallies. The conservation identity therefore
/// stays `arrivals = completed + lost + timeouts + outstanding` with
/// clones accounted for separately. Serialization emits the two keys
/// only when nonzero so reports from hedging-free runs are
/// byte-identical to the pre-hedging format.
#[derive(Debug)]
pub struct FnStats {
    /// Function display name.
    pub name: String,
    /// SLO deadline (seconds) used for violation accounting.
    pub slo_deadline: f64,
    /// Total arrivals.
    pub arrivals: usize,
    /// Completed requests.
    pub completed: usize,
    /// Requests re-dispatched after losing their server.
    pub reruns: usize,
    /// Requests abandoned after exceeding a hard time limit.
    pub timeouts: usize,
    /// Requests dropped without service (no capacity anywhere).
    pub lost: usize,
    /// Requests whose waiting time exceeded the SLO deadline (includes
    /// timeouts).
    pub slo_violations: usize,
    /// Hedge clones dispatched for this function's requests.
    pub hedged: usize,
    /// Hedge clones cancelled after a sibling won the race.
    pub cancelled: usize,
    /// Waiting times (arrival → service start), seconds.
    pub wait: SampleStats,
    /// Response times (arrival → completion), seconds.
    pub response: SampleStats,
    /// Service times (start → completion), seconds.
    pub service: SampleStats,
}

impl Serialize for FnStats {
    fn serialize(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("name".to_string(), self.name.serialize());
        m.insert("slo_deadline".to_string(), self.slo_deadline.serialize());
        m.insert("arrivals".to_string(), self.arrivals.serialize());
        m.insert("completed".to_string(), self.completed.serialize());
        m.insert("reruns".to_string(), self.reruns.serialize());
        m.insert("timeouts".to_string(), self.timeouts.serialize());
        m.insert("lost".to_string(), self.lost.serialize());
        m.insert(
            "slo_violations".to_string(),
            self.slo_violations.serialize(),
        );
        // Hedging tallies appear only when hedging actually fired, so
        // hedge-free reports keep their exact historical byte layout.
        if self.hedged != 0 {
            m.insert("hedged".to_string(), self.hedged.serialize());
        }
        if self.cancelled != 0 {
            m.insert("cancelled".to_string(), self.cancelled.serialize());
        }
        m.insert("wait".to_string(), self.wait.serialize());
        m.insert("response".to_string(), self.response.serialize());
        m.insert("service".to_string(), self.service.serialize());
        serde::Value::Object(m)
    }
}

/// What `EngineCtx::complete` computed for one finished request.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The function the request belonged to.
    pub fn_idx: u32,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Waiting time in seconds.
    pub wait: f64,
    /// Service time in seconds.
    pub service: f64,
    /// Response time in seconds.
    pub response: f64,
    /// Whether the wait exceeded the function's SLO deadline.
    pub violated_slo: bool,
}

/// Everything the engine measured, handed to
/// [`SchedulerPolicy::finish`].
#[derive(Debug)]
pub struct EngineOutcome {
    /// Per-function statistics, indexed by registration order.
    pub per_fn: Vec<FnStats>,
    /// Requests still unanswered when the run ended.
    pub outstanding: usize,
    /// The nominal duration of the run (seconds).
    pub duration_secs: f64,
}

/// The engine surface a [`SchedulerPolicy`] drives during a run.
///
/// [`EngineCtx`] is the canonical implementation; wrappers (such as the
/// per-site scoped context used by [`crate::federation::Federation`])
/// implement it too, remapping event payloads and statistics so a policy
/// written against this trait runs unchanged whether it owns the whole
/// simulation or one site of a federated topology.
pub trait PolicyCtx<E> {
    /// Schedule a policy event at absolute time `at`.
    fn schedule(&mut self, at: SimTime, ev: E);
    /// The nominal end of the run. Recurring timers should not
    /// reschedule at or past this instant.
    fn end_time(&self) -> SimTime;
    /// Number of registered functions.
    fn fn_count(&self) -> usize;
    /// The function's deterministic service-time stream.
    fn service_rng(&mut self, fn_idx: u32) -> &mut SimRng;
    /// Look up a live request: `(fn_idx, arrival)`.
    fn request_info(&self, rid: ReqId) -> Option<(u32, SimTime)>;
    /// Record a completion (see [`EngineCtx::complete`]).
    ///
    /// `None` means the completion was **not** recorded — the request is
    /// unknown (already retired), or a wrapping context withheld it (a
    /// federated site stalling responses behind a network partition).
    /// Policies must tolerate `None` and skip their own completion
    /// accounting; the request may still be live engine-side.
    fn complete(&mut self, rid: ReqId, started: SimTime, now: SimTime) -> Option<Completion>;
    /// Abandon a request that exceeded a hard time limit.
    fn abandon(&mut self, rid: ReqId) -> Option<u32>;
    /// Drop a request that could not be placed anywhere.
    fn lose(&mut self, rid: ReqId) -> Option<u32>;
    /// Note that a live request lost its server and will be re-dispatched.
    fn rerun(&mut self, rid: ReqId) -> Option<u32>;
    /// Arrival counts per function since the previous call; resets the
    /// windows.
    fn take_window_counts(&mut self) -> Vec<u64>;
    /// Requests currently in flight.
    fn outstanding(&self) -> usize;

    // --- Hedging support (defaulted so contexts that cannot hedge — or
    // that merely forward to an inner context — need no changes). ---

    /// Schedule a policy event and return a cancellation token for it.
    /// Contexts without a cancellable calendar return `None`; callers
    /// must then treat the event as uncancellable and make its handler
    /// a liveness-checked no-op, which keeps behaviour (and reports)
    /// identical either way.
    fn schedule_cancellable(&mut self, at: SimTime, ev: E) -> Option<u64> {
        self.schedule(at, ev);
        None
    }
    /// Cancel a pending event by its [`PolicyCtx::schedule_cancellable`]
    /// token. Returns whether the event was still pending. Tokens are
    /// never reused, so a stale cancel is always a no-op.
    fn cancel_scheduled(&mut self, _token: u64) -> bool {
        false
    }
    /// Tally a hedge clone dispatched for `fn_idx`.
    fn note_hedged(&mut self, _fn_idx: u32) {}
    /// Tally a hedge clone cancelled (its sibling won) for `fn_idx`.
    fn note_cancelled(&mut self, _fn_idx: u32) {}
}

/// A scheduling policy plugged into the engine.
///
/// The engine delivers arrivals and the policy's own scheduled events;
/// the policy decides placement/scaling and reports request outcomes
/// back through its [`PolicyCtx`]. Policies are written against the
/// trait rather than [`EngineCtx`] directly so the same implementation
/// can be instantiated once per site under a federated topology.
pub trait SchedulerPolicy {
    /// Policy-private event payloads (timers, completions, failures…).
    type Event;
    /// The report type produced at the end of a run.
    type Report;

    /// Called once before the pump starts (arrival events are already
    /// scheduled). Set up initial state and recurring timers here.
    fn on_start(&mut self, ctx: &mut impl PolicyCtx<Self::Event>);

    /// A new request arrived for function `fn_idx`.
    fn on_arrival(
        &mut self,
        ctx: &mut impl PolicyCtx<Self::Event>,
        rid: ReqId,
        fn_idx: u32,
        now: SimTime,
    );

    /// One of the policy's own events fired.
    fn on_event(&mut self, ctx: &mut impl PolicyCtx<Self::Event>, ev: Self::Event, now: SimTime);

    /// Build the final report from the engine's measurements.
    fn finish(self, outcome: EngineOutcome) -> Self::Report;
}

enum Ev<E> {
    Arrival(u32),
    Policy(E),
}

struct FnRt {
    entry_name: String,
    slo_deadline: f64,
    process: Box<dyn ArrivalProcess + Send>,
    arrival_rng: SimRng,
    service_rng: SimRng,
    window_count: u64,
    arrivals: usize,
    completed: usize,
    reruns: usize,
    timeouts: usize,
    lost: usize,
    slo_violations: usize,
    hedged: usize,
    cancelled: usize,
    wait: SampleStats,
    response: SampleStats,
    service: SampleStats,
}

/// The engine's mutable state, exposed to the policy during a run.
pub struct EngineCtx<E> {
    events: EventQueue<Ev<E>>,
    fns: Vec<FnRt>,
    requests: RequestTable,
    next_req: u64,
    end: SimTime,
    hard_end: SimTime,
}

impl<E> EngineCtx<E> {
    fn new(cfg: &EngineConfig, functions: Vec<FunctionEntry>) -> Self {
        let new_stats = if cfg.stream_stats {
            SampleStats::streaming
        } else {
            SampleStats::new
        };
        let fns = functions
            .into_iter()
            .enumerate()
            .map(|(i, f)| FnRt {
                entry_name: f.name,
                slo_deadline: f.slo_deadline,
                process: f.process,
                arrival_rng: SimRng::from_seed_label(
                    cfg.seed,
                    &format!("{}arrival:{i}", cfg.rng_label_prefix),
                ),
                service_rng: SimRng::from_seed_label(
                    cfg.seed,
                    &format!("{}service:{i}", cfg.rng_label_prefix),
                ),
                window_count: 0,
                arrivals: 0,
                completed: 0,
                reruns: 0,
                timeouts: 0,
                lost: 0,
                slo_violations: 0,
                hedged: 0,
                cancelled: 0,
                wait: new_stats(),
                response: new_stats(),
                service: new_stats(),
            })
            .collect();
        let end = SimTime::from_secs_f64(cfg.duration_secs);
        Self {
            events: EventQueue::new(),
            fns,
            requests: RequestTable::new(),
            next_req: 0,
            end,
            hard_end: end + SimDuration::from_secs_f64(cfg.drain_secs),
        }
    }

    /// Number of registered functions.
    pub fn fn_count(&self) -> usize {
        self.fns.len()
    }

    /// The nominal end of the run. Recurring timers should not
    /// reschedule at or past this instant.
    pub fn end_time(&self) -> SimTime {
        self.end
    }

    /// Schedule a policy event at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, ev: E) {
        self.events.schedule(at, Ev::Policy(ev));
    }

    /// Schedule a policy event and return its cancellation token.
    pub fn schedule_cancellable(&mut self, at: SimTime, ev: E) -> u64 {
        self.events.schedule_cancellable(at, Ev::Policy(ev))
    }

    /// Cancel a pending event; returns whether it was still pending.
    pub fn cancel_scheduled(&mut self, token: u64) -> bool {
        self.events.cancel(token)
    }

    /// The function's deterministic service-time stream.
    pub fn service_rng(&mut self, fn_idx: u32) -> &mut SimRng {
        &mut self.fns[fn_idx as usize].service_rng
    }

    /// Look up a live request: `(fn_idx, arrival)`.
    pub fn request_info(&self, rid: ReqId) -> Option<(u32, SimTime)> {
        self.requests.get(rid.0)
    }

    /// Record a completion: computes wait/service/response from the
    /// stored arrival, feeds the function's statistics, and retires the
    /// request. Returns `None` for an unknown (already retired) request.
    pub fn complete(&mut self, rid: ReqId, started: SimTime, now: SimTime) -> Option<Completion> {
        let (fn_idx, arrival) = self.requests.remove(rid.0)?;
        let wait = started.saturating_since(arrival).as_secs_f64();
        let service = now.saturating_since(started).as_secs_f64();
        let response = now.saturating_since(arrival).as_secs_f64();
        let rt = &mut self.fns[fn_idx as usize];
        rt.completed += 1;
        rt.wait.record(wait);
        rt.service.record(service);
        rt.response.record(response);
        let violated_slo = wait > rt.slo_deadline;
        if violated_slo {
            rt.slo_violations += 1;
        }
        Some(Completion {
            fn_idx,
            arrival,
            wait,
            service,
            response,
            violated_slo,
        })
    }

    /// Abandon a request that exceeded a hard time limit: counts as a
    /// timeout *and* an SLO violation, and retires the request.
    pub fn abandon(&mut self, rid: ReqId) -> Option<u32> {
        let (fn_idx, _) = self.requests.remove(rid.0)?;
        let rt = &mut self.fns[fn_idx as usize];
        rt.timeouts += 1;
        rt.slo_violations += 1;
        Some(fn_idx)
    }

    /// Drop a request that could not be placed anywhere.
    pub fn lose(&mut self, rid: ReqId) -> Option<u32> {
        let (fn_idx, _) = self.requests.remove(rid.0)?;
        self.fns[fn_idx as usize].lost += 1;
        Some(fn_idx)
    }

    /// Note that a live request lost its server and will be
    /// re-dispatched. Returns the owning function while keeping the
    /// request alive.
    pub fn rerun(&mut self, rid: ReqId) -> Option<u32> {
        let (fn_idx, _) = self.requests.get(rid.0)?;
        self.fns[fn_idx as usize].reruns += 1;
        Some(fn_idx)
    }

    /// Arrival counts per function since the previous call (for rate
    /// monitors); resets the windows.
    pub fn take_window_counts(&mut self) -> Vec<u64> {
        self.fns
            .iter_mut()
            .map(|rt| std::mem::take(&mut rt.window_count))
            .collect()
    }

    /// Requests currently in flight.
    pub fn outstanding(&self) -> usize {
        self.requests.len()
    }

    /// Tally a hedge clone dispatched for `fn_idx`.
    pub fn note_hedged(&mut self, fn_idx: u32) {
        self.fns[fn_idx as usize].hedged += 1;
    }

    /// Tally a hedge clone cancelled for `fn_idx`.
    pub fn note_cancelled(&mut self, fn_idx: u32) {
        self.fns[fn_idx as usize].cancelled += 1;
    }

    /// Generation-stamped slot token for a live request (see
    /// [`RequestTable::slot_token`]); used by hedging layers to make a
    /// stale cancel of a reused slot a provable no-op.
    pub fn request_token(&self, rid: ReqId) -> Option<u64> {
        self.requests.slot_token(rid.0)
    }

    /// Whether `token` still refers to `rid`'s live record.
    pub fn request_token_live(&self, rid: ReqId, token: u64) -> bool {
        self.requests.token_live(rid.0, token)
    }

    fn new_request(&mut self, fn_idx: u32, now: SimTime) -> ReqId {
        let rid = ReqId(self.next_req);
        self.next_req += 1;
        self.requests.insert(rid.0, fn_idx, now);
        let rt = &mut self.fns[fn_idx as usize];
        rt.arrivals += 1;
        rt.window_count += 1;
        rid
    }

    fn schedule_next_arrival(&mut self, fn_idx: u32, now: SimTime) {
        let rt = &mut self.fns[fn_idx as usize];
        if let Some(t) = rt.process.next_after(now, &mut rt.arrival_rng) {
            self.events.schedule(t, Ev::Arrival(fn_idx));
        }
    }

    /// The current simulated time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    fn into_outcome(self, duration_secs: f64) -> EngineOutcome {
        EngineOutcome {
            outstanding: self.requests.len(),
            per_fn: self
                .fns
                .into_iter()
                .map(|rt| FnStats {
                    name: rt.entry_name,
                    slo_deadline: rt.slo_deadline,
                    arrivals: rt.arrivals,
                    completed: rt.completed,
                    reruns: rt.reruns,
                    timeouts: rt.timeouts,
                    lost: rt.lost,
                    slo_violations: rt.slo_violations,
                    hedged: rt.hedged,
                    cancelled: rt.cancelled,
                    wait: rt.wait,
                    response: rt.response,
                    service: rt.service,
                })
                .collect(),
            duration_secs,
        }
    }
}

impl<E> PolicyCtx<E> for EngineCtx<E> {
    fn schedule(&mut self, at: SimTime, ev: E) {
        EngineCtx::schedule(self, at, ev);
    }
    fn end_time(&self) -> SimTime {
        EngineCtx::end_time(self)
    }
    fn fn_count(&self) -> usize {
        EngineCtx::fn_count(self)
    }
    fn service_rng(&mut self, fn_idx: u32) -> &mut SimRng {
        EngineCtx::service_rng(self, fn_idx)
    }
    fn request_info(&self, rid: ReqId) -> Option<(u32, SimTime)> {
        EngineCtx::request_info(self, rid)
    }
    fn complete(&mut self, rid: ReqId, started: SimTime, now: SimTime) -> Option<Completion> {
        EngineCtx::complete(self, rid, started, now)
    }
    fn abandon(&mut self, rid: ReqId) -> Option<u32> {
        EngineCtx::abandon(self, rid)
    }
    fn lose(&mut self, rid: ReqId) -> Option<u32> {
        EngineCtx::lose(self, rid)
    }
    fn rerun(&mut self, rid: ReqId) -> Option<u32> {
        EngineCtx::rerun(self, rid)
    }
    fn take_window_counts(&mut self) -> Vec<u64> {
        EngineCtx::take_window_counts(self)
    }
    fn outstanding(&self) -> usize {
        EngineCtx::outstanding(self)
    }
    fn schedule_cancellable(&mut self, at: SimTime, ev: E) -> Option<u64> {
        Some(EngineCtx::schedule_cancellable(self, at, ev))
    }
    fn cancel_scheduled(&mut self, token: u64) -> bool {
        EngineCtx::cancel_scheduled(self, token)
    }
    fn note_hedged(&mut self, fn_idx: u32) {
        EngineCtx::note_hedged(self, fn_idx);
    }
    fn note_cancelled(&mut self, fn_idx: u32) {
        EngineCtx::note_cancelled(self, fn_idx);
    }
}

/// Run `policy` over `functions` until the calendar drains or the hard
/// deadline passes, then let the policy build its report.
pub fn run_simulation<P: SchedulerPolicy>(
    cfg: EngineConfig,
    functions: Vec<FunctionEntry>,
    mut policy: P,
) -> P::Report {
    assert!(
        cfg.duration_secs > 0.0,
        "simulation needs a positive duration"
    );
    let duration_secs = cfg.duration_secs;
    let mut ctx = EngineCtx::new(&cfg, functions);
    for i in 0..ctx.fns.len() as u32 {
        ctx.schedule_next_arrival(i, SimTime::ZERO);
    }
    policy.on_start(&mut ctx);
    while let Some((now, ev)) = ctx.events.pop() {
        if now > ctx.hard_end {
            break;
        }
        match ev {
            Ev::Arrival(fn_idx) => {
                let rid = ctx.new_request(fn_idx, now);
                policy.on_arrival(&mut ctx, rid, fn_idx, now);
                ctx.schedule_next_arrival(fn_idx, now);
            }
            Ev::Policy(e) => policy.on_event(&mut ctx, e, now),
        }
    }
    policy.finish(ctx.into_outcome(duration_secs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::StaticPoisson;

    /// A trivial single-server FCFS policy used to exercise the engine.
    struct SingleServer {
        busy: bool,
        queue: std::collections::VecDeque<(ReqId, SimTime)>,
        service_secs: f64,
    }

    enum SsEv {
        Done(ReqId, SimTime),
    }

    impl SchedulerPolicy for SingleServer {
        type Event = SsEv;
        type Report = EngineOutcome;

        fn on_start(&mut self, _ctx: &mut impl PolicyCtx<SsEv>) {}

        fn on_arrival(
            &mut self,
            ctx: &mut impl PolicyCtx<SsEv>,
            rid: ReqId,
            _f: u32,
            now: SimTime,
        ) {
            if self.busy {
                self.queue.push_back((rid, now));
            } else {
                self.busy = true;
                ctx.schedule(
                    now + SimDuration::from_secs_f64(self.service_secs),
                    SsEv::Done(rid, now),
                );
            }
        }

        fn on_event(&mut self, ctx: &mut impl PolicyCtx<SsEv>, ev: SsEv, now: SimTime) {
            let SsEv::Done(rid, started) = ev;
            ctx.complete(rid, started, now);
            self.busy = false;
            if let Some((next, _)) = self.queue.pop_front() {
                self.busy = true;
                ctx.schedule(
                    now + SimDuration::from_secs_f64(self.service_secs),
                    SsEv::Done(next, now),
                );
            }
        }

        fn finish(self, outcome: EngineOutcome) -> EngineOutcome {
            outcome
        }
    }

    fn run_once(seed: u64) -> EngineOutcome {
        run_simulation(
            EngineConfig {
                seed,
                rng_label_prefix: String::new(),
                duration_secs: 60.0,
                drain_secs: 30.0,
                stream_stats: false,
                parallel_sites: None,
            },
            vec![FunctionEntry {
                name: "probe".into(),
                slo_deadline: 0.5,
                process: Box::new(StaticPoisson::until(5.0, SimTime::from_secs(60))),
            }],
            SingleServer {
                busy: false,
                queue: Default::default(),
                service_secs: 0.05,
            },
        )
    }

    #[test]
    fn engine_runs_and_completes_requests() {
        let out = run_once(1);
        let f = &out.per_fn[0];
        assert!(f.arrivals > 200, "arrivals={}", f.arrivals);
        assert_eq!(f.completed + out.outstanding, f.arrivals);
        assert!(f.wait.count() == f.completed);
        assert!(f.slo_violations <= f.completed);
    }

    #[test]
    fn engine_is_deterministic_per_seed() {
        let (a, b, c) = (run_once(7), run_once(7), run_once(8));
        assert_eq!(a.per_fn[0].arrivals, b.per_fn[0].arrivals);
        assert_eq!(a.per_fn[0].wait.samples(), b.per_fn[0].wait.samples());
        assert_ne!(a.per_fn[0].wait.samples(), c.per_fn[0].wait.samples());
    }

    #[test]
    fn lifecycle_counters_are_disjoint() {
        // Abandon / lose / rerun bookkeeping.
        struct DropAll;
        impl SchedulerPolicy for DropAll {
            type Event = ();
            type Report = EngineOutcome;
            fn on_start(&mut self, _ctx: &mut impl PolicyCtx<()>) {}
            fn on_arrival(
                &mut self,
                ctx: &mut impl PolicyCtx<()>,
                rid: ReqId,
                _f: u32,
                now: SimTime,
            ) {
                match rid.0 % 3 {
                    0 => {
                        ctx.lose(rid);
                    }
                    1 => {
                        ctx.abandon(rid);
                    }
                    _ => {
                        ctx.rerun(rid);
                        ctx.complete(rid, now, now + SimDuration::from_millis(10));
                    }
                }
            }
            fn on_event(&mut self, _ctx: &mut impl PolicyCtx<()>, _ev: (), _now: SimTime) {}
            fn finish(self, outcome: EngineOutcome) -> EngineOutcome {
                outcome
            }
        }
        let out = run_simulation(
            EngineConfig {
                seed: 3,
                rng_label_prefix: "x-".into(),
                duration_secs: 30.0,
                drain_secs: 10.0,
                stream_stats: false,
                parallel_sites: None,
            },
            vec![FunctionEntry {
                name: "drops".into(),
                slo_deadline: 0.1,
                process: Box::new(StaticPoisson::until(10.0, SimTime::from_secs(30))),
            }],
            DropAll,
        );
        let f = &out.per_fn[0];
        assert_eq!(f.lost + f.timeouts + f.completed, f.arrivals);
        assert_eq!(f.reruns, f.completed);
        assert_eq!(out.outstanding, 0);
    }
}
