//! The federated meta-policy: one engine, many sites.
//!
//! [`Federation`] is itself a [`SchedulerPolicy`] — it plugs into the
//! ordinary [`run_simulation`](crate::run_simulation) pump — but instead
//! of scheduling requests onto containers it owns a [`RouterPolicy`] and
//! one *inner* scheduler instance per site. Arrivals are routed to a
//! site, delayed by the site's network latency, and then delivered to
//! that site's scheduler through a scoped [`PolicyCtx`] that:
//!
//! * tags the site's scheduled events so they come back to the right
//!   instance ([`FedEv::Site`]), stamped with the site's *incarnation*
//!   so events of a crashed instance are dropped instead of corrupting
//!   its replacement;
//! * maintains per-site request statistics (the engine's own statistics
//!   remain the cross-site aggregate);
//! * gives each site its own arrival-rate windows, so per-site monitors
//!   observe only the traffic routed to them.
//!
//! Because the inner scheduler is written against [`PolicyCtx`] rather
//! than the concrete engine context, it runs *unchanged* — the same
//! `LassPolicy` that owns a whole simulation serves one site of a
//! federation. A single-site federation with zero latency is the
//! degenerate case and reproduces the plain single-cluster run.
//!
//! Routing latency is modeled on the inbound hop: a request routed at
//! `t` reaches its site at `t + latency`, and since waiting time is
//! measured from the front-end arrival instant, the hop is part of the
//! request's waiting — and therefore response — time, exactly like the
//! paper's edge clients would observe when offloaded to a remote pool.
//!
//! # Router telemetry
//!
//! For every run — whatever the router — the federation maintains
//! per-site model telemetry and refreshes it into the [`SiteState`]
//! snapshot at each routing decision: a
//! [`WaitPredictor`](lass_queueing::WaitPredictor) fed each routed
//! arrival and each completed request's service time (its forecast,
//! memoized per `(λ̂ epoch, μ̂ epoch, servers)` by a
//! [`ForecastCache`](lass_queueing::ForecastCache), drives the
//! SLO-aware and affinity routers), a
//! [`HealthEwma`](lass_queueing::HealthEwma) fed the site's up/down
//! transitions by the chaos path (the failure-aware router's
//! `flakiness` score), and a warm-container census for the routed
//! function pulled through the [`ContainerChaos`] introspection seam.
//! The plumbing is observe-only — no randomness, no events — so
//! routers that ignore it replay their pre-telemetry decisions
//! byte-for-byte (pinned by the goldens).
//!
//! # Failure semantics
//!
//! The federation implements [`ChaosTarget`], so a
//! [`ChaosPolicy`](crate::chaos::ChaosPolicy) wrapper can inject
//! site-level faults:
//!
//! * **Site crash** ([`Fault::SiteDown`]): the site leaves the router's
//!   view immediately. Its queued and in-service requests are orphaned
//!   and **migrated** — re-routed among the surviving sites with the
//!   destination's inbound hop plus a configurable migration penalty,
//!   all of it visible in the request's waiting/response time. Requests
//!   still crossing the network when the site died bounce the same way
//!   at delivery time, so nothing ever lands on a dead site. With no
//!   survivor the request is **failed** (engine-level `lost`). On
//!   [`Fault::SiteUp`] the site restarts *cold* from the rebuild
//!   factory ([`Federation::with_rebuild`]).
//! * **Partition** ([`Fault::PartitionStart`]): the router↔site link is
//!   cut. Arrivals route around the site and in-transit requests bounce
//!   exactly as for a crash, but the site keeps serving what it already
//!   holds; completions are **stalled** — buffered and recorded when
//!   the partition heals, so the stall shows up in response time. (A
//!   stalled request's recorded *service* time also absorbs the stall:
//!   the front-end cannot observe where inside the dark interval the
//!   container actually finished.)
//! * **Container bursts** ([`Fault::ContainerBurst`]) are forwarded to
//!   the site's scheduler through the [`ContainerChaos`] seam.
//!
//! Per-site fault accounting (`migrated`, `failed`, `downtime_secs`, …)
//! is carried in [`SiteReport`]; the engine's aggregate conserves every
//! arrival as completed, failed (lost), timed out, or still outstanding.

use crate::chaos::{ChaosTarget, ContainerChaos, Fault};
use crate::engine::{Completion, EngineOutcome, FnStats, PolicyCtx, ReqId, SchedulerPolicy};
use crate::metrics::{DowntimeClock, SampleStats};
use crate::rng::SimRng;
use crate::router::{predicted_score, ResourceSnapshot, RouterConfig, RouterPolicy, SiteState};
use crate::telemetry::{ReconcilerSeam, TelemetryConfig, TelemetryRuntime, TelemetrySnapshot};
use crate::time::{SimDuration, SimTime};
use lass_queueing::{EvaluatedForecast, ForecastCache, HealthEwma, WaitPredictor};
use serde::{Deserialize, Error, Map, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Static description of one site handed to [`Federation::new`].
#[derive(Debug, Clone)]
pub struct SiteMeta {
    /// Site display name (unique within the topology).
    pub name: String,
    /// One-way network latency from the front-end router to the site.
    pub latency: SimDuration,
    /// Concurrent-request capacity hint used to normalize router load
    /// (typically the site's total CPU core count).
    pub capacity_hint: f64,
}

/// Per-function metadata shared by every site (used to seed the
/// per-site statistics tables).
#[derive(Debug, Clone)]
pub struct FedFunction {
    /// Function display name.
    pub name: String,
    /// SLO deadline (seconds) on the waiting time.
    pub slo_deadline: f64,
    /// Per-container demand vector `[cpu milli, mem MiB, bw Mbps]` of
    /// the function's standard size — what the planner router fits
    /// against a site's [`ResourceSnapshot`]. All-zero (the default for
    /// pre-vector callers) means unknown and never constrains routing.
    pub demand: [f64; 3],
}

/// When a hedged topology dispatches the extra request clones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HedgeTrigger {
    /// Clone at dispatch time, unconditionally.
    Immediate,
    /// Clone only if the primary has not answered after this many
    /// milliseconds (classic deferred hedging: the follow-up fires from
    /// the front-end's own calendar and is cancelled — or degrades to a
    /// liveness-checked no-op — once the primary responds).
    DeferredMs(f64),
    /// Clone at dispatch time only when the primary site's predicted
    /// response (its forecast wait percentile plus the network hop)
    /// already exceeds the configured SLO — hedge exactly the requests
    /// the model expects to miss.
    PredictedP95OverSlo,
}

/// Hedged-request configuration for a [`Federation`] (installed with
/// [`Federation::set_hedge`]; absent = no hedging, byte-identical to
/// the pre-hedging engine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgeConfig {
    /// When clones are dispatched.
    pub trigger: HedgeTrigger,
    /// Maximum extra clones per request (1 = classic hedging pair).
    /// Clones go to the best-scored routable sites not already holding
    /// a copy, so the effective count is also bounded by the topology.
    pub max_clones: u32,
    /// Speculative *retry* deadline, milliseconds. When nonzero it
    /// takes precedence over `trigger`: instead of cloning, the front
    /// end re-issues the request to the next-best site once the
    /// deadline passes and *abandons* the original — a late response
    /// from the abandoned copy is wasted work, not a win. `0` (the
    /// default) disables retries and leaves the trigger in charge.
    pub retry_after_ms: f64,
    /// Admission budget on measured waste: once the fraction of wasted
    /// completions among finished work crosses this value, no further
    /// clones or retries are issued until completions dilute it back
    /// under budget. `0` (the default) means unlimited.
    pub waste_budget: f64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self {
            trigger: HedgeTrigger::Immediate,
            max_clones: 1,
            retry_after_ms: 0.0,
            waste_budget: 0.0,
        }
    }
}

impl HedgeConfig {
    /// Basic sanity checks on the knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_clones == 0 {
            return Err("hedge max_clones must be at least 1".into());
        }
        if let HedgeTrigger::DeferredMs(ms) = self.trigger {
            if !(ms.is_finite() && ms >= 0.0) {
                return Err(format!(
                    "hedge deferred_ms must be finite and non-negative, got {ms}"
                ));
            }
        }
        if !(self.retry_after_ms.is_finite() && self.retry_after_ms >= 0.0) {
            return Err(format!(
                "hedge retry_after_ms must be finite and non-negative, got {}",
                self.retry_after_ms
            ));
        }
        if !(self.waste_budget.is_finite() && (0.0..=1.0).contains(&self.waste_budget)) {
            return Err(format!(
                "hedge waste_budget must be in [0, 1], got {}",
                self.waste_budget
            ));
        }
        Ok(())
    }
}

impl Serialize for HedgeTrigger {
    fn serialize(&self) -> Value {
        match self {
            HedgeTrigger::Immediate => Value::String("immediate".into()),
            HedgeTrigger::DeferredMs(ms) => {
                let mut m = Map::new();
                m.insert("deferred_ms".into(), ms.serialize());
                Value::Object(m)
            }
            HedgeTrigger::PredictedP95OverSlo => Value::String("predicted-p95-over-slo".into()),
        }
    }
}

impl Deserialize for HedgeTrigger {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        if let Some(s) = v.as_str() {
            return match s {
                "immediate" => Ok(HedgeTrigger::Immediate),
                "predicted-p95-over-slo" => Ok(HedgeTrigger::PredictedP95OverSlo),
                other => Err(Error::custom(format!(
                    "unknown hedge trigger {other:?} (expected \"immediate\", \
                     \"predicted-p95-over-slo\", or {{\"deferred_ms\": <ms>}})"
                ))),
            };
        }
        if let Value::Object(m) = v {
            if let (1, Some(ms)) = (m.len(), m.get("deferred_ms")) {
                return Ok(HedgeTrigger::DeferredMs(f64::deserialize(ms)?));
            }
        }
        Err(Error::custom(
            "hedge trigger must be \"immediate\", \"predicted-p95-over-slo\", \
             or {\"deferred_ms\": <ms>}",
        ))
    }
}

impl Serialize for HedgeConfig {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        m.insert("trigger".into(), self.trigger.serialize());
        m.insert("max_clones".into(), self.max_clones.serialize());
        // New knobs appear only when set, so pre-retry configs keep
        // their exact historical byte layout.
        if self.retry_after_ms > 0.0 {
            m.insert("retry_after_ms".into(), self.retry_after_ms.serialize());
        }
        if self.waste_budget > 0.0 {
            m.insert("waste_budget".into(), self.waste_budget.serialize());
        }
        Value::Object(m)
    }
}

impl Deserialize for HedgeConfig {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let m = serde::helpers::as_object(v, "hedge config")?;
        let mut cfg = HedgeConfig::default();
        for (k, val) in m {
            match k.as_str() {
                "trigger" => cfg.trigger = HedgeTrigger::deserialize(val)?,
                "max_clones" => cfg.max_clones = u32::deserialize(val)?,
                "retry_after_ms" => cfg.retry_after_ms = f64::deserialize(val)?,
                "waste_budget" => cfg.waste_budget = f64::deserialize(val)?,
                other => {
                    return Err(Error::custom(format!(
                        "unknown hedge config field {other:?}"
                    )))
                }
            }
        }
        Ok(cfg)
    }
}

/// One logical request's live hedge state: which sites currently hold a
/// copy, plus the deferred-trigger timer (if armed).
struct HedgeGroup {
    /// Sites holding (or about to receive) a copy; the primary first.
    copies: Vec<u32>,
    /// Cancellation token for a pending [`FedEv::HedgeFire`], when the
    /// outer calendar supports cancellation. `None` means the fire
    /// event (if any) is uncancellable and will no-op on arrival.
    fire_token: Option<u64>,
}

/// Events of a federated run: deliveries completing their network hop,
/// plus the inner schedulers' own events tagged by site.
pub enum FedEv<E> {
    /// A routed request reaches its destination site.
    Deliver {
        /// Destination site index.
        site: u32,
        /// The request.
        rid: ReqId,
        /// The request's function.
        fn_idx: u32,
    },
    /// An inner scheduler's event, tagged with its site.
    Site {
        /// Owning site index.
        site: u32,
        /// The site incarnation that scheduled the event. A crash bumps
        /// the incarnation, so events of the dead instance are dropped
        /// instead of being misdelivered to its replacement.
        epoch: u32,
        /// The inner event payload.
        ev: E,
    },
    /// A site's node agent publishes its telemetry snapshot (only
    /// scheduled when the propagation layer is enabled). The handler
    /// re-arms the next publish, so the schedule is self-perpetuating.
    Publish {
        /// Publishing site index.
        site: u32,
    },
    /// A published snapshot completes its network hop and reaches the
    /// router's view.
    SnapshotArrive {
        /// Originating site index.
        site: u32,
        /// The snapshot, as published.
        snap: TelemetrySnapshot,
    },
    /// A reconciler directive (desired server count, computed from a
    /// *reported* snapshot) completes its return hop to the site.
    Directive {
        /// Destination site index.
        site: u32,
        /// Desired total warm-container count.
        desired: u32,
    },
    /// A deferred hedge timer fires: if the request is still unanswered,
    /// dispatch its clones now. Cancelled (or degraded to a
    /// liveness-checked no-op) once the primary responds first.
    HedgeFire {
        /// The hedged request.
        rid: ReqId,
        /// The request's function.
        fn_idx: u32,
    },
    /// A cancellation message for a losing hedge clone completes its
    /// network hop to the clone's site. Arriving after the clone began
    /// service is a wasted-work tally, not an error; arriving at a site
    /// that already shed the clone (crash, migration) is a no-op.
    CancelDeliver {
        /// The losing clone's site.
        site: u32,
        /// The hedged request.
        rid: ReqId,
    },
}

/// Per-site bookkeeping maintained by the scoped context.
pub(crate) struct SiteTally {
    /// Requests delivered to the site and not yet finished.
    pub(crate) in_flight: usize,
    /// Requests the router sent to this site (delivered or in transit).
    pub(crate) routed: usize,
    /// Requests that finished at this site (completed, abandoned, lost,
    /// or migrated away). `routed - finished` is the router's view of
    /// the site's commitment: it includes requests still in transit,
    /// which the front-end knows it dispatched even though the site
    /// hasn't seen them yet — otherwise a burst shorter than the network
    /// hop would herd entirely onto a high-latency site before any
    /// delivery moves its visible load.
    pub(crate) finished: usize,
    /// Per-function arrival counts since the site's last window take.
    pub(crate) window: Vec<u64>,
    /// Per-function statistics of requests finished at this site.
    pub(crate) per_fn: Vec<FnStats>,
    /// Live requests held by the site (delivered, not yet finished),
    /// keyed by request id for deterministic evacuation order.
    pub(crate) live: BTreeMap<u64, u32>,
    /// Completions held back by an ongoing partition: `(rid, started)`.
    pub(crate) stalled: Vec<(u64, SimTime)>,
    /// Whether the site is alive (not crashed).
    pub(crate) up: bool,
    /// Whether the router↔site link is currently cut.
    pub(crate) partitioned: bool,
    /// Whether a [`Fault::SiteSlowdown`] brown-out is active: the site
    /// keeps serving (and stays routable), but the health EWMA sees it
    /// as degraded so the failure-aware router browns it out.
    pub(crate) slowed: bool,
    /// Site incarnation; bumped on crash to invalidate stale events.
    pub(crate) epoch: u32,
    /// Completed crash/rebuild cycles (labels the replacement policy).
    pub(crate) restarts: u32,
    /// The site crashed and its scheduler must be rebuilt on recovery.
    pub(crate) needs_rebuild: bool,
    /// Requests migrated away from this site (orphans of a crash plus
    /// in-transit bounces off a dead or partitioned site).
    pub(crate) migrated_out: usize,
    /// Migrated requests this site accepted from a failing site.
    pub(crate) migrated_in: usize,
    /// Requests committed to this site that could not be migrated
    /// anywhere (engine-level lost).
    pub(crate) failed: usize,
    /// Containers crashed here by chaos bursts.
    pub(crate) chaos_crashes: u32,
    /// Total time the site was unroutable (crashed or partitioned).
    pub(crate) downtime: DowntimeClock,
    /// Online λ̂/μ̂ telemetry feeding the model-driven routers'
    /// forecasts. Observe-only: maintained for every run, read only by
    /// routers that care.
    pub(crate) predictor: WaitPredictor,
    /// Memoized M/M/c evaluation of the predictor's forecast, keyed by
    /// `(λ̂ epoch, μ̂ epoch, server count)`: the refresh before each
    /// routing decision re-evaluates the model only when the predictor
    /// actually advanced a tick (or absorbed a completion) or the
    /// site's warm fleet changed — otherwise it is a key compare and a
    /// copy, allocation-free.
    pub(crate) fcache: ForecastCache,
    /// Downtime EWMA behind the failure-aware router's flakiness score.
    pub(crate) health: HealthEwma,
    /// Hedge clones that lost the race at this site and may still be in
    /// service — their eventual (suppressed) completion is wasted work.
    /// Inserted when the sibling wins, consumed by the suppressed
    /// completion; a clone cancelled while still queued leaves its entry
    /// behind (it never completes), which is bookkeeping-only.
    pub(crate) hedge_lost: BTreeSet<u64>,
    /// Suppressed completions of cancelled clones: containers that ran a
    /// request to the end after its sibling had already answered.
    pub(crate) wasted: usize,
    /// Service seconds burned by those wasted completions.
    pub(crate) wasted_secs: f64,
}

impl SiteTally {
    pub(crate) fn new(functions: &[FedFunction], router_cfg: &RouterConfig) -> Self {
        Self {
            in_flight: 0,
            routed: 0,
            finished: 0,
            window: vec![0; functions.len()],
            per_fn: functions
                .iter()
                .map(|f| FnStats {
                    name: f.name.clone(),
                    slo_deadline: f.slo_deadline,
                    arrivals: 0,
                    completed: 0,
                    reruns: 0,
                    timeouts: 0,
                    lost: 0,
                    slo_violations: 0,
                    hedged: 0,
                    cancelled: 0,
                    wait: SampleStats::new(),
                    response: SampleStats::new(),
                    service: SampleStats::new(),
                })
                .collect(),
            live: BTreeMap::new(),
            stalled: Vec::new(),
            up: true,
            partitioned: false,
            slowed: false,
            epoch: 0,
            restarts: 0,
            needs_rebuild: false,
            migrated_out: 0,
            migrated_in: 0,
            failed: 0,
            chaos_crashes: 0,
            downtime: DowntimeClock::new(),
            predictor: WaitPredictor::new(router_cfg.predictor()),
            fcache: ForecastCache::new(),
            health: HealthEwma::new(router_cfg.health_tick_secs, router_cfg.health_alpha),
            hedge_lost: BTreeSet::new(),
            wasted: 0,
            wasted_secs: 0.0,
        }
    }

    /// Whether the router may send arrivals here right now.
    pub(crate) fn routable(&self) -> bool {
        self.up && !self.partitioned
    }

    /// Fold one finished request into the site's statistics.
    pub(crate) fn record_completion(&mut self, c: &Completion) {
        // Telemetry: the observed service time feeds the site's μ̂
        // estimate. (A partition-stalled completion's recorded service
        // absorbs the stall — the predictor sees the same degraded rate
        // the front-end observes.)
        self.predictor.on_service(c.service);
        let f = &mut self.per_fn[c.fn_idx as usize];
        f.completed += 1;
        f.wait.record(c.wait);
        f.service.record(c.service);
        f.response.record(c.response);
        if c.violated_slo {
            f.slo_violations += 1;
        }
        self.in_flight = self.in_flight.saturating_sub(1);
        self.finished += 1;
    }
}

/// The per-site view of the engine: delegates to the real context while
/// tagging events with the site and keeping the site's statistics.
struct SiteCtx<'a, C> {
    inner: &'a mut C,
    site: u32,
    tally: &'a mut SiteTally,
    /// Logical-request retirements (complete / abandon / lose) recorded
    /// during this callback, as `(rid, site)` — the federation drains
    /// them afterwards to resolve hedge groups (first response wins,
    /// losers get cancel messages). Unused — pushed to and cleared —
    /// when hedging is off.
    resolved: &'a mut Vec<(u64, u32)>,
}

impl<E, C: PolicyCtx<FedEv<E>>> PolicyCtx<E> for SiteCtx<'_, C> {
    fn schedule(&mut self, at: SimTime, ev: E) {
        self.inner.schedule(
            at,
            FedEv::Site {
                site: self.site,
                epoch: self.tally.epoch,
                ev,
            },
        );
    }

    fn end_time(&self) -> SimTime {
        self.inner.end_time()
    }

    fn fn_count(&self) -> usize {
        self.inner.fn_count()
    }

    fn service_rng(&mut self, fn_idx: u32) -> &mut SimRng {
        self.inner.service_rng(fn_idx)
    }

    fn request_info(&self, rid: ReqId) -> Option<(u32, SimTime)> {
        self.inner.request_info(rid)
    }

    fn complete(&mut self, rid: ReqId, started: SimTime, now: SimTime) -> Option<Completion> {
        if self.tally.partitioned {
            // The response cannot cross the cut link: hold it until the
            // partition heals (the stall lands in response time). The
            // policy sees `None` and skips its own completion
            // accounting; the request stays live engine-side.
            if self.tally.live.contains_key(&rid.0) {
                self.tally.stalled.push((rid.0, started));
            }
            return None;
        }
        // A copy this federation already abandoned (speculative retry)
        // must not be allowed to win even if the logical request is
        // still live in the engine: its response is wasted work.
        if self.tally.hedge_lost.remove(&rid.0) {
            self.tally.wasted += 1;
            self.tally.wasted_secs += now.saturating_since(started).as_secs_f64();
            return None;
        }
        match self.inner.complete(rid, started, now) {
            Some(c) => {
                self.tally.live.remove(&rid.0);
                self.tally.record_completion(&c);
                self.resolved.push((rid.0, self.site));
                Some(c)
            }
            None => {
                // A suppressed completion of a hedge clone whose sibling
                // already won: the container ran the request to the end
                // for nothing — wasted work, not an error.
                if self.tally.hedge_lost.remove(&rid.0) {
                    self.tally.wasted += 1;
                    self.tally.wasted_secs += now.saturating_since(started).as_secs_f64();
                }
                None
            }
        }
    }

    fn abandon(&mut self, rid: ReqId) -> Option<u32> {
        let fn_idx = self.inner.abandon(rid)?;
        let f = &mut self.tally.per_fn[fn_idx as usize];
        f.timeouts += 1;
        f.slo_violations += 1;
        self.tally.live.remove(&rid.0);
        self.tally.in_flight = self.tally.in_flight.saturating_sub(1);
        self.tally.finished += 1;
        self.resolved.push((rid.0, self.site));
        Some(fn_idx)
    }

    fn lose(&mut self, rid: ReqId) -> Option<u32> {
        let fn_idx = self.inner.lose(rid)?;
        self.tally.per_fn[fn_idx as usize].lost += 1;
        self.tally.live.remove(&rid.0);
        self.tally.in_flight = self.tally.in_flight.saturating_sub(1);
        self.tally.finished += 1;
        self.resolved.push((rid.0, self.site));
        Some(fn_idx)
    }

    fn rerun(&mut self, rid: ReqId) -> Option<u32> {
        let fn_idx = self.inner.rerun(rid)?;
        self.tally.per_fn[fn_idx as usize].reruns += 1;
        Some(fn_idx)
    }

    fn take_window_counts(&mut self) -> Vec<u64> {
        self.tally.window.iter_mut().map(std::mem::take).collect()
    }

    fn outstanding(&self) -> usize {
        self.tally.in_flight
    }
}

/// A context whose scheduled times are shifted by a fixed offset — used
/// to replay a policy's `on_start` (written against `t = 0`) when its
/// site restarts mid-run.
struct OffsetCtx<'a, C> {
    inner: &'a mut C,
    offset: SimDuration,
}

impl<E, C: PolicyCtx<E>> PolicyCtx<E> for OffsetCtx<'_, C> {
    fn schedule(&mut self, at: SimTime, ev: E) {
        self.inner.schedule(at + self.offset, ev);
    }
    fn end_time(&self) -> SimTime {
        self.inner.end_time()
    }
    fn fn_count(&self) -> usize {
        self.inner.fn_count()
    }
    fn service_rng(&mut self, fn_idx: u32) -> &mut SimRng {
        self.inner.service_rng(fn_idx)
    }
    fn request_info(&self, rid: ReqId) -> Option<(u32, SimTime)> {
        self.inner.request_info(rid)
    }
    fn complete(&mut self, rid: ReqId, started: SimTime, now: SimTime) -> Option<Completion> {
        self.inner.complete(rid, started, now)
    }
    fn abandon(&mut self, rid: ReqId) -> Option<u32> {
        self.inner.abandon(rid)
    }
    fn lose(&mut self, rid: ReqId) -> Option<u32> {
        self.inner.lose(rid)
    }
    fn rerun(&mut self, rid: ReqId) -> Option<u32> {
        self.inner.rerun(rid)
    }
    fn take_window_counts(&mut self) -> Vec<u64> {
        self.inner.take_window_counts()
    }
    fn outstanding(&self) -> usize {
        self.inner.outstanding()
    }
}

/// One site's slice of a [`FederatedReport`].
#[derive(Debug)]
pub struct SiteReport<R> {
    /// Site name.
    pub name: String,
    /// One-way routing latency to the site, seconds.
    pub latency_secs: f64,
    /// Requests the router sent to this site.
    pub routed: usize,
    /// Requests migrated away from this site (crash orphans plus
    /// bounced in-transit deliveries).
    pub migrated: usize,
    /// Migrated requests this site accepted from failing sites.
    pub migrated_in: usize,
    /// Requests committed here that could not be migrated anywhere and
    /// were failed.
    pub failed: usize,
    /// Containers crashed here by chaos bursts.
    pub chaos_crashes: u32,
    /// Total time the site was unroutable (crashed or partitioned),
    /// seconds, measured over the nominal run duration.
    pub downtime_secs: f64,
    /// The site's flakiness score (downtime EWMA in `[0, 1]`) at the
    /// end of the run — the failure-aware router's view of the site.
    pub flakiness: f64,
    /// Hedge clones that ran to completion here after their sibling had
    /// already answered (cancel arrived mid-service or too late).
    pub wasted_work: usize,
    /// Service seconds burned by those wasted completions.
    pub wasted_secs: f64,
    /// End-of-run per-dimension utilization `[cpu, mem, bw]` in
    /// `[0, 1]`, present only for multi-dimensional runs (see
    /// [`Federation::set_multidim`]) — legacy reports keep their exact
    /// historical key set.
    pub utilization: Option<[f64; 3]>,
    /// The inner scheduler's own report, built from the site-local
    /// request statistics.
    pub report: R,
}

/// The report of a federated run: one inner report per site plus the
/// engine's cross-site aggregate.
#[derive(Debug)]
pub struct FederatedReport<R> {
    /// Name of the router that made the dispatch decisions.
    pub router: String,
    /// Per-site reports, in topology order.
    pub per_site: Vec<SiteReport<R>>,
    /// Cross-site per-function statistics (the engine's own measurement,
    /// indexed by function registration order). Waiting times include the
    /// routing hop.
    pub aggregate_per_fn: Vec<FnStats>,
    /// Arrivals dropped at the front door because no site was routable.
    pub unroutable: usize,
    /// Total wasted-work completions across sites (hedge clones served
    /// to the end after their sibling won).
    pub wasted_work: usize,
    /// Requests unanswered when the run ended (including in-transit).
    pub outstanding: usize,
    /// Simulated duration in seconds (excluding drain).
    pub duration: f64,
    /// Worker threads the run *actually* used: 1 for a sequential run
    /// (including the parallel driver's zero-latency/single-site
    /// fallback), the effective pool size otherwise. Deliberately
    /// excluded from the serialized report — the JSON key set is pinned
    /// by goldens, and the thread count must never differ across
    /// byte-identical runs anyway.
    pub threads: usize,
}

impl<R: Serialize> Serialize for SiteReport<R> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        m.insert("name".into(), self.name.serialize());
        m.insert("latency_secs".into(), self.latency_secs.serialize());
        m.insert("routed".into(), self.routed.serialize());
        m.insert("migrated".into(), self.migrated.serialize());
        m.insert("migrated_in".into(), self.migrated_in.serialize());
        m.insert("failed".into(), self.failed.serialize());
        m.insert("chaos_crashes".into(), self.chaos_crashes.serialize());
        m.insert("downtime_secs".into(), self.downtime_secs.serialize());
        m.insert("flakiness".into(), self.flakiness.serialize());
        // Hedging keys appear only when hedging actually wasted work, so
        // hedge-free reports keep their exact historical byte layout.
        if self.wasted_work != 0 {
            m.insert("wasted_work".into(), self.wasted_work.serialize());
            m.insert("wasted_secs".into(), self.wasted_secs.serialize());
        }
        if let Some(util) = self.utilization {
            m.insert("utilization".into(), util.serialize());
        }
        m.insert("report".into(), self.report.serialize());
        Value::Object(m)
    }
}

impl<R: Serialize> Serialize for FederatedReport<R> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        m.insert("router".into(), self.router.serialize());
        m.insert("per_site".into(), self.per_site.serialize());
        m.insert("aggregate_per_fn".into(), self.aggregate_per_fn.serialize());
        m.insert("unroutable".into(), self.unroutable.serialize());
        if self.wasted_work != 0 {
            m.insert("wasted_work".into(), self.wasted_work.serialize());
        }
        m.insert("outstanding".into(), self.outstanding.serialize());
        m.insert("duration".into(), self.duration.serialize());
        Value::Object(m)
    }
}

/// Rebuilds a site's scheduler after a crash: `(site index, restart
/// count)` → a fresh policy instance (cold, as provisioned at `t = 0`).
pub type SiteRebuild<P> = Box<dyn FnMut(usize, u32) -> P + Send>;

/// The federated meta-policy: a router in front of one inner scheduler
/// instance per site. See the module docs for the full contract.
pub struct Federation<P: SchedulerPolicy> {
    pub(crate) sites: Vec<P>,
    pub(crate) metas: Vec<SiteMeta>,
    pub(crate) tallies: Vec<SiteTally>,
    pub(crate) router: Box<dyn RouterPolicy + Send>,
    /// Scratch router view, refreshed from the tallies per decision.
    pub(crate) states: Vec<SiteState>,
    /// The router/telemetry knobs in force (rebuilds a crashed site's
    /// predictor with the same smoothing constants).
    pub(crate) router_cfg: RouterConfig,
    /// Delayed-telemetry propagation state; disabled (zero interval)
    /// unless [`Federation::set_telemetry`] installs a config.
    pub(crate) telemetry: TelemetryRuntime,
    /// Optional scaling reconciler fed each snapshot as it arrives.
    pub(crate) reconciler: Option<Box<dyn ReconcilerSeam>>,
    /// Extra latency added to a migrated request's re-delivery, on top
    /// of the destination's inbound hop.
    pub(crate) migration_penalty: SimDuration,
    /// Factory that rebuilds a crashed site's scheduler on recovery.
    pub(crate) rebuild: Option<SiteRebuild<P>>,
    /// Arrivals dropped because no site was routable.
    pub(crate) unroutable: usize,
    /// Per-function demand vectors in registration order (the planner
    /// router's fit denominators), from [`FedFunction::demand`].
    pub(crate) fn_demands: Vec<[f64; 3]>,
    /// Whether the run opted into multi-dimensional accounting (any
    /// non-default demand vector or an explicit site resources block):
    /// gates the per-dimension `utilization` report key so legacy
    /// reports stay byte-identical.
    pub(crate) multidim: bool,
    /// Hedged-request configuration; `None` disables hedging entirely
    /// (no new events, no new counters — byte-identical reports).
    pub(crate) hedge: Option<HedgeConfig>,
    /// Live hedge groups keyed by request id.
    hedges: BTreeMap<u64, HedgeGroup>,
    /// Retirements recorded by the scoped contexts during the current
    /// callback, drained afterwards to resolve hedge groups.
    hedge_resolved: Vec<(u64, u32)>,
}

impl<P: ContainerChaos> Federation<P> {
    /// Build a federation over `sites` (meta + inner scheduler each),
    /// fronted by `router`. `functions` carries the per-function names
    /// and SLO deadlines used for per-site statistics; it must match the
    /// engine's function registration order.
    pub fn new(
        sites: Vec<(SiteMeta, P)>,
        router: Box<dyn RouterPolicy + Send>,
        functions: &[FedFunction],
    ) -> Self {
        assert!(!sites.is_empty(), "federation needs at least one site");
        let (metas, sites): (Vec<SiteMeta>, Vec<P>) = sites.into_iter().unzip();
        let router_cfg = RouterConfig::default();
        let tallies = metas
            .iter()
            .map(|_| SiteTally::new(functions, &router_cfg))
            .collect();
        let states = metas
            .iter()
            .map(|m| SiteState {
                name: m.name.clone(),
                latency: m.latency,
                capacity_hint: m.capacity_hint,
                in_flight: 0,
                up: true,
                forecast: EvaluatedForecast::default(),
                flakiness: 0.0,
                warm: 0,
                resources: ResourceSnapshot::default(),
                fits: f64::INFINITY,
            })
            .collect();
        Self {
            sites,
            metas,
            tallies,
            router,
            states,
            router_cfg,
            telemetry: TelemetryRuntime::disabled(),
            reconciler: None,
            migration_penalty: SimDuration::ZERO,
            rebuild: None,
            unroutable: 0,
            fn_demands: functions.iter().map(|f| f.demand).collect(),
            multidim: false,
            hedge: None,
            hedges: BTreeMap::new(),
            hedge_resolved: Vec::new(),
        }
    }

    /// Opt the run into multi-dimensional accounting: per-site
    /// per-dimension `utilization` appears in the report. Off by
    /// default so legacy (cpu-only) reports stay byte-identical.
    pub fn set_multidim(&mut self, on: bool) -> &mut Self {
        self.multidim = on;
        self
    }

    /// Install the factory that rebuilds a crashed site's scheduler on
    /// recovery. Required before injecting [`Fault::SiteDown`].
    pub fn with_rebuild(mut self, rebuild: SiteRebuild<P>) -> Self {
        self.rebuild = Some(rebuild);
        self
    }

    /// Collect per-site per-function statistics in streaming (P²,
    /// O(1)-memory) form instead of retaining every sample. Pair with
    /// [`crate::engine::EngineConfig::stream_stats`] when replaying
    /// traces with very large function populations; call before the run
    /// starts.
    pub fn with_streaming_stats(mut self) -> Self {
        for tally in &mut self.tallies {
            for f in &mut tally.per_fn {
                f.wait = SampleStats::streaming();
                f.response = SampleStats::streaming();
                f.service = SampleStats::streaming();
            }
        }
        self
    }

    /// Extra latency added to every migrated request's re-delivery.
    pub fn set_migration_penalty(&mut self, penalty: SimDuration) -> &mut Self {
        self.migration_penalty = penalty;
        self
    }

    /// Re-seed the per-site telemetry (λ̂/μ̂ smoothing, flakiness EWMA)
    /// from a scenario's `router_config` block. Call before the run
    /// starts — the trackers are rebuilt empty, and every telemetry
    /// value already folded into the router's scratch [`SiteState`]s
    /// (forecast, flakiness, warm census) is cleared with them, so the
    /// first post-swap decision can never route on mixed-config scores.
    pub fn set_router_config(&mut self, cfg: &RouterConfig) -> &mut Self {
        self.router_cfg = *cfg;
        for tally in &mut self.tallies {
            tally.predictor = WaitPredictor::new(cfg.predictor());
            tally.fcache = ForecastCache::new();
            tally.health = HealthEwma::new(cfg.health_tick_secs, cfg.health_alpha);
        }
        for state in &mut self.states {
            state.in_flight = 0;
            state.up = true;
            state.forecast = EvaluatedForecast::default();
            state.flakiness = 0.0;
            state.warm = 0;
            state.resources = ResourceSnapshot::default();
            state.fits = f64::INFINITY;
        }
        self.telemetry.reset_views();
        self
    }

    /// Enable delayed telemetry propagation: sites publish snapshots on
    /// `cfg`'s jittered report interval and the router scores them on
    /// the last snapshot that arrived. A zero interval keeps today's
    /// oracle-fresh behavior byte-for-byte. Call before the run starts;
    /// `seed` is the run's master seed (the per-site jitter streams are
    /// labelled off it, identically in the sequential and parallel
    /// drivers).
    pub fn set_telemetry(&mut self, cfg: TelemetryConfig, seed: u64) -> &mut Self {
        let names: Vec<String> = self.metas.iter().map(|m| m.name.clone()).collect();
        let n_fns = self.tallies.first().map_or(0, |t| t.per_fn.len());
        self.telemetry = TelemetryRuntime::new(cfg, seed, &names, n_fns);
        self
    }

    /// Enable hedged requests: depending on `cfg.trigger`, arrivals are
    /// cloned to the best-scored runner-up site(s), the first response
    /// wins, and the losers are cancelled by messages travelling at the
    /// losing site's network latency. Call before the run starts.
    pub fn set_hedge(&mut self, cfg: HedgeConfig) -> &mut Self {
        cfg.validate().expect("invalid HedgeConfig");
        self.hedge = Some(cfg);
        self
    }

    /// Install a scaling reconciler: each snapshot, as it *arrives* at
    /// the control plane, may yield a desired server count that travels
    /// back to the site at the same latency and lands through
    /// [`ContainerChaos::apply_desired_fleet`]. No-op while telemetry
    /// is disabled (there are no snapshots to reconcile against).
    pub fn set_reconciler(&mut self, reconciler: Box<dyn ReconcilerSeam>) -> &mut Self {
        self.reconciler = Some(reconciler);
        self
    }

    /// Refresh the router's scratch view from the tallies: the load
    /// picture plus the model telemetry (λ̂/μ̂ forecast, flakiness, warm
    /// census for the function being routed). Pure bookkeeping — no
    /// randomness, no events — so routers that ignore the telemetry
    /// replay their pre-telemetry decisions exactly.
    ///
    /// With delayed telemetry enabled the site-side columns come from
    /// the last *arrived* snapshot instead ([`Self::refresh_states_stale`]).
    fn refresh_states(&mut self, fn_idx: u32, now: SimTime) {
        if self.telemetry.enabled() {
            self.refresh_states_stale(fn_idx, now);
            return;
        }
        let t = now.as_secs_f64();
        for i in 0..self.states.len() {
            let tally = &mut self.tallies[i];
            let state = &mut self.states[i];
            // The router sees everything it has committed to a site and
            // that hasn't finished — delivered work plus requests still
            // crossing the network hop.
            state.in_flight = tally.routed.saturating_sub(tally.finished) as u64;
            state.up = tally.routable();
            // A browned-out (slowed) site counts as degraded for the
            // health EWMA even though it stays routable.
            tally.health.observe(t, tally.slowed || !tally.routable());
            state.flakiness = tally.health.value();
            state.warm = self.sites[i].warm_containers(fn_idx);
            state.resources = self.sites[i].resource_snapshot();
            state.fits = state.resources.fit_count(
                self.fn_demands
                    .get(fn_idx as usize)
                    .copied()
                    .unwrap_or_default(),
            );
            // Model server count: the predictor's λ̂/μ̂ are site-wide
            // (all functions pooled), so the matching `c` is the
            // site-wide warm fleet — not the routed function's census,
            // which would understate capacity under multi-function
            // traffic. Fall back to the static hint while nothing is
            // warm (cold start, or a site policy without a census).
            let fleet: u64 = (0..tally.per_fn.len())
                .map(|f| self.sites[i].warm_containers(f as u32))
                .sum();
            let servers = if fleet > 0 {
                fleet.min(u64::from(u32::MAX)) as u32
            } else {
                state.capacity_hint.round().max(1.0) as u32
            };
            // The cache re-evaluates the M/M/c model only when the
            // predictor advanced a tick / absorbed a completion or
            // `servers` changed — the steady-state refresh is a key
            // compare plus a copy.
            state.forecast = tally.fcache.refresh(&mut tally.predictor, t, servers);
        }
    }

    /// The stale-telemetry refresh: site-side columns (reachability,
    /// forecast, flakiness, warm census) come from the last snapshot
    /// that *arrived*, however old. Only the commitment counter stays
    /// live — the front-end counts what it dispatched itself, so
    /// `routed − finished` is genuinely router-local knowledge.
    fn refresh_states_stale(&mut self, fn_idx: u32, now: SimTime) {
        for i in 0..self.states.len() {
            let tally = &self.tallies[i];
            let view = &self.telemetry.views[i];
            let state = &mut self.states[i];
            state.in_flight = tally.routed.saturating_sub(tally.finished) as u64;
            state.up = self.telemetry.view_up(i, self.metas[i].latency, now);
            state.forecast = view.forecast;
            state.flakiness = view.flakiness;
            state.warm = view.warm.get(fn_idx as usize).copied().unwrap_or(0);
            state.resources = view.resources;
            state.fits = state.resources.fit_count(
                self.fn_demands
                    .get(fn_idx as usize)
                    .copied()
                    .unwrap_or_default(),
            );
        }
    }

    /// Route an arrival (or migrated orphan) to a live site. Assumes the
    /// caller checked at least one site is routable.
    fn pick_site(&mut self, fn_idx: u32, now: SimTime) -> usize {
        self.refresh_states(fn_idx, now);
        if self.telemetry.enabled() {
            return self.pick_site_stale(fn_idx, now);
        }
        let fallback = self
            .tallies
            .iter()
            .position(SiteTally::routable)
            .expect("caller checked a routable site exists");
        let chosen = self.router.route(fn_idx, now, &self.states);
        let ok = chosen < self.sites.len() && self.tallies[chosen].routable();
        debug_assert!(ok, "router returned unroutable site {chosen}");
        if ok {
            chosen
        } else {
            fallback
        }
    }

    /// The stale-view routing decision (states already refreshed). The
    /// router's contract is judged against its own *view*: it must
    /// never pick a site whose last-arrived snapshot marks it down, but
    /// a view-up site may still be physically dead — that is the point
    /// of stale telemetry — and the delivery will bounce and migrate.
    /// When the view marks *every* site down (mass staleness) the front
    /// end routes blind to the first physically routable site rather
    /// than shedding traffic its own counters can't justify dropping.
    fn pick_site_stale(&mut self, fn_idx: u32, now: SimTime) -> usize {
        let Some(fallback) = self.states.iter().position(|s| s.up) else {
            return self
                .tallies
                .iter()
                .position(SiteTally::routable)
                .expect("caller checked a routable site exists");
        };
        let chosen = self.router.route(fn_idx, now, &self.states);
        let ok = chosen < self.sites.len() && self.states[chosen].up;
        debug_assert!(ok, "router returned view-down site {chosen}");
        if ok {
            chosen
        } else {
            fallback
        }
    }

    /// Whether the waste-admission budget permits issuing another clone
    /// or retry. Measured waste is the fraction of wasted completions
    /// among all finished work so far; with `waste_budget == 0`
    /// (unlimited) this is always true, and existing runs stay
    /// byte-identical.
    fn hedge_within_budget(&self) -> bool {
        let Some(cfg) = self.hedge else { return false };
        if cfg.waste_budget <= 0.0 {
            return true;
        }
        let wasted: usize = self.tallies.iter().map(|t| t.wasted).sum();
        if wasted == 0 {
            return true;
        }
        let completed: usize = self
            .tallies
            .iter()
            .map(|t| t.per_fn.iter().map(|f| f.completed).sum::<usize>())
            .sum();
        (wasted as f64) < cfg.waste_budget * ((completed + wasted) as f64)
    }

    /// Dispatch up to `max_clones` hedge clones of `rid` to the
    /// best-scored routable sites not already holding a copy. Assumes
    /// the router's scratch [`SiteState`]s were refreshed for `fn_idx`.
    /// Runner-up ranking reads the same predicted score the model-driven
    /// routers use but never touches the router itself, so the primary
    /// decision stream is unperturbed.
    fn dispatch_clones(
        &mut self,
        ctx: &mut impl PolicyCtx<FedEv<P::Event>>,
        rid: ReqId,
        fn_idx: u32,
        primary: u32,
        now: SimTime,
    ) {
        let cfg = self.hedge.expect("hedging enabled");
        self.hedges.entry(rid.0).or_insert_with(|| HedgeGroup {
            copies: vec![primary],
            fire_token: None,
        });
        let pct = self.router_cfg.percentile;
        let cold = self.router_cfg.cold_start_penalty_ms / 1e3;
        for _ in 0..cfg.max_clones {
            let copies = &self.hedges[&rid.0].copies;
            let mut best: Option<(f64, usize)> = None;
            for (i, s) in self.states.iter().enumerate() {
                if !s.up || copies.contains(&(i as u32)) {
                    continue;
                }
                let score = predicted_score(s, pct, cold);
                if best.is_none_or(|(b, _)| score < b) {
                    best = Some((score, i));
                }
            }
            let Some((_, c)) = best else { break };
            self.hedges
                .get_mut(&rid.0)
                .expect("group inserted above")
                .copies
                .push(c as u32);
            let tally = &mut self.tallies[c];
            tally.routed += 1;
            tally.predictor.on_arrival(now.as_secs_f64());
            tally.per_fn[fn_idx as usize].hedged += 1;
            ctx.note_hedged(fn_idx);
            let latency = self.metas[c].latency;
            if latency == SimDuration::ZERO {
                self.deliver(ctx, c as u32, rid, fn_idx, now);
            } else {
                ctx.schedule(
                    now + latency,
                    FedEv::Deliver {
                        site: c as u32,
                        rid,
                        fn_idx,
                    },
                );
            }
        }
        // A group that got no clone and has no pending deferred fire
        // dissolves (nothing to race, nothing to cancel).
        if self
            .hedges
            .get(&rid.0)
            .is_some_and(|g| g.copies.len() == 1 && g.fire_token.is_none())
        {
            self.hedges.remove(&rid.0);
        }
    }

    /// The landing side of a loser-cancellation hop: release the site's
    /// books for the clone if it still holds one. Idempotent — the clone
    /// may already have crashed away, migrated, or been consumed at the
    /// delivery door.
    fn cancel_clone_at(
        &mut self,
        ctx: &mut impl PolicyCtx<FedEv<P::Event>>,
        site: u32,
        rid: ReqId,
    ) {
        let tally = &mut self.tallies[site as usize];
        if let Some(fn_idx) = tally.live.remove(&rid.0) {
            tally.in_flight = tally.in_flight.saturating_sub(1);
            tally.finished += 1;
            tally.per_fn[fn_idx as usize].cancelled += 1;
            ctx.note_cancelled(fn_idx);
        }
    }

    /// Resolve hedge groups whose logical request retired during the
    /// callback that just returned: first response wins — the other
    /// copies get cancel messages travelling at their site's latency
    /// (delivered inline for zero-latency sites), and a pending deferred
    /// fire is cancelled where the calendar allows (it degrades to a
    /// liveness-checked no-op where it doesn't).
    fn drain_hedge_resolutions(&mut self, ctx: &mut impl PolicyCtx<FedEv<P::Event>>, now: SimTime) {
        if self.hedge_resolved.is_empty() {
            return;
        }
        if self.hedges.is_empty() {
            self.hedge_resolved.clear();
            return;
        }
        let mut resolved = std::mem::take(&mut self.hedge_resolved);
        for (rid, winner) in resolved.drain(..) {
            let Some(group) = self.hedges.remove(&rid) else {
                continue;
            };
            if let Some(token) = group.fire_token {
                ctx.cancel_scheduled(token);
            }
            for &site in &group.copies {
                if site == winner {
                    continue;
                }
                // Mark the loser immediately (accounting-only: a
                // completion that beats the cancel message home is
                // already wasted work), but release the site's books
                // only when the cancel lands.
                self.tallies[site as usize].hedge_lost.insert(rid);
                let latency = self.metas[site as usize].latency;
                if latency == SimDuration::ZERO {
                    self.cancel_clone_at(ctx, site, ReqId(rid));
                } else {
                    ctx.schedule(
                        now + latency,
                        FedEv::CancelDeliver {
                            site,
                            rid: ReqId(rid),
                        },
                    );
                }
            }
        }
        self.hedge_resolved = resolved;
    }

    /// Deliver a routed request to its site's scheduler.
    fn deliver(
        &mut self,
        ctx: &mut impl PolicyCtx<FedEv<P::Event>>,
        site: u32,
        rid: ReqId,
        fn_idx: u32,
        now: SimTime,
    ) {
        let i = site as usize;
        if self.hedge.is_some() && ctx.request_info(rid).is_none() {
            // A hedge clone arriving after its sibling already answered
            // (the race resolved while it crossed the network): consumed
            // at the door, never enters the scheduler.
            let tally = &mut self.tallies[i];
            tally.finished += 1;
            tally.per_fn[fn_idx as usize].arrivals += 1;
            tally.per_fn[fn_idx as usize].cancelled += 1;
            ctx.note_cancelled(fn_idx);
            return;
        }
        if !self.tallies[i].routable() {
            // The destination died (or was cut off) while the request
            // was in flight: it bounces off the dark site and migrates.
            // Under delayed telemetry the bounce doubles as passive
            // failure detection — the front-end marks the site down in
            // its view long before the snapshots age out (and this
            // bounds the inline zero-hop migrate recursion: each dark
            // site is marked down at most once per outage).
            if self.telemetry.enabled() {
                self.telemetry.mark_down(i);
            }
            self.migrate(ctx, i, rid, fn_idx, now, false);
            return;
        }
        let tally = &mut self.tallies[i];
        tally.in_flight += 1;
        tally.window[fn_idx as usize] += 1;
        tally.per_fn[fn_idx as usize].arrivals += 1;
        tally.live.insert(rid.0, fn_idx);
        self.sites[i].on_arrival(
            &mut SiteCtx {
                inner: ctx,
                site,
                tally,
                resolved: &mut self.hedge_resolved,
            },
            rid,
            fn_idx,
            now,
        );
    }

    /// Move a request committed to site `from` onto a surviving site
    /// (or fail it when none is left). `delivered` says whether the
    /// request had already reached the site (crash orphan) or was still
    /// in transit (bounced delivery).
    fn migrate(
        &mut self,
        ctx: &mut impl PolicyCtx<FedEv<P::Event>>,
        from: usize,
        rid: ReqId,
        fn_idx: u32,
        now: SimTime,
        delivered: bool,
    ) {
        // Release the source site's commitment either way.
        let tally = &mut self.tallies[from];
        tally.finished += 1;
        if delivered {
            tally.in_flight = tally.in_flight.saturating_sub(1);
            tally.live.remove(&rid.0);
        }
        if self.hedge.is_some() {
            // A copy this federation already abandoned (a hedge loser
            // whose cancel is still in flight, or a retry-abandoned
            // original) dies with its site instead of migrating — it
            // must never resurrect as a live copy.
            if self.tallies[from].hedge_lost.remove(&rid.0) {
                if delivered {
                    self.tallies[from].per_fn[fn_idx as usize].cancelled += 1;
                }
                ctx.note_cancelled(fn_idx);
                return;
            }
            let sibling_alive = self.hedges.get(&rid.0).is_some_and(|g| g.copies.len() > 1);
            if sibling_alive || ctx.request_info(rid).is_none() {
                // A hedge clone with a surviving sibling — or whose
                // request already won — dies quietly instead of
                // migrating: an orphaned clone must never resurrect an
                // answered request, and a sibling copy is already racing
                // elsewhere.
                if let Some(g) = self.hedges.get_mut(&rid.0) {
                    g.copies.retain(|&s| s != from as u32);
                }
                if delivered {
                    self.tallies[from].per_fn[fn_idx as usize].cancelled += 1;
                }
                ctx.note_cancelled(fn_idx);
                return;
            }
        }
        if !self.tallies.iter().any(SiteTally::routable) {
            // Nowhere to go: the request is failed.
            self.tallies[from].failed += 1;
            if delivered {
                self.tallies[from].per_fn[fn_idx as usize].lost += 1;
            }
            ctx.lose(rid);
            if self.hedge.is_some() {
                // The last copy of a hedged request failing retires the
                // logical request: resolve its (loser-free) group.
                self.hedge_resolved.push((rid.0, from as u32));
            }
            return;
        }
        self.tallies[from].migrated_out += 1;
        if delivered {
            // The orphan lost its server; the aggregate rerun counter is
            // the cross-site view of that.
            ctx.rerun(rid);
        }
        let dest = self.pick_site(fn_idx, now);
        if self.hedge.is_some() {
            // The surviving last copy moves: keep the group's site map
            // honest so a later resolution cancels the right place.
            if let Some(g) = self.hedges.get_mut(&rid.0) {
                if let Some(p) = g.copies.iter_mut().find(|s| **s == from as u32) {
                    *p = dest as u32;
                }
            }
        }
        self.tallies[dest].routed += 1;
        self.tallies[dest].predictor.on_arrival(now.as_secs_f64());
        self.tallies[dest].migrated_in += 1;
        let hop = self.metas[dest].latency + self.migration_penalty;
        if hop == SimDuration::ZERO {
            self.deliver(ctx, dest as u32, rid, fn_idx, now);
        } else {
            ctx.schedule(
                now + hop,
                FedEv::Deliver {
                    site: dest as u32,
                    rid,
                    fn_idx,
                },
            );
        }
    }

    /// Close the downtime clock transition for site `i` after its
    /// routability may have changed. The instant is clamped to the
    /// nominal end of the run: faults keep resolving through the drain
    /// (recoveries scheduled past `end` still fire), but `downtime_secs`
    /// only measures the nominal window, so a recovery at `end + k` must
    /// close its interval at `end`, not spill `k` extra seconds into the
    /// report.
    fn clock_routability(&mut self, i: usize, now: SimTime, end: SimTime) {
        let tally = &mut self.tallies[i];
        // The flakiness EWMA sees the transition at its true instant.
        tally
            .health
            .observe(now.as_secs_f64(), tally.slowed || !tally.routable());
        let now = now.min(end);
        if tally.routable() {
            tally.downtime.mark_up(now);
        } else {
            tally.downtime.mark_down(now);
        }
    }
}

impl<P: ContainerChaos> SchedulerPolicy for Federation<P> {
    type Event = FedEv<P::Event>;
    type Report = FederatedReport<P::Report>;

    fn on_start(&mut self, ctx: &mut impl PolicyCtx<Self::Event>) {
        for i in 0..self.sites.len() {
            self.sites[i].on_start(&mut SiteCtx {
                inner: ctx,
                site: i as u32,
                tally: &mut self.tallies[i],
                resolved: &mut self.hedge_resolved,
            });
        }
        if self.telemetry.enabled() {
            for i in 0..self.sites.len() {
                let at = self.telemetry.next_publish(i);
                ctx.schedule(at, FedEv::Publish { site: i as u32 });
            }
        }
    }

    fn on_arrival(
        &mut self,
        ctx: &mut impl PolicyCtx<Self::Event>,
        rid: ReqId,
        fn_idx: u32,
        now: SimTime,
    ) {
        if !self.tallies.iter().any(SiteTally::routable) {
            // Every site is dark: the front door has nowhere to send
            // the request and sheds it.
            self.unroutable += 1;
            ctx.lose(rid);
            return;
        }
        let chosen = self.pick_site(fn_idx, now);
        self.tallies[chosen].routed += 1;
        self.tallies[chosen].predictor.on_arrival(now.as_secs_f64());
        let latency = self.metas[chosen].latency;
        if latency == SimDuration::ZERO {
            // Zero-latency hop: deliver inline so the degenerate
            // single-site topology replays the plain run event-for-event.
            self.deliver(ctx, chosen as u32, rid, fn_idx, now);
        } else {
            ctx.schedule(
                now + latency,
                FedEv::Deliver {
                    site: chosen as u32,
                    rid,
                    fn_idx,
                },
            );
        }
        if let Some(hcfg) = self.hedge {
            // A zero-latency primary may already have answered inline;
            // don't hedge a request that is no longer live.
            if ctx.request_info(rid).is_some() {
                if hcfg.retry_after_ms > 0.0 {
                    // Speculative retry: arm the deadline; the original
                    // is abandoned only if it hasn't answered by then.
                    let at = now + SimDuration::from_secs_f64(hcfg.retry_after_ms / 1e3);
                    let token = ctx.schedule_cancellable(at, FedEv::HedgeFire { rid, fn_idx });
                    self.hedges.insert(
                        rid.0,
                        HedgeGroup {
                            copies: vec![chosen as u32],
                            fire_token: token,
                        },
                    );
                } else {
                    match hcfg.trigger {
                        HedgeTrigger::Immediate => {
                            if self.hedge_within_budget() {
                                self.dispatch_clones(ctx, rid, fn_idx, chosen as u32, now);
                            }
                        }
                        HedgeTrigger::PredictedP95OverSlo => {
                            let score = predicted_score(
                                &self.states[chosen],
                                self.router_cfg.percentile,
                                self.router_cfg.cold_start_penalty_ms / 1e3,
                            );
                            if score > self.router_cfg.slo_ms / 1e3 && self.hedge_within_budget() {
                                self.dispatch_clones(ctx, rid, fn_idx, chosen as u32, now);
                            }
                        }
                        HedgeTrigger::DeferredMs(ms) => {
                            let at = now + SimDuration::from_secs_f64(ms / 1e3);
                            let token =
                                ctx.schedule_cancellable(at, FedEv::HedgeFire { rid, fn_idx });
                            self.hedges.insert(
                                rid.0,
                                HedgeGroup {
                                    copies: vec![chosen as u32],
                                    fire_token: token,
                                },
                            );
                        }
                    }
                }
            }
        }
        self.drain_hedge_resolutions(ctx, now);
    }

    fn on_event(&mut self, ctx: &mut impl PolicyCtx<Self::Event>, ev: Self::Event, now: SimTime) {
        match ev {
            FedEv::Deliver { site, rid, fn_idx } => self.deliver(ctx, site, rid, fn_idx, now),
            FedEv::Site { site, epoch, ev } => {
                let i = site as usize;
                if epoch != self.tallies[i].epoch {
                    return; // stale event of a crashed incarnation
                }
                self.sites[i].on_event(
                    &mut SiteCtx {
                        inner: ctx,
                        site,
                        tally: &mut self.tallies[i],
                        resolved: &mut self.hedge_resolved,
                    },
                    ev,
                    now,
                );
            }
            FedEv::HedgeFire { rid, fn_idx } => {
                // Fires only while the group is unresolved (a resolved
                // group cancelled this event, or — under an
                // uncancellable calendar — removed the group, making
                // this a no-op).
                if self.hedges.contains_key(&rid.0) && ctx.request_info(rid).is_some() {
                    self.hedges
                        .get_mut(&rid.0)
                        .expect("checked above")
                        .fire_token = None;
                    let primary = self.hedges[&rid.0].copies[0];
                    let retry = self.hedge.is_some_and(|cfg| cfg.retry_after_ms > 0.0);
                    if !self.hedge_within_budget() {
                        // Over the waste budget: no clone, no retry. A
                        // clone-less group has nothing left to race.
                        self.hedges.remove(&rid.0);
                        return;
                    }
                    self.refresh_states(fn_idx, now);
                    self.dispatch_clones(ctx, rid, fn_idx, primary, now);
                    if retry {
                        // Retry, not hedge: the original is abandoned
                        // once its replacement exists — a late answer
                        // from it is wasted work, not a win.
                        let replaced = self
                            .hedges
                            .get_mut(&rid.0)
                            .filter(|g| g.copies.len() > 1 && g.copies[0] == primary)
                            .map(|g| {
                                g.copies.remove(0);
                            })
                            .is_some();
                        if replaced {
                            self.tallies[primary as usize].hedge_lost.insert(rid.0);
                            let latency = self.metas[primary as usize].latency;
                            if latency == SimDuration::ZERO {
                                self.cancel_clone_at(ctx, primary, rid);
                            } else {
                                ctx.schedule(
                                    now + latency,
                                    FedEv::CancelDeliver { site: primary, rid },
                                );
                            }
                        }
                    }
                }
            }
            FedEv::CancelDeliver { site, rid } => self.cancel_clone_at(ctx, site, rid),
            FedEv::Publish { site } => {
                let i = site as usize;
                // The agent's clock keeps ticking whatever the site's
                // fate — re-arm first (one jitter draw per grid slot, so
                // the schedule is identical across fault histories).
                let next = self.telemetry.next_publish(i);
                ctx.schedule(next, FedEv::Publish { site });
                // Drawn before the fate checks so the stream position is
                // the same whether or not the site is down this slot.
                let lost_in_transit = self.telemetry.publish_lost(i);
                if !self.tallies[i].up {
                    return; // crashed site: the node agent is dead too
                }
                if self.tallies[i].partitioned && self.telemetry.cfg.loss_under_partition {
                    return; // snapshot lost on the cut link
                }
                if lost_in_transit {
                    return; // background control-plane packet loss
                }
                let t = now.as_secs_f64();
                let n_fns = self.tallies[i].per_fn.len();
                let warm: Vec<u64> = (0..n_fns)
                    .map(|f| self.sites[i].warm_containers(f as u32))
                    .collect();
                // Same server-count convention as the oracle refresh:
                // the site-wide warm fleet, falling back to the static
                // capacity hint while nothing is warm.
                let fleet: u64 = warm.iter().sum();
                let servers = if fleet > 0 {
                    fleet.min(u64::from(u32::MAX)) as u32
                } else {
                    self.metas[i].capacity_hint.round().max(1.0) as u32
                };
                // Gated on multidim: legacy reconciler runs must keep
                // seeing unknown (all-zero) resources, or the new
                // dimension ceiling would perturb their directives.
                let resources = if self.multidim {
                    self.sites[i].resource_snapshot()
                } else {
                    ResourceSnapshot::default()
                };
                let tally = &mut self.tallies[i];
                tally.health.observe(t, tally.slowed || !tally.routable());
                let snap = TelemetrySnapshot {
                    published_at: now,
                    forecast: tally.predictor.forecast(t, servers),
                    flakiness: tally.health.value(),
                    warm,
                    resources,
                };
                ctx.schedule(
                    now + self.metas[i].latency,
                    FedEv::SnapshotArrive { site, snap },
                );
            }
            FedEv::SnapshotArrive { site, snap } => {
                let i = site as usize;
                if self.tallies[i].partitioned && self.telemetry.cfg.loss_under_partition {
                    return; // the link was cut while the snapshot flew
                }
                if let Some(rec) = self.reconciler.as_mut() {
                    if let Some(desired) = rec.desired_fleet(i, &snap, now) {
                        ctx.schedule(
                            now + self.metas[i].latency,
                            FedEv::Directive { site, desired },
                        );
                    }
                }
                self.telemetry.ingest(i, snap, now);
            }
            FedEv::Directive { site, desired } => {
                let i = site as usize;
                let tally = &mut self.tallies[i];
                if !tally.up || (tally.partitioned && self.telemetry.cfg.loss_under_partition) {
                    return; // directive lost with the site or the link
                }
                self.sites[i].apply_desired_fleet(
                    &mut SiteCtx {
                        inner: ctx,
                        site,
                        tally,
                        resolved: &mut self.hedge_resolved,
                    },
                    desired,
                    now,
                );
            }
        }
        self.drain_hedge_resolutions(ctx, now);
    }

    fn finish(self, outcome: EngineOutcome) -> Self::Report {
        let duration = outcome.duration_secs;
        let end = SimTime::from_secs_f64(duration);
        let multidim = self.multidim;
        let per_site = self
            .sites
            .into_iter()
            .zip(self.metas)
            .zip(self.tallies)
            .map(|((site, meta), tally)| {
                let utilization = multidim.then(|| site.resource_snapshot().utilization());
                let site_outcome = EngineOutcome {
                    per_fn: tally.per_fn,
                    outstanding: tally.in_flight,
                    duration_secs: duration,
                };
                SiteReport {
                    name: meta.name,
                    latency_secs: meta.latency.as_secs_f64(),
                    routed: tally.routed,
                    migrated: tally.migrated_out,
                    migrated_in: tally.migrated_in,
                    failed: tally.failed,
                    chaos_crashes: tally.chaos_crashes,
                    downtime_secs: tally.downtime.total_until(end),
                    flakiness: tally.health.value(),
                    wasted_work: tally.wasted,
                    wasted_secs: tally.wasted_secs,
                    utilization,
                    report: site.finish(site_outcome),
                }
            })
            .collect::<Vec<_>>();
        let wasted_work = per_site.iter().map(|s| s.wasted_work).sum();
        FederatedReport {
            router: self.router.name().to_owned(),
            per_site,
            aggregate_per_fn: outcome.per_fn,
            unroutable: self.unroutable,
            wasted_work,
            outstanding: outcome.outstanding,
            duration,
            threads: 1,
        }
    }
}

impl<P: ContainerChaos> ChaosTarget for Federation<P> {
    fn fault_domains(&self) -> usize {
        self.sites.len()
    }

    fn inject(&mut self, ctx: &mut impl PolicyCtx<Self::Event>, fault: Fault, now: SimTime) {
        let i = fault.site() as usize;
        if i >= self.sites.len() {
            debug_assert!(false, "fault targets unknown site {i}");
            return;
        }
        let end = ctx.end_time();
        match fault {
            Fault::SiteDown { .. } => {
                if !self.tallies[i].up {
                    return;
                }
                assert!(
                    self.rebuild.is_some(),
                    "site-crash faults require Federation::with_rebuild"
                );
                let tally = &mut self.tallies[i];
                tally.up = false;
                tally.needs_rebuild = true;
                // Invalidate every event the dead incarnation scheduled.
                tally.epoch += 1;
                tally.stalled.clear();
                let orphans: Vec<(u64, u32)> =
                    std::mem::take(&mut tally.live).into_iter().collect();
                self.clock_routability(i, now, end);
                for (rid, fn_idx) in orphans {
                    self.migrate(ctx, i, ReqId(rid), fn_idx, now, true);
                }
            }
            Fault::SiteUp { .. } => {
                if self.tallies[i].up {
                    return;
                }
                self.tallies[i].up = true;
                self.clock_routability(i, now, end);
                if self.tallies[i].needs_rebuild {
                    let predictor_cfg = self.router_cfg.predictor();
                    let tally = &mut self.tallies[i];
                    tally.needs_rebuild = false;
                    tally.restarts += 1;
                    tally.in_flight = 0;
                    for w in &mut tally.window {
                        *w = 0;
                    }
                    // The rebuilt site starts cold with no history: its
                    // λ̂/μ̂ telemetry must not carry the dead
                    // incarnation's rates into the replacement's
                    // forecasts. (The health EWMA stays — the *router*
                    // remembers the site crashed even though the site
                    // itself forgot.)
                    tally.predictor = WaitPredictor::new(predictor_cfg);
                    tally.fcache = ForecastCache::new();
                    let restarts = tally.restarts;
                    let rebuild = self.rebuild.as_mut().expect("checked at SiteDown");
                    self.sites[i] = rebuild(i, restarts);
                    // Replay the fresh policy's start-up (timer setup,
                    // initial provisioning) shifted to the present.
                    let mut shifted = OffsetCtx {
                        inner: ctx,
                        offset: now.saturating_since(SimTime::ZERO),
                    };
                    self.sites[i].on_start(&mut SiteCtx {
                        inner: &mut shifted,
                        site: i as u32,
                        tally: &mut self.tallies[i],
                        resolved: &mut self.hedge_resolved,
                    });
                }
            }
            Fault::PartitionStart { .. } => {
                if self.tallies[i].partitioned {
                    return;
                }
                self.tallies[i].partitioned = true;
                self.clock_routability(i, now, end);
            }
            Fault::PartitionEnd { .. } => {
                if !self.tallies[i].partitioned {
                    return;
                }
                self.tallies[i].partitioned = false;
                self.clock_routability(i, now, end);
                // Release the responses the cut link held back; their
                // response time now includes the stall.
                let stalled = std::mem::take(&mut self.tallies[i].stalled);
                for (rid, started) in stalled {
                    if let Some(c) = ctx.complete(ReqId(rid), started, now) {
                        let tally = &mut self.tallies[i];
                        tally.live.remove(&rid);
                        tally.record_completion(&c);
                        if self.hedge.is_some() {
                            self.hedge_resolved.push((rid, i as u32));
                        }
                    } else if self.hedge.is_some() {
                        // A sibling copy won while this one was stalled
                        // behind the cut: the held response is wasted
                        // work, and the clone leaves the books as
                        // cancelled rather than completed.
                        let tally = &mut self.tallies[i];
                        if tally.hedge_lost.remove(&rid) {
                            tally.wasted += 1;
                            tally.wasted_secs += now.saturating_since(started).as_secs_f64();
                        }
                        if let Some(fn_idx) = tally.live.remove(&rid) {
                            tally.in_flight = tally.in_flight.saturating_sub(1);
                            tally.finished += 1;
                            tally.per_fn[fn_idx as usize].cancelled += 1;
                            ctx.note_cancelled(fn_idx);
                        }
                    }
                }
            }
            Fault::SiteSlowdown { permille, .. } => {
                // Brown-out: the site keeps serving (and stays
                // routable) at `permille`/1000 of nominal speed. The
                // health EWMA sees the degradation, so the
                // failure-aware router backs off without the downtime
                // clock ever starting.
                let slowed = permille < 1000;
                self.tallies[i].slowed = slowed;
                self.sites[i].set_service_factor(permille as f64 / 1000.0);
                self.clock_routability(i, now, end);
            }
            Fault::ContainerBurst { count, .. } => {
                if !self.tallies[i].up {
                    return; // a dead site has nothing left to crash
                }
                let crashed = self.sites[i].crash_containers(
                    &mut SiteCtx {
                        inner: ctx,
                        site: i as u32,
                        tally: &mut self.tallies[i],
                        resolved: &mut self.hedge_resolved,
                    },
                    count,
                    now,
                );
                self.tallies[i].chaos_crashes += crashed;
            }
        }
        self.drain_hedge_resolutions(ctx, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::StaticPoisson;
    use crate::chaos::{ChaosConfig, ChaosPolicy};
    use crate::engine::{run_simulation, EngineConfig, FunctionEntry};
    use crate::router::RouterKind;

    /// A fixed-service-time single-server policy (per site) that records
    /// the instant of the last delivery it saw.
    struct OneServer {
        busy: bool,
        queue: std::collections::VecDeque<ReqId>,
        service_secs: f64,
        last_delivery: Option<SimTime>,
        /// Desired-fleet directives received through the reconciler seam.
        desired: Vec<u32>,
    }

    impl OneServer {
        fn new(service_secs: f64) -> Self {
            Self {
                busy: false,
                queue: Default::default(),
                service_secs,
                last_delivery: None,
                desired: Vec::new(),
            }
        }
    }

    enum Ev {
        Done(ReqId, SimTime),
    }

    struct OneServerReport {
        outcome: EngineOutcome,
        last_delivery: Option<SimTime>,
        desired: Vec<u32>,
    }

    impl SchedulerPolicy for OneServer {
        type Event = Ev;
        type Report = OneServerReport;

        fn on_start(&mut self, _ctx: &mut impl PolicyCtx<Ev>) {}

        fn on_arrival(&mut self, ctx: &mut impl PolicyCtx<Ev>, rid: ReqId, _f: u32, now: SimTime) {
            self.last_delivery = Some(now);
            if self.busy {
                self.queue.push_back(rid);
            } else {
                self.busy = true;
                ctx.schedule(
                    now + SimDuration::from_secs_f64(self.service_secs),
                    Ev::Done(rid, now),
                );
            }
        }

        fn on_event(&mut self, ctx: &mut impl PolicyCtx<Ev>, ev: Ev, now: SimTime) {
            let Ev::Done(rid, started) = ev;
            ctx.complete(rid, started, now);
            self.busy = false;
            if let Some(next) = self.queue.pop_front() {
                self.busy = true;
                ctx.schedule(
                    now + SimDuration::from_secs_f64(self.service_secs),
                    Ev::Done(next, now),
                );
            }
        }

        fn finish(self, outcome: EngineOutcome) -> OneServerReport {
            OneServerReport {
                outcome,
                last_delivery: self.last_delivery,
                desired: self.desired,
            }
        }
    }

    impl ContainerChaos for OneServer {
        fn apply_desired_fleet(
            &mut self,
            _ctx: &mut impl PolicyCtx<Ev>,
            desired: u32,
            _now: SimTime,
        ) -> bool {
            self.desired.push(desired);
            true
        }
    }

    fn make_fed(kind: RouterKind, latencies: &[f64], service_secs: f64) -> Federation<OneServer> {
        let sites = latencies
            .iter()
            .enumerate()
            .map(|(i, &lat)| {
                (
                    SiteMeta {
                        name: format!("s{i}"),
                        latency: SimDuration::from_secs_f64(lat),
                        capacity_hint: 1.0,
                    },
                    OneServer::new(service_secs),
                )
            })
            .collect();
        let functions = vec![FedFunction {
            name: "probe".into(),
            slo_deadline: 0.5,
            demand: [0.0; 3],
        }];
        Federation::new(sites, kind.build(), &functions)
            .with_rebuild(Box::new(move |_, _| OneServer::new(service_secs)))
    }

    fn engine_cfg(seed: u64) -> EngineConfig {
        EngineConfig {
            seed,
            rng_label_prefix: String::new(),
            duration_secs: 60.0,
            drain_secs: 30.0,
            stream_stats: false,
            parallel_sites: None,
        }
    }

    fn probe_entry(rate: f64) -> Vec<FunctionEntry> {
        vec![FunctionEntry {
            name: "probe".into(),
            slo_deadline: 0.5,
            process: Box::new(StaticPoisson::until(rate, SimTime::from_secs(60))),
        }]
    }

    fn run_fed(kind: RouterKind, latencies: &[f64]) -> FederatedReport<OneServerReport> {
        run_simulation(
            engine_cfg(11),
            probe_entry(8.0),
            make_fed(kind, latencies, 0.05),
        )
    }

    /// Chaos runs use a long service time (0.3 s at 8 req/s over ≤ 2
    /// servers) so the sites are saturated and every fault instant is
    /// guaranteed to catch requests in flight.
    fn run_chaos(
        kind: RouterKind,
        latencies: &[f64],
        chaos: ChaosConfig,
    ) -> FederatedReport<OneServerReport> {
        run_simulation(
            engine_cfg(11),
            probe_entry(8.0),
            ChaosPolicy::new(make_fed(kind, latencies, 0.3), chaos, 11),
        )
    }

    #[test]
    fn arrivals_are_conserved_across_sites() {
        let rep = run_fed(RouterKind::RoundRobin, &[0.001, 0.02]);
        let total = rep.aggregate_per_fn[0].arrivals;
        let routed: usize = rep.per_site.iter().map(|s| s.routed).sum();
        assert_eq!(total, routed);
        let delivered: usize = rep
            .per_site
            .iter()
            .map(|s| s.report.outcome.per_fn[0].arrivals)
            .sum();
        // Every routed request is delivered (latencies are shorter than
        // the drain, and nothing else retires in-transit requests).
        assert_eq!(delivered, routed);
        let completed: usize = rep
            .per_site
            .iter()
            .map(|s| s.report.outcome.per_fn[0].completed)
            .sum();
        assert_eq!(completed, rep.aggregate_per_fn[0].completed);
        assert_eq!(rep.unroutable, 0);
        for s in &rep.per_site {
            assert_eq!((s.migrated, s.failed), (0, 0));
            assert_eq!(s.downtime_secs, 0.0);
        }
    }

    #[test]
    fn routing_latency_shows_up_in_waits() {
        // One site, 100 ms away: every wait includes the hop.
        let rep = run_fed(RouterKind::RoundRobin, &[0.1]);
        let agg = &rep.aggregate_per_fn[0];
        assert!(agg.completed > 100);
        let min_wait = agg
            .wait
            .samples()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_wait >= 0.1 - 1e-9,
            "min wait {min_wait} missing the hop"
        );
    }

    #[test]
    fn federated_runs_are_deterministic() {
        let a = run_fed(RouterKind::LeastLoaded, &[0.001, 0.02]);
        let b = run_fed(RouterKind::LeastLoaded, &[0.001, 0.02]);
        assert_eq!(
            serde_json::to_string(&a.aggregate_per_fn[0]).unwrap(),
            serde_json::to_string(&b.aggregate_per_fn[0]).unwrap()
        );
        assert_eq!(a.per_site[0].routed, b.per_site[0].routed);
        assert_eq!(a.per_site[1].routed, b.per_site[1].routed);
    }

    /// Regression: once a site crashes mid-run, it receives no further
    /// deliveries — not even requests that were in transit — until it
    /// recovers. The router sees the site vanish at the very next
    /// decision, mid-window.
    #[test]
    fn crashed_site_receives_zero_deliveries_while_down() {
        let chaos = ChaosConfig {
            events: vec![(30.0, Fault::SiteDown { site: 0 })],
            ..ChaosConfig::default()
        };
        let rep = run_chaos(RouterKind::RoundRobin, &[0.001, 0.02], chaos);
        let dead = &rep.per_site[0];
        // The (never-recovered) site saw its last delivery before the
        // crash instant.
        let last = dead.report.last_delivery.expect("site saw traffic");
        assert!(
            last <= SimTime::from_secs_f64(30.0),
            "delivery at {last} after the crash"
        );
        assert!(dead.migrated > 0, "orphans/no in-transit migrated?");
        // ~30s of a 60s run spent down.
        assert!(
            (dead.downtime_secs - 30.0).abs() < 1e-6,
            "downtime {}",
            dead.downtime_secs
        );
        // Everything still adds up at the engine.
        let agg = &rep.aggregate_per_fn[0];
        assert_eq!(
            agg.arrivals,
            agg.completed + agg.lost + agg.timeouts + rep.outstanding
        );
        assert_eq!(rep.per_site[1].migrated_in, dead.migrated);
    }

    #[test]
    fn single_site_crash_fails_everything_with_no_survivor() {
        let chaos = ChaosConfig {
            events: vec![(30.0, Fault::SiteDown { site: 0 })],
            ..ChaosConfig::default()
        };
        let rep = run_chaos(RouterKind::RoundRobin, &[0.001], chaos);
        let site = &rep.per_site[0];
        assert!(site.failed > 0, "orphans had nowhere to go");
        assert_eq!(site.migrated, 0);
        let agg = &rep.aggregate_per_fn[0];
        assert!(agg.lost >= site.failed);
        // Post-crash arrivals are shed at the front door.
        assert!(rep.unroutable > 0);
        assert_eq!(
            agg.arrivals,
            agg.completed + agg.lost + agg.timeouts + rep.outstanding
        );
    }

    #[test]
    fn site_recovers_and_serves_again() {
        let chaos = ChaosConfig {
            events: vec![
                (20.0, Fault::SiteDown { site: 0 }),
                (40.0, Fault::SiteUp { site: 0 }),
            ],
            ..ChaosConfig::default()
        };
        let rep = run_chaos(RouterKind::RoundRobin, &[0.001, 0.02], chaos);
        let revived = &rep.per_site[0];
        let last = revived.report.last_delivery.expect("recovered site used");
        assert!(
            last >= SimTime::from_secs_f64(40.0),
            "no delivery after recovery (last {last})"
        );
        assert!((revived.downtime_secs - 20.0).abs() < 1e-6);
    }

    #[test]
    fn partition_stalls_responses_until_heal() {
        let chaos = ChaosConfig {
            events: vec![
                (20.0, Fault::PartitionStart { site: 0 }),
                (35.0, Fault::PartitionEnd { site: 0 }),
            ],
            ..ChaosConfig::default()
        };
        let rep = run_chaos(RouterKind::RoundRobin, &[0.001, 0.02], chaos);
        let part = &rep.per_site[0];
        assert!((part.downtime_secs - 15.0).abs() < 1e-6);
        // At least one response was stalled across the partition: its
        // response time spans from just before the cut to the heal.
        let max_response = part.report.outcome.per_fn[0]
            .response
            .samples()
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        assert!(
            max_response >= 14.0,
            "no stalled response visible (max {max_response})"
        );
        // Nothing was failed: the site kept its work.
        assert_eq!(part.failed, 0);
        let agg = &rep.aggregate_per_fn[0];
        assert_eq!(
            agg.arrivals,
            agg.completed + agg.lost + agg.timeouts + rep.outstanding
        );
    }

    /// A recovery scheduled past the nominal end still fires in the
    /// drain (the partition heals, stalled responses are released), and
    /// `downtime_secs` is clamped to the nominal window rather than
    /// spilling into the drain.
    #[test]
    fn recovery_in_the_drain_heals_and_downtime_is_clamped() {
        let chaos = ChaosConfig {
            events: vec![
                (40.0, Fault::PartitionStart { site: 0 }),
                (70.0, Fault::PartitionEnd { site: 0 }), // past end=60, inside drain
            ],
            ..ChaosConfig::default()
        };
        let rep = run_chaos(RouterKind::RoundRobin, &[0.001, 0.02], chaos);
        let part = &rep.per_site[0];
        // Unroutable from 40 to the nominal end at 60: 20 s, not 30.
        assert!(
            (part.downtime_secs - 20.0).abs() < 1e-6,
            "downtime {}",
            part.downtime_secs
        );
        // The heal released the stalled responses: completions recorded
        // at t=70 with the stall visible in the response tail.
        let max_response = part.report.outcome.per_fn[0]
            .response
            .samples()
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        assert!(
            max_response >= 25.0,
            "stalled responses never released (max {max_response})"
        );
        let agg = &rep.aggregate_per_fn[0];
        assert_eq!(
            agg.arrivals,
            agg.completed + agg.lost + agg.timeouts + rep.outstanding
        );

        // Same for a crash healing in the drain: downtime stops at end.
        let chaos = ChaosConfig {
            events: vec![
                (50.0, Fault::SiteDown { site: 0 }),
                (80.0, Fault::SiteUp { site: 0 }),
            ],
            ..ChaosConfig::default()
        };
        let rep = run_chaos(RouterKind::RoundRobin, &[0.001, 0.02], chaos);
        assert!(
            (rep.per_site[0].downtime_secs - 10.0).abs() < 1e-6,
            "downtime {}",
            rep.per_site[0].downtime_secs
        );
    }

    #[test]
    fn noop_chaos_reproduces_plain_federated_run() {
        let plain = run_fed(RouterKind::LeastLoaded, &[0.001, 0.02]);
        let wrapped = run_simulation(
            engine_cfg(11),
            probe_entry(8.0),
            ChaosPolicy::new(
                make_fed(RouterKind::LeastLoaded, &[0.001, 0.02], 0.05),
                ChaosConfig::default(),
                11,
            ),
        );
        assert_eq!(
            serde_json::to_string(&plain.aggregate_per_fn).unwrap(),
            serde_json::to_string(&wrapped.aggregate_per_fn).unwrap()
        );
        assert_eq!(plain.per_site[0].routed, wrapped.per_site[0].routed);
        assert_eq!(plain.per_site[1].routed, wrapped.per_site[1].routed);
    }

    /// An inert [`PolicyCtx`] for driving [`ChaosTarget::inject`]
    /// directly against a federation with no live requests.
    struct NullCtx {
        end: SimTime,
        rng: SimRng,
    }

    impl PolicyCtx<FedEv<Ev>> for NullCtx {
        fn schedule(&mut self, _at: SimTime, _ev: FedEv<Ev>) {}
        fn end_time(&self) -> SimTime {
            self.end
        }
        fn fn_count(&self) -> usize {
            1
        }
        fn service_rng(&mut self, _fn_idx: u32) -> &mut SimRng {
            &mut self.rng
        }
        fn request_info(&self, _rid: ReqId) -> Option<(u32, SimTime)> {
            None
        }
        fn complete(
            &mut self,
            _rid: ReqId,
            _started: SimTime,
            _now: SimTime,
        ) -> Option<Completion> {
            None
        }
        fn abandon(&mut self, _rid: ReqId) -> Option<u32> {
            None
        }
        fn lose(&mut self, _rid: ReqId) -> Option<u32> {
            None
        }
        fn rerun(&mut self, _rid: ReqId) -> Option<u32> {
            None
        }
        fn take_window_counts(&mut self) -> Vec<u64> {
            vec![0]
        }
        fn outstanding(&self) -> usize {
            0
        }
    }

    fn null_ctx() -> NullCtx {
        NullCtx {
            end: SimTime::from_secs(60),
            rng: SimRng::from_seed_label(1, "null"),
        }
    }

    /// Warm a tally's predictor well past the model threshold: steady
    /// 20 req/s arrivals with 50 ms services over `secs` seconds.
    fn warm_predictor(tally: &mut SiteTally, secs: f64) {
        let mut t = 0.0;
        while t < secs {
            tally.predictor.on_arrival(t);
            tally.predictor.on_service(0.05);
            t += 0.05;
        }
    }

    /// Regression: a crash + `with_rebuild` recovery must not carry the
    /// dead incarnation's λ̂/μ̂ into the replacement's forecasts. The
    /// router's health memory of the crash, by contrast, survives — the
    /// site forgot, the router didn't.
    #[test]
    fn rebuilt_site_starts_with_cold_rates() {
        let mut fed = make_fed(RouterKind::SloAware, &[0.003, 0.010], 0.05);
        warm_predictor(&mut fed.tallies[0], 10.0);
        assert!(
            fed.tallies[0].predictor.forecast(10.0, 1).has_model(),
            "predictor should be warm before the crash"
        );
        let mut ctx = null_ctx();
        fed.inject(
            &mut ctx,
            Fault::SiteDown { site: 0 },
            SimTime::from_secs(12),
        );
        fed.inject(&mut ctx, Fault::SiteUp { site: 0 }, SimTime::from_secs(19));
        assert_eq!(fed.tallies[0].restarts, 1);
        assert!(
            !fed.tallies[0].predictor.forecast(19.0, 1).has_model(),
            "rebuilt site inherited pre-crash rates"
        );
        assert!(
            fed.tallies[0].health.value() > 0.0,
            "the router's crash memory must survive the rebuild"
        );
        // The untouched site keeps its telemetry.
        warm_predictor(&mut fed.tallies[1], 10.0);
        assert!(fed.tallies[1].predictor.forecast(19.0, 1).has_model());
    }

    /// Regression: `set_router_config` restarts the telemetry layer
    /// wholesale — predictors, forecast caches, health EWMAs, *and* the
    /// router-facing scratch columns (up/forecast/flakiness/warm), which
    /// older versions left holding the previous configuration's values.
    #[test]
    fn router_config_reset_covers_full_tally() {
        let mut fed = make_fed(RouterKind::SloAware, &[0.003, 0.010], 0.05);
        warm_predictor(&mut fed.tallies[0], 10.0);
        fed.tallies[0].health.observe(0.0, true);
        fed.tallies[0].health.observe(20.0, true);
        assert!(fed.tallies[0].health.value() > 0.0);
        fed.states[0].in_flight = 9;
        fed.states[0].up = false;
        fed.states[0].flakiness = 0.7;
        fed.states[0].warm = 3;
        fed.set_router_config(&RouterConfig::default());
        assert!(
            !fed.tallies[0].predictor.forecast(20.0, 1).has_model(),
            "predictor survived the config reset"
        );
        assert_eq!(fed.tallies[0].health.value(), 0.0);
        assert_eq!(fed.states[0].in_flight, 0);
        assert!(fed.states[0].up);
        assert_eq!(fed.states[0].flakiness, 0.0);
        assert_eq!(fed.states[0].warm, 0);
    }

    /// The reconciler seam round-trips: snapshots arrive at the control
    /// plane, the reconciler sizes the fleet from the *reported* state,
    /// and the directive lands back at the site through
    /// [`ContainerChaos::apply_desired_fleet`] one latency later.
    #[test]
    fn reconciler_directives_round_trip_to_sites() {
        let telemetry = TelemetryConfig {
            report_interval: SimDuration::from_millis(250),
            jitter: SimDuration::from_millis(50),
            loss_under_partition: true,
            loss_prob: 0.0,
        };
        let mut fed = make_fed(RouterKind::RoundRobin, &[0.003, 0.010], 0.05);
        fed.set_telemetry(telemetry, 11);
        // μ̂ ≈ 20/s at λ ≈ 4/s per site: targeting ρ = 0.2 wants
        // ceil(4 / (20 · 0.2)) = 1 = the reported single server, so
        // nothing fires; ρ = 0.05 wants 4 and every snapshot does.
        fed.set_reconciler(Box::new(crate::telemetry::UtilizationReconciler::new(0.05)));
        let rep = run_simulation(engine_cfg(11), probe_entry(8.0), fed);
        let landed: usize = rep.per_site.iter().map(|s| s.report.desired.len()).sum();
        assert!(landed > 100, "only {landed} directives reached the sites");
        for site in &rep.per_site {
            for &d in &site.report.desired {
                assert!(d >= 2, "reconciler sized below the reported fleet");
            }
        }
    }
}
