//! The federated meta-policy: one engine, many sites.
//!
//! [`Federation`] is itself a [`SchedulerPolicy`] — it plugs into the
//! ordinary [`run_simulation`](crate::run_simulation) pump — but instead
//! of scheduling requests onto containers it owns a [`RouterPolicy`] and
//! one *inner* scheduler instance per site. Arrivals are routed to a
//! site, delayed by the site's network latency, and then delivered to
//! that site's scheduler through a scoped [`PolicyCtx`] that:
//!
//! * tags the site's scheduled events so they come back to the right
//!   instance ([`FedEv::Site`]);
//! * maintains per-site request statistics (the engine's own statistics
//!   remain the cross-site aggregate);
//! * gives each site its own arrival-rate windows, so per-site monitors
//!   observe only the traffic routed to them.
//!
//! Because the inner scheduler is written against [`PolicyCtx`] rather
//! than the concrete engine context, it runs *unchanged* — the same
//! `LassPolicy` that owns a whole simulation serves one site of a
//! federation. A single-site federation with zero latency is the
//! degenerate case and reproduces the plain single-cluster run.
//!
//! Routing latency is modeled on the inbound hop: a request routed at
//! `t` reaches its site at `t + latency`, and since waiting time is
//! measured from the front-end arrival instant, the hop is part of the
//! request's waiting — and therefore response — time, exactly like the
//! paper's edge clients would observe when offloaded to a remote pool.

use crate::engine::{Completion, EngineOutcome, FnStats, PolicyCtx, ReqId, SchedulerPolicy};
use crate::metrics::SampleStats;
use crate::rng::SimRng;
use crate::router::{RouterPolicy, SiteState};
use crate::time::{SimDuration, SimTime};
use serde::{Map, Serialize, Value};

/// Static description of one site handed to [`Federation::new`].
#[derive(Debug, Clone)]
pub struct SiteMeta {
    /// Site display name (unique within the topology).
    pub name: String,
    /// One-way network latency from the front-end router to the site.
    pub latency: SimDuration,
    /// Concurrent-request capacity hint used to normalize router load
    /// (typically the site's total CPU core count).
    pub capacity_hint: f64,
}

/// Per-function metadata shared by every site (used to seed the
/// per-site statistics tables).
#[derive(Debug, Clone)]
pub struct FedFunction {
    /// Function display name.
    pub name: String,
    /// SLO deadline (seconds) on the waiting time.
    pub slo_deadline: f64,
}

/// Events of a federated run: deliveries completing their network hop,
/// plus the inner schedulers' own events tagged by site.
pub enum FedEv<E> {
    /// A routed request reaches its destination site.
    Deliver {
        /// Destination site index.
        site: u32,
        /// The request.
        rid: ReqId,
        /// The request's function.
        fn_idx: u32,
    },
    /// An inner scheduler's event, tagged with its site.
    Site {
        /// Owning site index.
        site: u32,
        /// The inner event payload.
        ev: E,
    },
}

/// Per-site bookkeeping maintained by the scoped context.
struct SiteTally {
    /// Requests delivered to the site and not yet finished.
    in_flight: usize,
    /// Requests the router sent to this site (delivered or in transit).
    routed: usize,
    /// Requests that finished at this site (completed, abandoned, or
    /// lost). `routed - finished` is the router's view of the site's
    /// commitment: it includes requests still in transit, which the
    /// front-end knows it dispatched even though the site hasn't seen
    /// them yet — otherwise a burst shorter than the network hop would
    /// herd entirely onto a high-latency site before any delivery
    /// moves its visible load.
    finished: usize,
    /// Per-function arrival counts since the site's last window take.
    window: Vec<u64>,
    /// Per-function statistics of requests finished at this site.
    per_fn: Vec<FnStats>,
}

impl SiteTally {
    fn new(functions: &[FedFunction]) -> Self {
        Self {
            in_flight: 0,
            routed: 0,
            finished: 0,
            window: vec![0; functions.len()],
            per_fn: functions
                .iter()
                .map(|f| FnStats {
                    name: f.name.clone(),
                    slo_deadline: f.slo_deadline,
                    arrivals: 0,
                    completed: 0,
                    reruns: 0,
                    timeouts: 0,
                    lost: 0,
                    slo_violations: 0,
                    wait: SampleStats::new(),
                    response: SampleStats::new(),
                    service: SampleStats::new(),
                })
                .collect(),
        }
    }
}

/// The per-site view of the engine: delegates to the real context while
/// tagging events with the site and keeping the site's statistics.
struct SiteCtx<'a, C> {
    inner: &'a mut C,
    site: u32,
    tally: &'a mut SiteTally,
}

impl<E, C: PolicyCtx<FedEv<E>>> PolicyCtx<E> for SiteCtx<'_, C> {
    fn schedule(&mut self, at: SimTime, ev: E) {
        self.inner.schedule(
            at,
            FedEv::Site {
                site: self.site,
                ev,
            },
        );
    }

    fn end_time(&self) -> SimTime {
        self.inner.end_time()
    }

    fn fn_count(&self) -> usize {
        self.inner.fn_count()
    }

    fn service_rng(&mut self, fn_idx: u32) -> &mut SimRng {
        self.inner.service_rng(fn_idx)
    }

    fn request_info(&self, rid: ReqId) -> Option<(u32, SimTime)> {
        self.inner.request_info(rid)
    }

    fn complete(&mut self, rid: ReqId, started: SimTime, now: SimTime) -> Option<Completion> {
        let c = self.inner.complete(rid, started, now)?;
        let f = &mut self.tally.per_fn[c.fn_idx as usize];
        f.completed += 1;
        f.wait.record(c.wait);
        f.service.record(c.service);
        f.response.record(c.response);
        if c.violated_slo {
            f.slo_violations += 1;
        }
        self.tally.in_flight = self.tally.in_flight.saturating_sub(1);
        self.tally.finished += 1;
        Some(c)
    }

    fn abandon(&mut self, rid: ReqId) -> Option<u32> {
        let fn_idx = self.inner.abandon(rid)?;
        let f = &mut self.tally.per_fn[fn_idx as usize];
        f.timeouts += 1;
        f.slo_violations += 1;
        self.tally.in_flight = self.tally.in_flight.saturating_sub(1);
        self.tally.finished += 1;
        Some(fn_idx)
    }

    fn lose(&mut self, rid: ReqId) -> Option<u32> {
        let fn_idx = self.inner.lose(rid)?;
        self.tally.per_fn[fn_idx as usize].lost += 1;
        self.tally.in_flight = self.tally.in_flight.saturating_sub(1);
        self.tally.finished += 1;
        Some(fn_idx)
    }

    fn rerun(&mut self, rid: ReqId) -> Option<u32> {
        let fn_idx = self.inner.rerun(rid)?;
        self.tally.per_fn[fn_idx as usize].reruns += 1;
        Some(fn_idx)
    }

    fn take_window_counts(&mut self) -> Vec<u64> {
        self.tally.window.iter_mut().map(std::mem::take).collect()
    }

    fn outstanding(&self) -> usize {
        self.tally.in_flight
    }
}

/// One site's slice of a [`FederatedReport`].
#[derive(Debug)]
pub struct SiteReport<R> {
    /// Site name.
    pub name: String,
    /// One-way routing latency to the site, seconds.
    pub latency_secs: f64,
    /// Requests the router sent to this site.
    pub routed: usize,
    /// The inner scheduler's own report, built from the site-local
    /// request statistics.
    pub report: R,
}

/// The report of a federated run: one inner report per site plus the
/// engine's cross-site aggregate.
#[derive(Debug)]
pub struct FederatedReport<R> {
    /// Name of the router that made the dispatch decisions.
    pub router: String,
    /// Per-site reports, in topology order.
    pub per_site: Vec<SiteReport<R>>,
    /// Cross-site per-function statistics (the engine's own measurement,
    /// indexed by function registration order). Waiting times include the
    /// routing hop.
    pub aggregate_per_fn: Vec<FnStats>,
    /// Requests unanswered when the run ended (including in-transit).
    pub outstanding: usize,
    /// Simulated duration in seconds (excluding drain).
    pub duration: f64,
}

impl<R: Serialize> Serialize for SiteReport<R> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        m.insert("name".into(), self.name.serialize());
        m.insert("latency_secs".into(), self.latency_secs.serialize());
        m.insert("routed".into(), self.routed.serialize());
        m.insert("report".into(), self.report.serialize());
        Value::Object(m)
    }
}

impl<R: Serialize> Serialize for FederatedReport<R> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        m.insert("router".into(), self.router.serialize());
        m.insert("per_site".into(), self.per_site.serialize());
        m.insert("aggregate_per_fn".into(), self.aggregate_per_fn.serialize());
        m.insert("outstanding".into(), self.outstanding.serialize());
        m.insert("duration".into(), self.duration.serialize());
        Value::Object(m)
    }
}

/// The federated meta-policy: a router in front of one inner scheduler
/// instance per site. See the module docs for the full contract.
pub struct Federation<P: SchedulerPolicy> {
    sites: Vec<P>,
    metas: Vec<SiteMeta>,
    tallies: Vec<SiteTally>,
    router: Box<dyn RouterPolicy + Send>,
    /// Scratch router view, refreshed from the tallies per decision.
    states: Vec<SiteState>,
}

impl<P: SchedulerPolicy> Federation<P> {
    /// Build a federation over `sites` (meta + inner scheduler each),
    /// fronted by `router`. `functions` carries the per-function names
    /// and SLO deadlines used for per-site statistics; it must match the
    /// engine's function registration order.
    pub fn new(
        sites: Vec<(SiteMeta, P)>,
        router: Box<dyn RouterPolicy + Send>,
        functions: &[FedFunction],
    ) -> Self {
        assert!(!sites.is_empty(), "federation needs at least one site");
        let (metas, sites): (Vec<SiteMeta>, Vec<P>) = sites.into_iter().unzip();
        let tallies = metas.iter().map(|_| SiteTally::new(functions)).collect();
        let states = metas
            .iter()
            .map(|m| SiteState {
                name: m.name.clone(),
                latency: m.latency,
                capacity_hint: m.capacity_hint,
                in_flight: 0,
            })
            .collect();
        Self {
            sites,
            metas,
            tallies,
            router,
            states,
        }
    }

    /// Deliver a routed request to its site's scheduler.
    fn deliver(
        &mut self,
        ctx: &mut impl PolicyCtx<FedEv<P::Event>>,
        site: u32,
        rid: ReqId,
        fn_idx: u32,
        now: SimTime,
    ) {
        let i = site as usize;
        let tally = &mut self.tallies[i];
        tally.in_flight += 1;
        tally.window[fn_idx as usize] += 1;
        tally.per_fn[fn_idx as usize].arrivals += 1;
        self.sites[i].on_arrival(
            &mut SiteCtx {
                inner: ctx,
                site,
                tally,
            },
            rid,
            fn_idx,
            now,
        );
    }
}

impl<P: SchedulerPolicy> SchedulerPolicy for Federation<P> {
    type Event = FedEv<P::Event>;
    type Report = FederatedReport<P::Report>;

    fn on_start(&mut self, ctx: &mut impl PolicyCtx<Self::Event>) {
        for (i, (site, tally)) in self.sites.iter_mut().zip(&mut self.tallies).enumerate() {
            site.on_start(&mut SiteCtx {
                inner: ctx,
                site: i as u32,
                tally,
            });
        }
    }

    fn on_arrival(
        &mut self,
        ctx: &mut impl PolicyCtx<Self::Event>,
        rid: ReqId,
        fn_idx: u32,
        now: SimTime,
    ) {
        for (state, tally) in self.states.iter_mut().zip(&self.tallies) {
            // The router sees everything it has committed to a site and
            // that hasn't finished — delivered work plus requests still
            // crossing the network hop.
            state.in_flight = tally.routed.saturating_sub(tally.finished) as u64;
        }
        let chosen = self.router.route(fn_idx, now, &self.states);
        debug_assert!(chosen < self.sites.len(), "router returned site {chosen}");
        let chosen = chosen.min(self.sites.len() - 1);
        self.tallies[chosen].routed += 1;
        let latency = self.metas[chosen].latency;
        if latency == SimDuration::ZERO {
            // Zero-latency hop: deliver inline so the degenerate
            // single-site topology replays the plain run event-for-event.
            self.deliver(ctx, chosen as u32, rid, fn_idx, now);
        } else {
            ctx.schedule(
                now + latency,
                FedEv::Deliver {
                    site: chosen as u32,
                    rid,
                    fn_idx,
                },
            );
        }
    }

    fn on_event(&mut self, ctx: &mut impl PolicyCtx<Self::Event>, ev: Self::Event, now: SimTime) {
        match ev {
            FedEv::Deliver { site, rid, fn_idx } => self.deliver(ctx, site, rid, fn_idx, now),
            FedEv::Site { site, ev } => {
                let i = site as usize;
                self.sites[i].on_event(
                    &mut SiteCtx {
                        inner: ctx,
                        site,
                        tally: &mut self.tallies[i],
                    },
                    ev,
                    now,
                );
            }
        }
    }

    fn finish(self, outcome: EngineOutcome) -> Self::Report {
        let duration = outcome.duration_secs;
        let per_site = self
            .sites
            .into_iter()
            .zip(self.metas)
            .zip(self.tallies)
            .map(|((site, meta), tally)| {
                let site_outcome = EngineOutcome {
                    per_fn: tally.per_fn,
                    outstanding: tally.in_flight,
                    duration_secs: duration,
                };
                SiteReport {
                    name: meta.name,
                    latency_secs: meta.latency.as_secs_f64(),
                    routed: tally.routed,
                    report: site.finish(site_outcome),
                }
            })
            .collect();
        FederatedReport {
            router: self.router.name().to_owned(),
            per_site,
            aggregate_per_fn: outcome.per_fn,
            outstanding: outcome.outstanding,
            duration,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::StaticPoisson;
    use crate::engine::{run_simulation, EngineConfig, FunctionEntry};
    use crate::router::RouterKind;

    /// A fixed-service-time single-server policy (per site).
    struct OneServer {
        busy: bool,
        queue: std::collections::VecDeque<ReqId>,
        service_secs: f64,
    }

    enum Ev {
        Done(ReqId, SimTime),
    }

    impl SchedulerPolicy for OneServer {
        type Event = Ev;
        type Report = EngineOutcome;

        fn on_start(&mut self, _ctx: &mut impl PolicyCtx<Ev>) {}

        fn on_arrival(&mut self, ctx: &mut impl PolicyCtx<Ev>, rid: ReqId, _f: u32, now: SimTime) {
            if self.busy {
                self.queue.push_back(rid);
            } else {
                self.busy = true;
                ctx.schedule(
                    now + SimDuration::from_secs_f64(self.service_secs),
                    Ev::Done(rid, now),
                );
            }
        }

        fn on_event(&mut self, ctx: &mut impl PolicyCtx<Ev>, ev: Ev, now: SimTime) {
            let Ev::Done(rid, started) = ev;
            ctx.complete(rid, started, now);
            self.busy = false;
            if let Some(next) = self.queue.pop_front() {
                self.busy = true;
                ctx.schedule(
                    now + SimDuration::from_secs_f64(self.service_secs),
                    Ev::Done(next, now),
                );
            }
        }

        fn finish(self, outcome: EngineOutcome) -> EngineOutcome {
            outcome
        }
    }

    fn run_fed(kind: RouterKind, latencies: &[f64]) -> FederatedReport<EngineOutcome> {
        let sites = latencies
            .iter()
            .enumerate()
            .map(|(i, &lat)| {
                (
                    SiteMeta {
                        name: format!("s{i}"),
                        latency: SimDuration::from_secs_f64(lat),
                        capacity_hint: 1.0,
                    },
                    OneServer {
                        busy: false,
                        queue: Default::default(),
                        service_secs: 0.05,
                    },
                )
            })
            .collect();
        let functions = vec![FedFunction {
            name: "probe".into(),
            slo_deadline: 0.5,
        }];
        let fed = Federation::new(sites, kind.build(), &functions);
        run_simulation(
            EngineConfig {
                seed: 11,
                rng_label_prefix: String::new(),
                duration_secs: 60.0,
                drain_secs: 30.0,
            },
            vec![FunctionEntry {
                name: "probe".into(),
                slo_deadline: 0.5,
                process: Box::new(StaticPoisson::until(8.0, SimTime::from_secs(60))),
            }],
            fed,
        )
    }

    #[test]
    fn arrivals_are_conserved_across_sites() {
        let rep = run_fed(RouterKind::RoundRobin, &[0.001, 0.02]);
        let total = rep.aggregate_per_fn[0].arrivals;
        let routed: usize = rep.per_site.iter().map(|s| s.routed).sum();
        assert_eq!(total, routed);
        let delivered: usize = rep
            .per_site
            .iter()
            .map(|s| s.report.per_fn[0].arrivals)
            .sum();
        // Every routed request is delivered (latencies are shorter than
        // the drain, and nothing else retires in-transit requests).
        assert_eq!(delivered, routed);
        let completed: usize = rep
            .per_site
            .iter()
            .map(|s| s.report.per_fn[0].completed)
            .sum();
        assert_eq!(completed, rep.aggregate_per_fn[0].completed);
    }

    #[test]
    fn routing_latency_shows_up_in_waits() {
        // One site, 100 ms away: every wait includes the hop.
        let rep = run_fed(RouterKind::RoundRobin, &[0.1]);
        let agg = &rep.aggregate_per_fn[0];
        assert!(agg.completed > 100);
        let min_wait = agg
            .wait
            .samples()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        assert!(
            min_wait >= 0.1 - 1e-9,
            "min wait {min_wait} missing the hop"
        );
    }

    #[test]
    fn federated_runs_are_deterministic() {
        let a = run_fed(RouterKind::LeastLoaded, &[0.001, 0.02]);
        let b = run_fed(RouterKind::LeastLoaded, &[0.001, 0.02]);
        assert_eq!(
            serde_json::to_string(&a.aggregate_per_fn[0]).unwrap(),
            serde_json::to_string(&b.aggregate_per_fn[0]).unwrap()
        );
        assert_eq!(a.per_site[0].routed, b.per_site[0].routed);
        assert_eq!(a.per_site[1].routed, b.per_site[1].routed);
    }
}
