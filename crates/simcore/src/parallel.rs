//! Parallel conservative-synchronization executor for federated runs.
//!
//! The sequential federated pump ([`crate::run_simulation`] over a
//! [`Federation`]) interleaves every site's events in one calendar. But
//! the federation's inter-site network latency is a textbook
//! conservative-PDES *lookahead* (Chandy–Misra–Bryant): the front-end
//! router cannot affect a site sooner than the router→site hop, and a
//! site cannot affect anything outside itself at all — completions only
//! become visible to the router as telemetry. So per-site event loops
//! can run concurrently between *lookahead barriers* with zero
//! speculation and no rollback.
//!
//! # Execution model
//!
//! Simulated time is cut into windows `[T, H)` with
//! `H = min(T_eff + L, next fault, hard_end)` where `L` is the minimum
//! site latency (the global lookahead) and `T_eff` skips ahead over idle
//! gaps to the earliest pending event. Each window runs three strictly
//! ordered phases:
//!
//! 1. **Front-end phase** (main thread): arrivals and due deliveries in
//!    `[T, H)` are processed from the front-end calendar. Routing
//!    decisions happen here — arrivals are routed exactly as the
//!    sequential federation routes them, and each routed request is
//!    scheduled as a delivery at `t + latency`. A delivery whose
//!    destination went dark bounces into migration, also here. Because
//!    `latency ≥ L`, a delivery created in this window always lands in
//!    a later window, so the per-site inboxes only ever hold
//!    current-window messages.
//! 2. **Worker phase**: `parallel_sites` worker threads drain each
//!    site's inbox and local event queue through `[T, H)`, running the
//!    site's scheduler exactly as the sequential run would. Sites are
//!    fully independent inside a window; outcomes (completions,
//!    timeouts, losses, reruns) are appended to a per-site log.
//! 3. **Merge phase** (main thread): the per-site logs are merged in
//!    deterministic `(time, site, log-index)` order and folded into the
//!    cross-site aggregate statistics and the router telemetry — the
//!    same fold order regardless of how many worker threads ran, which
//!    is what makes the report byte-identical for every
//!    `parallel_sites` value.
//!
//! Site-level faults ([`Fault`]) are window split points: the fault
//! schedule is materialized up front
//! ([`ChaosConfig::build_schedule`]), each fault instant terminates a
//! window, and the fault is applied by the main thread at the barrier —
//! crash orphan migration, rebuild-on-recovery, partition bookkeeping —
//! mirroring the sequential [`ChaosTarget`] implementation of the
//! federation.
//!
//! # Determinism contract
//!
//! For a fixed seed the executor is **byte-identical across every
//! `parallel_sites` value** (1, 2, 8, … — workers only touch their own
//! shards and the merge order is thread-independent). It is *not* in
//! general byte-identical to the sequential federation, for three
//! documented reasons:
//!
//! * service-time draws use per-site streams
//!   (`"{prefix}s{site}:service:{fn}"`) instead of the sequential run's
//!   site-shared streams — unavoidable once sites draw concurrently;
//! * router *telemetry* (per-site finished counts, warm census, μ̂ from
//!   completions) is refreshed at barriers, so load-driven routers see
//!   site state up to one lookahead window (≤ `L`) stale;
//! * cross-site events at the *exact same* timestamp merge in
//!   `(time, site)` order rather than global scheduling order — a
//!   measure-zero tie under continuous arrival/service distributions.
//!
//! Under a telemetry-free router (round-robin) and a deterministic
//! service-time policy, none of the three applies and the parallel
//! report equals the sequential report exactly — the differential
//! oracle pinned by `tests/parallel_federation.rs`.
//!
//! Zero-latency sites would degenerate the lookahead to nothing, so the
//! executor requires every site latency to be positive; launchers fall
//! back to the sequential path (with a warning) otherwise.

use crate::arrivals::ArrivalProcess;
use crate::chaos::{ChaosConfig, ContainerChaos, Fault};
use crate::engine::{
    Completion, EngineConfig, EngineOutcome, FnStats, FunctionEntry, PolicyCtx, ReqId,
};
use crate::events::EventQueue;
use crate::federation::{
    FederatedReport, Federation, HedgeConfig, HedgeTrigger, SiteMeta, SiteReport, SiteTally,
};
use crate::metrics::{DowntimeClock, SampleStats};
use crate::rng::SimRng;
use crate::router::{predicted_score, RouterConfig, RouterPolicy, SiteState};
use crate::telemetry::{ReconcilerSeam, TelemetryRuntime, TelemetrySnapshot};
use crate::time::{SimDuration, SimTime};
use lass_queueing::{ForecastCache, HealthEwma, WaitPredictor};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Barrier, Mutex};

/// A time-stamped inter-shard message: what the front-end hands a site
/// for one window. Deliveries are the routed (or migrated) requests
/// completing their network hop; the control variants forward
/// fault-driven state flips that the sequential federation applies
/// through the site's scoped context.
enum Msg {
    /// A routed request reaches the site.
    Deliver {
        rid: u64,
        fn_idx: u32,
        arrival: SimTime,
    },
    /// The router↔site link was cut: hold responses from now on.
    PartitionStart,
    /// The link healed: release everything held back.
    PartitionEnd,
    /// A chaos burst crashes up to `count` containers.
    Burst { count: u32 },
    /// A reconciler directive (desired server count) completes its
    /// return hop and lands on the site's scheduler.
    Directive { desired: u32 },
    /// A hedge-race loser cancellation lands: release the clone's books
    /// if the site still holds it (idempotent — the clone may already
    /// have finished locally, in which case the merge phase reclassified
    /// that finish as wasted work).
    Cancel { rid: u64 },
}

/// One request outcome recorded by a shard, replayed by the merge phase
/// into the cross-site aggregate in deterministic order.
enum LogKind {
    Completed {
        rid: u64,
        fn_idx: u32,
        wait: f64,
        service: f64,
        response: f64,
        violated: bool,
    },
    Timeout {
        rid: u64,
        fn_idx: u32,
    },
    Lost {
        rid: u64,
        fn_idx: u32,
    },
    Rerun {
        fn_idx: u32,
    },
    /// A hedge-loser clone released by a [`Msg::Cancel`] before it
    /// finished locally.
    Cancelled {
        rid: u64,
        fn_idx: u32,
    },
}

struct LogEntry {
    t: SimTime,
    kind: LogKind,
}

/// The shard-private half of one site: everything a worker thread may
/// touch during its window.
struct ShardState<E> {
    site: u32,
    /// The site scheduler's own event calendar.
    queue: EventQueue<E>,
    /// Current-window messages from the front-end, time-sorted.
    inbox: VecDeque<(SimTime, Msg)>,
    /// Live requests held by the site: rid → (fn, arrival), keyed by
    /// request id for deterministic crash-evacuation order.
    live: BTreeMap<u64, (u32, SimTime)>,
    /// Completions held back by an ongoing partition: `(rid, started)`.
    stalled: Vec<(u64, SimTime)>,
    /// Whether the router↔site link is currently cut (shard's view).
    partitioned: bool,
    /// Requests delivered and not yet finished.
    in_flight: usize,
    /// Per-function arrival counts since the last window take.
    window: Vec<u64>,
    /// Per-function statistics of requests finished at this site.
    per_fn: Vec<FnStats>,
    /// Containers crashed here by chaos bursts.
    chaos_crashes: u32,
    /// Outcomes recorded this window, drained by the merge phase.
    log: Vec<LogEntry>,
    /// Lazily created per-site service streams, labelled
    /// `"{prefix}s{site}:service:{fn}"`.
    service_rngs: HashMap<u32, SimRng>,
    seed: u64,
    prefix: String,
    /// Nominal end of the run.
    end: SimTime,
    fn_count: usize,
}

/// One site: its scheduler instance plus the shard state, split so the
/// scheduler can borrow a [`PolicyCtx`] over the state.
struct Shard<P: ContainerChaos> {
    policy: P,
    st: ShardState<P::Event>,
}

/// The site-local [`PolicyCtx`]: the parallel analogue of the
/// federation's scoped `SiteCtx`, backed by shard-private state instead
/// of the shared engine.
struct LocalCtx<'a, E> {
    st: &'a mut ShardState<E>,
    /// The current event's timestamp — stamps outcome log entries so
    /// the merge phase orders them correctly (the local calendar's
    /// clock lags while inbox messages are being processed).
    now: SimTime,
    /// Shift applied to scheduled times — non-zero only while replaying
    /// a rebuilt policy's `on_start` after a crash recovery.
    offset: SimDuration,
}

impl<E> ShardState<E> {
    /// The shared completion path: compute the request's timings, fold
    /// them into the site statistics, and log the outcome for the merge
    /// phase. Mirrors the sequential engine's `complete` +
    /// `SiteTally::record_completion` pair (the predictor half of
    /// `record_completion` is replayed by the merge phase).
    fn complete_now(&mut self, rid: u64, started: SimTime, now: SimTime) -> Option<Completion> {
        let (fn_idx, arrival) = self.live.remove(&rid)?;
        let wait = started.saturating_since(arrival).as_secs_f64();
        let service = now.saturating_since(started).as_secs_f64();
        let response = now.saturating_since(arrival).as_secs_f64();
        let f = &mut self.per_fn[fn_idx as usize];
        let violated_slo = wait > f.slo_deadline;
        f.completed += 1;
        f.wait.record(wait);
        f.service.record(service);
        f.response.record(response);
        if violated_slo {
            f.slo_violations += 1;
        }
        self.in_flight = self.in_flight.saturating_sub(1);
        self.log.push(LogEntry {
            t: now,
            kind: LogKind::Completed {
                rid,
                fn_idx,
                wait,
                service,
                response,
                violated: violated_slo,
            },
        });
        Some(Completion {
            fn_idx,
            arrival,
            wait,
            service,
            response,
            violated_slo,
        })
    }
}

impl<E> PolicyCtx<E> for LocalCtx<'_, E> {
    fn schedule(&mut self, at: SimTime, ev: E) {
        self.st.queue.schedule(at + self.offset, ev);
    }

    fn end_time(&self) -> SimTime {
        self.st.end
    }

    fn fn_count(&self) -> usize {
        self.st.fn_count
    }

    fn service_rng(&mut self, fn_idx: u32) -> &mut SimRng {
        let (seed, site, prefix) = (self.st.seed, self.st.site, &self.st.prefix);
        self.st.service_rngs.entry(fn_idx).or_insert_with(|| {
            SimRng::from_seed_label(seed, &format!("{prefix}s{site}:service:{fn_idx}"))
        })
    }

    fn request_info(&self, rid: ReqId) -> Option<(u32, SimTime)> {
        self.st.live.get(&rid.0).copied()
    }

    fn complete(&mut self, rid: ReqId, started: SimTime, now: SimTime) -> Option<Completion> {
        if self.st.partitioned {
            // The response cannot cross the cut link: hold it until the
            // partition heals, exactly like the sequential SiteCtx.
            if self.st.live.contains_key(&rid.0) {
                self.st.stalled.push((rid.0, started));
            }
            return None;
        }
        self.st.complete_now(rid.0, started, now)
    }

    fn abandon(&mut self, rid: ReqId) -> Option<u32> {
        let (fn_idx, _) = self.st.live.remove(&rid.0)?;
        let f = &mut self.st.per_fn[fn_idx as usize];
        f.timeouts += 1;
        f.slo_violations += 1;
        self.st.in_flight = self.st.in_flight.saturating_sub(1);
        self.st.log.push(LogEntry {
            t: self.now,
            kind: LogKind::Timeout { rid: rid.0, fn_idx },
        });
        Some(fn_idx)
    }

    fn lose(&mut self, rid: ReqId) -> Option<u32> {
        let (fn_idx, _) = self.st.live.remove(&rid.0)?;
        self.st.per_fn[fn_idx as usize].lost += 1;
        self.st.in_flight = self.st.in_flight.saturating_sub(1);
        self.st.log.push(LogEntry {
            t: self.now,
            kind: LogKind::Lost { rid: rid.0, fn_idx },
        });
        Some(fn_idx)
    }

    fn rerun(&mut self, rid: ReqId) -> Option<u32> {
        let &(fn_idx, _) = self.st.live.get(&rid.0)?;
        self.st.per_fn[fn_idx as usize].reruns += 1;
        self.st.log.push(LogEntry {
            t: self.now,
            kind: LogKind::Rerun { fn_idx },
        });
        Some(fn_idx)
    }

    fn take_window_counts(&mut self) -> Vec<u64> {
        self.st.window.iter_mut().map(std::mem::take).collect()
    }

    fn outstanding(&self) -> usize {
        self.st.in_flight
    }
}

/// Advance one shard through `[its current time, horizon)`: drain the
/// window's inbox merged with the local calendar in time order (inbox
/// first on ties — front-end messages were scheduled before the site's
/// own run-time events in the sequential calendar).
fn pump_shard<P: ContainerChaos>(shard: &mut Shard<P>, horizon: SimTime) {
    loop {
        let next_inbox = shard.st.inbox.front().map(|&(t, _)| t);
        let next_local = shard.st.queue.peek_time();
        let take_inbox = match (next_inbox, next_local) {
            (Some(ti), Some(tl)) => ti <= tl,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_inbox {
            let t = next_inbox.expect("checked");
            if t >= horizon {
                break;
            }
            let (_, msg) = shard.st.inbox.pop_front().expect("checked");
            let Shard { policy, st } = shard;
            let mut ctx = LocalCtx {
                st,
                now: t,
                offset: SimDuration::ZERO,
            };
            match msg {
                Msg::Deliver {
                    rid,
                    fn_idx,
                    arrival,
                } => {
                    ctx.st.in_flight += 1;
                    ctx.st.window[fn_idx as usize] += 1;
                    ctx.st.per_fn[fn_idx as usize].arrivals += 1;
                    ctx.st.live.insert(rid, (fn_idx, arrival));
                    policy.on_arrival(&mut ctx, ReqId(rid), fn_idx, t);
                }
                Msg::PartitionStart => {
                    ctx.st.partitioned = true;
                }
                Msg::PartitionEnd => {
                    ctx.st.partitioned = false;
                    // Release the responses the cut link held back; the
                    // stall lands in their response time.
                    let stalled = std::mem::take(&mut ctx.st.stalled);
                    for (rid, started) in stalled {
                        ctx.st.complete_now(rid, started, t);
                    }
                }
                Msg::Burst { count } => {
                    let crashed = policy.crash_containers(&mut ctx, count, t);
                    ctx.st.chaos_crashes += crashed;
                }
                Msg::Directive { desired } => {
                    policy.apply_desired_fleet(&mut ctx, desired, t);
                }
                Msg::Cancel { rid } => {
                    // The site policy is not told: its own completion
                    // event for the clone later finds the request gone
                    // and degrades to a no-op, exactly like the
                    // sequential cancel path.
                    if let Some((fn_idx, _)) = ctx.st.live.remove(&rid) {
                        ctx.st.in_flight = ctx.st.in_flight.saturating_sub(1);
                        ctx.st.per_fn[fn_idx as usize].cancelled += 1;
                        ctx.st.log.push(LogEntry {
                            t,
                            kind: LogKind::Cancelled { rid, fn_idx },
                        });
                    }
                }
            }
        } else {
            let tl = next_local.expect("checked");
            if tl >= horizon {
                break;
            }
            let (t, ev) = shard.st.queue.pop().expect("checked");
            let Shard { policy, st } = shard;
            policy.on_event(
                &mut LocalCtx {
                    st,
                    now: t,
                    offset: SimDuration::ZERO,
                },
                ev,
                t,
            );
        }
    }
}

/// The front-end's per-site bookkeeping: the router-visible half of the
/// sequential `SiteTally`.
struct FrontSite {
    meta: SiteMeta,
    routed: usize,
    finished: usize,
    up: bool,
    partitioned: bool,
    /// Whether a [`Fault::SiteSlowdown`] brown-out is active (the site
    /// stays routable but the health EWMA sees it as degraded).
    slowed: bool,
    needs_rebuild: bool,
    restarts: u32,
    migrated_out: usize,
    migrated_in: usize,
    failed: usize,
    downtime: DowntimeClock,
    predictor: WaitPredictor,
    fcache: ForecastCache,
    health: HealthEwma,
    /// Hedge-loser completions that beat their cancel home: the site
    /// finished work nobody was waiting for.
    wasted: usize,
    /// Service seconds burnt on those completions.
    wasted_secs: f64,
}

impl FrontSite {
    fn routable(&self) -> bool {
        self.up && !self.partitioned
    }

    /// Close the downtime-clock transition after routability changed;
    /// the flakiness EWMA sees the true instant, the clock is clamped
    /// to the nominal end (mirrors the sequential `clock_routability`).
    fn clock_routability(&mut self, now: SimTime, end: SimTime) {
        self.health
            .observe(now.as_secs_f64(), self.slowed || !self.routable());
        let now = now.min(end);
        if self.routable() {
            self.downtime.mark_up(now);
        } else {
            self.downtime.mark_down(now);
        }
    }
}

/// Front-end calendar events: the arrival pump plus in-flight network
/// hops. Faults are *not* calendar events here — every fault instant is
/// a window barrier handled by the main thread.
enum FeEv {
    Arrival(u32),
    DeliveryDue {
        site: u32,
        rid: u64,
        fn_idx: u32,
        arrival: SimTime,
    },
    /// A site's node agent publishes its telemetry snapshot
    /// (self-re-arming; only scheduled when telemetry is enabled). The
    /// snapshot is assembled in the front-end phase from the
    /// barrier-stale shard census plus the front-end-owned predictor —
    /// deterministic for every thread count, since every shard is
    /// parked at the window start when the front-end phase runs.
    Publish {
        site: u32,
    },
    /// A published snapshot completes its hop to the router's view.
    SnapshotDue {
        site: u32,
        snap: TelemetrySnapshot,
    },
    /// A reconciler directive completes its return hop; forwarded into
    /// the site's inbox as a current-window [`Msg::Directive`].
    DirectiveDue {
        site: u32,
        desired: u32,
    },
    /// A deferred hedge trigger comes due: dispatch the clones unless
    /// the race already resolved (the resolution cancelled this event,
    /// so a surviving fire is always live — the guard is belt and
    /// braces).
    HedgeFire {
        rid: u64,
        fn_idx: u32,
    },
    /// A loser-cancellation message completes its hop to the site;
    /// forwarded into the site's inbox as a current-window
    /// [`Msg::Cancel`]. Pushed regardless of partitions — cancels are
    /// idempotent control traffic, mirroring the sequential
    /// `CancelDeliver`.
    CancelDue {
        site: u32,
        rid: u64,
    },
}

/// Front-end bookkeeping for one hedged logical request.
struct FeHedge {
    /// Original arrival instant (clones inherit it so their shard-side
    /// wait/response include the time since the logical arrival, as in
    /// the sequential engine's shared request record).
    arrival: SimTime,
    /// Sites currently holding (or about to receive) a copy;
    /// `copies[0]` is the primary.
    copies: Vec<u32>,
    /// Cancellable calendar token of a pending deferred fire.
    fire_token: Option<u64>,
    /// Whether the first response already won the race.
    resolved: bool,
    /// Losers still owing a terminal event (cancel landing,
    /// dead-on-arrival delivery, or wasted completion); the group is
    /// dropped when this reaches zero.
    pending_losers: usize,
    /// Sites whose copy was abandoned *before* resolution (speculative
    /// retry): their terminal log entry is always wasted work, never
    /// the winner.
    lost: Vec<u32>,
}

/// Everything the main thread owns between worker phases.
struct Frontend<P: ContainerChaos> {
    calendar: EventQueue<FeEv>,
    fronts: Vec<FrontSite>,
    router: Box<dyn RouterPolicy + Send>,
    states: Vec<SiteState>,
    /// The router/telemetry knobs in force (rebuilds a crashed site's
    /// predictor with the same smoothing constants).
    router_cfg: RouterConfig,
    /// Delayed-telemetry propagation state (disabled ⇒ oracle routing).
    telemetry: TelemetryRuntime,
    /// Optional scaling reconciler fed each snapshot as it arrives.
    reconciler: Option<Box<dyn ReconcilerSeam>>,
    migration_penalty: SimDuration,
    rebuild: Option<crate::federation::SiteRebuild<P>>,
    /// Per-function arrival machinery — identical streams and call
    /// sequence to the sequential engine, so the arrival timeline (and
    /// request-id assignment) matches the sequential run exactly.
    procs: Vec<(Box<dyn ArrivalProcess + Send>, SimRng)>,
    /// Cross-site aggregate statistics (the engine's own measurement in
    /// the sequential run).
    agg: Vec<FnStats>,
    unroutable: usize,
    arrivals_total: usize,
    completed_total: usize,
    timeouts_total: usize,
    lost_total: usize,
    next_rid: u64,
    end: SimTime,
    /// Hedged-request configuration (absent = no hedging; the hedge
    /// paths below are then never taken and the executor is
    /// byte-identical to its pre-hedging behaviour).
    hedge: Option<HedgeConfig>,
    /// Live hedge groups by logical request id.
    hedges: BTreeMap<u64, FeHedge>,
    /// Per-function demand vectors (the planner router's fit
    /// denominators), from [`crate::federation::FedFunction::demand`].
    fn_demands: Vec<[f64; 3]>,
    /// Whether the run opted into multi-dimensional accounting (gates
    /// the per-site `utilization` report key and the telemetry
    /// resources column, exactly like the sequential federation).
    multidim: bool,
}

impl<P: ContainerChaos> Frontend<P> {
    fn schedule_next_arrival(&mut self, fn_idx: u32, now: SimTime) {
        let (process, rng) = &mut self.procs[fn_idx as usize];
        if let Some(t) = process.next_after(now, rng) {
            self.calendar.schedule(t, FeEv::Arrival(fn_idx));
        }
    }

    /// Refresh the router's scratch view — the parallel analogue of the
    /// sequential `Federation::refresh_states`, dispatching between the
    /// oracle census and the delayed-telemetry view.
    fn refresh_states(&mut self, shards: &[Mutex<Shard<P>>], fn_idx: u32, now: SimTime) {
        if self.telemetry.enabled() {
            self.refresh_states_stale(fn_idx, now);
            return;
        }
        let t = now.as_secs_f64();
        for (i, state) in self.states.iter_mut().enumerate() {
            let front = &mut self.fronts[i];
            state.in_flight = front.routed.saturating_sub(front.finished) as u64;
            state.up = front.routable();
            front.health.observe(t, front.slowed || !front.routable());
            state.flakiness = front.health.value();
            // The census reads the shard directly — phases never
            // overlap, so the lock is uncontended; the fleet is the
            // site's state as of the last barrier (≤ one lookahead
            // window stale).
            let shard = shards[i].lock().expect("shard lock");
            state.warm = shard.policy.warm_containers(fn_idx);
            let fleet: u64 = (0..shard.st.per_fn.len())
                .map(|f| shard.policy.warm_containers(f as u32))
                .sum();
            state.resources = shard.policy.resource_snapshot();
            drop(shard);
            state.fits = state.resources.fit_count(
                self.fn_demands
                    .get(fn_idx as usize)
                    .copied()
                    .unwrap_or_default(),
            );
            let servers = if fleet > 0 {
                fleet.min(u64::from(u32::MAX)) as u32
            } else {
                state.capacity_hint.round().max(1.0) as u32
            };
            state.forecast = front.fcache.refresh(&mut front.predictor, t, servers);
        }
    }

    /// The delayed-telemetry half of [`Frontend::refresh_states`]:
    /// site-side columns come from the last *arrived* snapshot, only
    /// the commitment counter stays live.
    fn refresh_states_stale(&mut self, fn_idx: u32, now: SimTime) {
        for (i, state) in self.states.iter_mut().enumerate() {
            let front = &self.fronts[i];
            let view = &self.telemetry.views[i];
            state.in_flight = front.routed.saturating_sub(front.finished) as u64;
            state.up = self.telemetry.view_up(i, front.meta.latency, now);
            state.forecast = view.forecast;
            state.flakiness = view.flakiness;
            state.warm = view.warm.get(fn_idx as usize).copied().unwrap_or(0);
            state.resources = view.resources;
            state.fits = state.resources.fit_count(
                self.fn_demands
                    .get(fn_idx as usize)
                    .copied()
                    .unwrap_or_default(),
            );
        }
    }

    /// Replicate the sequential `refresh_states` + router call: refresh
    /// the scratch view from the front-end counters and the shards'
    /// (barrier-stale) warm census, then route with
    /// fallback-to-first-routable.
    fn pick_site(&mut self, shards: &[Mutex<Shard<P>>], fn_idx: u32, now: SimTime) -> usize {
        self.refresh_states(shards, fn_idx, now);
        if self.telemetry.enabled() {
            return self.pick_site_stale(fn_idx, now);
        }
        let fallback = self
            .fronts
            .iter()
            .position(FrontSite::routable)
            .expect("caller checked a routable site exists");
        let chosen = self.router.route(fn_idx, now, &self.states);
        let ok = chosen < self.fronts.len() && self.fronts[chosen].routable();
        debug_assert!(ok, "router returned unroutable site {chosen}");
        if ok {
            chosen
        } else {
            fallback
        }
    }

    /// The stale-view routing decision — the exact mirror of the
    /// sequential `Federation::pick_site_stale` (states already
    /// refreshed by [`Frontend::refresh_states`]): when the view marks
    /// every site down the front end routes blind to the first
    /// physically routable site.
    fn pick_site_stale(&mut self, fn_idx: u32, now: SimTime) -> usize {
        let Some(fallback) = self.states.iter().position(|s| s.up) else {
            return self
                .fronts
                .iter()
                .position(FrontSite::routable)
                .expect("caller checked a routable site exists");
        };
        let chosen = self.router.route(fn_idx, now, &self.states);
        let ok = chosen < self.fronts.len() && self.states[chosen].up;
        debug_assert!(ok, "router returned view-down site {chosen}");
        if ok {
            chosen
        } else {
            fallback
        }
    }

    /// Whether the waste-admission budget permits issuing another clone
    /// or retry — the mirror of `Federation::hedge_within_budget`, fed
    /// from the merge-phase counters (so at most one lookahead window
    /// stale, deterministic for every thread count).
    fn hedge_within_budget(&self) -> bool {
        let Some(cfg) = self.hedge else { return false };
        if cfg.waste_budget <= 0.0 {
            return true;
        }
        let wasted: usize = self.fronts.iter().map(|f| f.wasted).sum();
        if wasted == 0 {
            return true;
        }
        (wasted as f64) < cfg.waste_budget * ((self.completed_total + wasted) as f64)
    }

    /// Dispatch hedge clones for `rid` to the best-scored sites (by the
    /// routers' shared `predicted_score`) not already holding a copy —
    /// the parallel mirror of `Federation::dispatch_clones`. Assumes
    /// [`Frontend::refresh_states`] ran for this decision. A group that
    /// ends with a single copy and no pending deferred fire dissolves.
    fn dispatch_clones(&mut self, rid: u64, fn_idx: u32, now: SimTime) {
        let Some(hcfg) = self.hedge else { return };
        let pct = self.router_cfg.percentile;
        let cold = self.router_cfg.cold_start_penalty_ms / 1e3;
        for _ in 0..hcfg.max_clones {
            let copies = &self.hedges[&rid].copies;
            let mut best: Option<(f64, usize)> = None;
            for (i, s) in self.states.iter().enumerate() {
                if !s.up || copies.contains(&(i as u32)) {
                    continue;
                }
                let score = predicted_score(s, pct, cold);
                if best.is_none_or(|(b, _)| score < b) {
                    best = Some((score, i));
                }
            }
            let Some((_, c)) = best else { break };
            let group = self.hedges.get_mut(&rid).expect("group inserted by caller");
            group.copies.push(c as u32);
            let arrival = group.arrival;
            self.fronts[c].routed += 1;
            self.fronts[c].predictor.on_arrival(now.as_secs_f64());
            self.agg[fn_idx as usize].hedged += 1;
            // Latencies are validated positive: the clone always
            // crosses the calendar, landing in a later window.
            let latency = self.fronts[c].meta.latency;
            self.calendar.schedule(
                now + latency,
                FeEv::DeliveryDue {
                    site: c as u32,
                    rid,
                    fn_idx,
                    arrival,
                },
            );
        }
        if self
            .hedges
            .get(&rid)
            .is_some_and(|g| g.copies.len() == 1 && g.fire_token.is_none())
        {
            self.hedges.remove(&rid);
        }
    }

    /// Move a request committed to site `from` onto a surviving site, or
    /// fail it when none is left — the front-end half of the sequential
    /// `Federation::migrate`. `delivered` says whether the request had
    /// already reached the site (crash orphan, shard-side accounting
    /// already released) or was still in transit (bounced delivery).
    #[allow(clippy::too_many_arguments)]
    fn migrate(
        &mut self,
        shards: &[Mutex<Shard<P>>],
        from: usize,
        rid: u64,
        fn_idx: u32,
        arrival: SimTime,
        now: SimTime,
        delivered: bool,
    ) {
        self.fronts[from].finished += 1;
        if self.hedge.is_some() {
            if let Some(g) = self.hedges.get_mut(&rid) {
                // A copy this front end already abandoned (retry) dies
                // with its site instead of migrating — its pending
                // cancel finds nothing and the loser debt settles here.
                if let Some(p) = g.lost.iter().position(|&s| s == from as u32) {
                    g.lost.remove(p);
                    g.pending_losers = g.pending_losers.saturating_sub(1);
                    if g.resolved && g.pending_losers == 0 {
                        self.hedges.remove(&rid);
                    }
                    self.agg[fn_idx as usize].cancelled += 1;
                    if delivered {
                        let mut shard = shards[from].lock().expect("shard lock");
                        shard.st.per_fn[fn_idx as usize].cancelled += 1;
                    }
                    return;
                }
                if g.copies.len() > 1 || g.resolved {
                    // A hedge clone with a surviving sibling — or whose
                    // request already won — dies quietly instead of
                    // migrating: an orphaned clone must never resurrect
                    // an answered request, and a sibling copy is
                    // already racing elsewhere.
                    g.copies.retain(|&s| s != from as u32);
                    let done = if g.resolved {
                        g.pending_losers = g.pending_losers.saturating_sub(1);
                        g.pending_losers == 0
                    } else {
                        false
                    };
                    if done {
                        self.hedges.remove(&rid);
                    }
                    self.agg[fn_idx as usize].cancelled += 1;
                    if delivered {
                        let mut shard = shards[from].lock().expect("shard lock");
                        shard.st.per_fn[fn_idx as usize].cancelled += 1;
                    }
                    return;
                }
            }
        }
        if !self.fronts.iter().any(FrontSite::routable) {
            // Nowhere to go: the request is failed (engine-level lost).
            self.fronts[from].failed += 1;
            if delivered {
                let mut shard = shards[from].lock().expect("shard lock");
                shard.st.per_fn[fn_idx as usize].lost += 1;
            }
            self.agg[fn_idx as usize].lost += 1;
            self.lost_total += 1;
            // The last copy of a hedged request failing retires its
            // (loser-free) group.
            if let Some(g) = self.hedges.remove(&rid) {
                if let Some(token) = g.fire_token {
                    self.calendar.cancel(token);
                }
            }
            return;
        }
        self.fronts[from].migrated_out += 1;
        if delivered {
            // The orphan lost its server; the aggregate rerun counter is
            // the cross-site view of that.
            self.agg[fn_idx as usize].reruns += 1;
        }
        let dest = self.pick_site(shards, fn_idx, now);
        if let Some(g) = self.hedges.get_mut(&rid) {
            // The surviving last copy moves: keep the group's site map
            // honest so a later resolution cancels the right place.
            if let Some(p) = g.copies.iter_mut().find(|s| **s == from as u32) {
                *p = dest as u32;
            }
        }
        self.fronts[dest].routed += 1;
        self.fronts[dest].predictor.on_arrival(now.as_secs_f64());
        self.fronts[dest].migrated_in += 1;
        // Latencies are validated positive, so the hop is never zero and
        // the re-delivery always goes through the calendar.
        let hop = self.fronts[dest].meta.latency + self.migration_penalty;
        self.calendar.schedule(
            now + hop,
            FeEv::DeliveryDue {
                site: dest as u32,
                rid,
                fn_idx,
                arrival,
            },
        );
    }

    /// Apply one fault at a window barrier — the parallel analogue of
    /// the federation's `ChaosTarget::inject`.
    fn apply_fault(&mut self, shards: &[Mutex<Shard<P>>], fault: Fault, now: SimTime) {
        let i = fault.site() as usize;
        if i >= self.fronts.len() {
            debug_assert!(false, "fault targets unknown site {i}");
            return;
        }
        let end = self.end;
        match fault {
            Fault::SiteDown { .. } => {
                if !self.fronts[i].up {
                    return;
                }
                assert!(
                    self.rebuild.is_some(),
                    "site-crash faults require Federation::with_rebuild"
                );
                self.fronts[i].up = false;
                self.fronts[i].needs_rebuild = true;
                let orphans: Vec<(u64, (u32, SimTime))> = {
                    let mut shard = shards[i].lock().expect("shard lock");
                    // Every pending event belongs to the dead
                    // incarnation — the shard advanced exactly to the
                    // fault instant, so the whole calendar is invalid.
                    shard.st.queue.clear();
                    shard.st.stalled.clear();
                    shard.st.in_flight = 0;
                    std::mem::take(&mut shard.st.live).into_iter().collect()
                };
                self.fronts[i].clock_routability(now, end);
                for (rid, (fn_idx, arrival)) in orphans {
                    self.migrate(shards, i, rid, fn_idx, arrival, now, true);
                }
            }
            Fault::SiteUp { .. } => {
                if self.fronts[i].up {
                    return;
                }
                self.fronts[i].up = true;
                self.fronts[i].clock_routability(now, end);
                if self.fronts[i].needs_rebuild {
                    self.fronts[i].needs_rebuild = false;
                    self.fronts[i].restarts += 1;
                    // The rebuilt site starts cold with no history: drop
                    // the dead incarnation's λ̂/μ̂ so the replacement's
                    // forecasts start empty (the health EWMA stays — the
                    // router remembers the crash). Mirrors the
                    // sequential rebuild arm.
                    self.fronts[i].predictor = WaitPredictor::new(self.router_cfg.predictor());
                    self.fronts[i].fcache = ForecastCache::new();
                    let restarts = self.fronts[i].restarts;
                    let rebuild = self.rebuild.as_mut().expect("checked at SiteDown");
                    let mut shard = shards[i].lock().expect("shard lock");
                    shard.policy = rebuild(i, restarts);
                    shard.st.in_flight = 0;
                    for w in &mut shard.st.window {
                        *w = 0;
                    }
                    // Replay the fresh policy's start-up (timer setup,
                    // initial provisioning) shifted to the present.
                    let Shard { policy, st } = &mut *shard;
                    policy.on_start(&mut LocalCtx {
                        st,
                        now,
                        offset: now.saturating_since(SimTime::ZERO),
                    });
                }
            }
            Fault::PartitionStart { .. } => {
                if self.fronts[i].partitioned {
                    return;
                }
                self.fronts[i].partitioned = true;
                self.fronts[i].clock_routability(now, end);
                let mut shard = shards[i].lock().expect("shard lock");
                shard.st.inbox.push_back((now, Msg::PartitionStart));
            }
            Fault::PartitionEnd { .. } => {
                if !self.fronts[i].partitioned {
                    return;
                }
                self.fronts[i].partitioned = false;
                self.fronts[i].clock_routability(now, end);
                let mut shard = shards[i].lock().expect("shard lock");
                shard.st.inbox.push_back((now, Msg::PartitionEnd));
            }
            Fault::SiteSlowdown { permille, .. } => {
                // Brown-out: the site keeps serving (and stays
                // routable) at `permille`/1000 of nominal speed; only
                // the health EWMA sees the degradation.
                self.fronts[i].slowed = permille < 1000;
                {
                    let mut shard = shards[i].lock().expect("shard lock");
                    shard.policy.set_service_factor(permille as f64 / 1000.0);
                }
                self.fronts[i].clock_routability(now, end);
            }
            Fault::ContainerBurst { count, .. } => {
                if !self.fronts[i].up {
                    return; // a dead site has nothing left to crash
                }
                let mut shard = shards[i].lock().expect("shard lock");
                shard.st.inbox.push_back((now, Msg::Burst { count }));
            }
        }
    }

    /// First-response-wins arbitration, run against every terminal log
    /// entry of a hedged request in merge order. Returns `false` for
    /// the winner (the first terminal entry — fold it normally, after
    /// scheduling loser cancellations at each loser site's latency) and
    /// `true` for every later entry (a loser that finished before its
    /// cancel landed — reclassify as cancelled/wasted). Because the
    /// merge order is `(time, site, log-index)`-stable, the winner is
    /// identical for every thread count.
    fn hedge_arbitrate(&mut self, rid: u64, winner: u32, t: SimTime) -> bool {
        let Some(g) = self.hedges.get_mut(&rid) else {
            return false;
        };
        // An abandoned (retry-lost) copy can never win, even if its
        // terminal entry merges first: reclassify as wasted work.
        if let Some(p) = g.lost.iter().position(|&s| s == winner) {
            g.lost.remove(p);
            g.pending_losers = g.pending_losers.saturating_sub(1);
            if g.resolved && g.pending_losers == 0 {
                self.hedges.remove(&rid);
            }
            return true;
        }
        if g.resolved {
            g.pending_losers = g.pending_losers.saturating_sub(1);
            if g.pending_losers == 0 {
                self.hedges.remove(&rid);
            }
            return true;
        }
        g.resolved = true;
        let token = g.fire_token.take();
        let losers: Vec<u32> = g.copies.iter().copied().filter(|&s| s != winner).collect();
        g.pending_losers += losers.len();
        if g.pending_losers == 0 {
            self.hedges.remove(&rid);
        }
        if let Some(token) = token {
            self.calendar.cancel(token);
        }
        for site in losers {
            let at = t + self.fronts[site as usize].meta.latency;
            self.calendar.schedule(at, FeEv::CancelDue { site, rid });
        }
        false
    }

    /// Merge the window's per-site outcome logs into the aggregate in
    /// deterministic `(time, site, log-index)` order and feed the
    /// per-site telemetry — thread-count-independent by construction.
    fn merge_window(&mut self, shards: &[Mutex<Shard<P>>]) {
        let mut merged: Vec<(u32, LogEntry)> = Vec::new();
        for (i, shard) in shards.iter().enumerate() {
            let mut shard = shard.lock().expect("shard lock");
            for e in shard.st.log.drain(..) {
                merged.push((i as u32, e));
            }
        }
        // Stable by time: equal instants keep (site, log-index) order.
        merged.sort_by_key(|(_, e)| e.t);
        let hedging = self.hedge.is_some();
        for (site, e) in merged {
            match e.kind {
                LogKind::Completed {
                    rid,
                    fn_idx,
                    wait,
                    service,
                    response,
                    violated,
                } => {
                    if hedging && self.hedge_arbitrate(rid, site, e.t) {
                        // A loser finished before its cancel landed:
                        // honest wasted work, not a logical completion.
                        let front = &mut self.fronts[site as usize];
                        front.finished += 1;
                        front.wasted += 1;
                        front.wasted_secs += service;
                        self.agg[fn_idx as usize].cancelled += 1;
                        continue;
                    }
                    let front = &mut self.fronts[site as usize];
                    front.finished += 1;
                    front.predictor.on_service(service);
                    let f = &mut self.agg[fn_idx as usize];
                    f.completed += 1;
                    f.wait.record(wait);
                    f.service.record(service);
                    f.response.record(response);
                    if violated {
                        f.slo_violations += 1;
                    }
                    self.completed_total += 1;
                }
                LogKind::Timeout { rid, fn_idx } => {
                    if hedging && self.hedge_arbitrate(rid, site, e.t) {
                        self.fronts[site as usize].finished += 1;
                        self.agg[fn_idx as usize].cancelled += 1;
                        continue;
                    }
                    let front = &mut self.fronts[site as usize];
                    front.finished += 1;
                    let f = &mut self.agg[fn_idx as usize];
                    f.timeouts += 1;
                    f.slo_violations += 1;
                    self.timeouts_total += 1;
                }
                LogKind::Lost { rid, fn_idx } => {
                    if hedging && self.hedge_arbitrate(rid, site, e.t) {
                        self.fronts[site as usize].finished += 1;
                        self.agg[fn_idx as usize].cancelled += 1;
                        continue;
                    }
                    let front = &mut self.fronts[site as usize];
                    front.finished += 1;
                    self.agg[fn_idx as usize].lost += 1;
                    self.lost_total += 1;
                }
                LogKind::Rerun { fn_idx } => {
                    self.agg[fn_idx as usize].reruns += 1;
                }
                LogKind::Cancelled { rid, fn_idx } => {
                    self.fronts[site as usize].finished += 1;
                    self.agg[fn_idx as usize].cancelled += 1;
                    if let Some(g) = self.hedges.get_mut(&rid) {
                        g.pending_losers = g.pending_losers.saturating_sub(1);
                        if g.pending_losers == 0 {
                            self.hedges.remove(&rid);
                        }
                    }
                }
            }
        }
    }
}

/// Run a federated simulation over per-site worker threads with
/// conservative latency-lookahead synchronization. See the module docs
/// for the execution model and determinism contract.
///
/// `federation` must be freshly built (no prior run);
/// `chaos`/`chaos_seed` describe the fault schedule the sequential path
/// would inject through a
/// [`ChaosPolicy`](crate::chaos::ChaosPolicy) wrapper (pass
/// `ChaosConfig::default()` for a fault-free run). The worker count
/// comes from `cfg.parallel_sites` (clamped to the site count; `None`
/// runs the windowed executor single-threaded, which produces the same
/// bytes as any other thread count).
///
/// # Panics
///
/// Panics if any site latency is zero (the lookahead would be
/// degenerate — callers are expected to validate and fall back to the
/// sequential path) or if the duration is not positive.
pub fn run_federation_parallel<P>(
    cfg: EngineConfig,
    functions: Vec<FunctionEntry>,
    federation: Federation<P>,
    chaos: ChaosConfig,
    chaos_seed: u64,
) -> FederatedReport<P::Report>
where
    P: ContainerChaos + Send,
    P::Event: Send,
{
    assert!(
        cfg.duration_secs > 0.0,
        "simulation needs a positive duration"
    );
    chaos.validate().expect("invalid ChaosConfig");
    let Federation {
        sites,
        metas,
        tallies,
        router,
        states,
        router_cfg,
        telemetry,
        reconciler,
        migration_penalty,
        rebuild,
        unroutable,
        fn_demands,
        multidim,
        hedge,
        ..
    } = federation;
    let n_sites = metas.len();
    let lookahead = metas
        .iter()
        .map(|m| m.latency)
        .min()
        .expect("federation has at least one site");
    assert!(
        lookahead > SimDuration::ZERO,
        "parallel federated execution requires every site latency > 0 \
         (zero latency degenerates the conservative lookahead); \
         fall back to the sequential path"
    );
    let end = SimTime::from_secs_f64(cfg.duration_secs);
    let hard_end = end + SimDuration::from_secs_f64(cfg.drain_secs);
    let duration_secs = cfg.duration_secs;
    let threads = cfg.parallel_sites.unwrap_or(1).clamp(1, n_sites);

    // The fault timeline, materialized up front in the same order the
    // sequential ChaosPolicy schedules it; a stable sort by time turns
    // scheduling order into firing order.
    let mut faults = chaos.build_schedule(chaos_seed, n_sites, end);
    faults.sort_by_key(|&(t, _)| t);

    // Disassemble the federation: tallies split into the router-visible
    // front half and the shard-private half (the telemetry instances
    // move so `set_router_config` reseeding is preserved).
    let mut fronts = Vec::with_capacity(n_sites);
    let mut shards = Vec::with_capacity(n_sites);
    for (i, ((policy, meta), tally)) in sites.into_iter().zip(metas).zip(tallies).enumerate() {
        let SiteTally {
            per_fn,
            window,
            predictor,
            fcache,
            health,
            downtime,
            ..
        } = tally;
        fronts.push(FrontSite {
            meta,
            routed: 0,
            finished: 0,
            up: true,
            partitioned: false,
            slowed: false,
            needs_rebuild: false,
            restarts: 0,
            migrated_out: 0,
            migrated_in: 0,
            failed: 0,
            downtime,
            predictor,
            fcache,
            health,
            wasted: 0,
            wasted_secs: 0.0,
        });
        shards.push(Mutex::new(Shard {
            policy,
            st: ShardState {
                site: i as u32,
                queue: EventQueue::new(),
                inbox: VecDeque::new(),
                live: BTreeMap::new(),
                stalled: Vec::new(),
                partitioned: false,
                in_flight: 0,
                window,
                per_fn,
                chaos_crashes: 0,
                log: Vec::new(),
                service_rngs: HashMap::new(),
                seed: cfg.seed,
                prefix: cfg.rng_label_prefix.clone(),
                end,
                fn_count: functions.len(),
            },
        }));
    }

    // Aggregate statistics + arrival machinery, mirroring EngineCtx.
    let new_stats = if cfg.stream_stats {
        SampleStats::streaming
    } else {
        SampleStats::new
    };
    let mut agg = Vec::with_capacity(functions.len());
    let mut procs = Vec::with_capacity(functions.len());
    for (i, f) in functions.into_iter().enumerate() {
        agg.push(FnStats {
            name: f.name,
            slo_deadline: f.slo_deadline,
            arrivals: 0,
            completed: 0,
            reruns: 0,
            timeouts: 0,
            lost: 0,
            slo_violations: 0,
            hedged: 0,
            cancelled: 0,
            wait: new_stats(),
            response: new_stats(),
            service: new_stats(),
        });
        procs.push((
            f.process,
            SimRng::from_seed_label(cfg.seed, &format!("{}arrival:{i}", cfg.rng_label_prefix)),
        ));
    }
    let mut fe = Frontend {
        calendar: EventQueue::new(),
        fronts,
        router,
        states,
        router_cfg,
        telemetry,
        reconciler,
        migration_penalty,
        rebuild,
        procs,
        agg,
        unroutable,
        arrivals_total: 0,
        completed_total: 0,
        timeouts_total: 0,
        lost_total: 0,
        next_rid: 0,
        end,
        hedge,
        hedges: BTreeMap::new(),
        fn_demands,
        multidim,
    };
    for i in 0..fe.procs.len() as u32 {
        fe.schedule_next_arrival(i, SimTime::ZERO);
    }
    if fe.telemetry.enabled() {
        for i in 0..n_sites {
            let at = fe.telemetry.next_publish(i);
            fe.calendar.schedule(at, FeEv::Publish { site: i as u32 });
        }
    }
    // Site start-up runs on the main thread before the first window.
    for shard in &shards {
        let mut shard = shard.lock().expect("shard lock");
        let Shard { policy, st } = &mut *shard;
        policy.on_start(&mut LocalCtx {
            st,
            now: SimTime::ZERO,
            offset: SimDuration::ZERO,
        });
    }

    // Bulk-synchronous window loop: two barrier waits per window, the
    // horizon handed to the persistent workers through a mutex.
    let start_barrier = Barrier::new(threads + 1);
    let done_barrier = Barrier::new(threads + 1);
    // (horizon, stop)
    let command = Mutex::new((SimTime::ZERO, false));
    let shards_ref = &shards;
    std::thread::scope(|scope| {
        for w in 0..threads {
            let start = &start_barrier;
            let done = &done_barrier;
            let command = &command;
            scope.spawn(move || loop {
                start.wait();
                let (horizon, stop) = *command.lock().expect("command lock");
                if stop {
                    return;
                }
                for i in (w..n_sites).step_by(threads) {
                    let mut shard = shards_ref[i].lock().expect("shard lock");
                    pump_shard(&mut shard, horizon);
                }
                done.wait();
            });
        }

        let mut t_window = SimTime::ZERO;
        let mut fi = 0usize;
        loop {
            // Barrier phase: apply every fault due at the window start.
            while fi < faults.len() && faults[fi].0 <= t_window {
                let (t, fault) = faults[fi];
                fi += 1;
                fe.apply_fault(shards_ref, fault, t.max(t_window));
            }
            // Horizon: earliest pending work anywhere, advanced by the
            // lookahead, cut at the next fault and the hard end.
            let mut pending = fe.calendar.peek_time();
            for shard in shards_ref {
                let mut shard = shard.lock().expect("shard lock");
                pending = match (pending, shard.st.queue.peek_time()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            let next_fault = faults.get(fi).map(|&(t, _)| t);
            let earliest = match (pending, next_fault) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if earliest > hard_end {
                break;
            }
            let t_eff = t_window.max(earliest);
            let mut horizon = t_eff + lookahead;
            if let Some(ft) = next_fault {
                horizon = horizon.min(ft);
            }
            // Events at exactly the hard end still run (the sequential
            // pump only breaks strictly past it).
            horizon = horizon.min(SimTime(hard_end.0 + 1));

            // Front-end phase: arrivals and due deliveries in [T, H).
            while fe.calendar.peek_time().is_some_and(|t| t < horizon) {
                let (now, ev) = fe.calendar.pop().expect("checked");
                match ev {
                    FeEv::Arrival(fn_idx) => {
                        let rid = fe.next_rid;
                        fe.next_rid += 1;
                        fe.arrivals_total += 1;
                        fe.agg[fn_idx as usize].arrivals += 1;
                        if !fe.fronts.iter().any(FrontSite::routable) {
                            // Every site is dark: shed at the front door.
                            fe.unroutable += 1;
                            fe.agg[fn_idx as usize].lost += 1;
                            fe.lost_total += 1;
                        } else {
                            let chosen = fe.pick_site(shards_ref, fn_idx, now);
                            fe.fronts[chosen].routed += 1;
                            fe.fronts[chosen].predictor.on_arrival(now.as_secs_f64());
                            let latency = fe.fronts[chosen].meta.latency;
                            fe.calendar.schedule(
                                now + latency,
                                FeEv::DeliveryDue {
                                    site: chosen as u32,
                                    rid,
                                    fn_idx,
                                    arrival: now,
                                },
                            );
                            if let Some(hcfg) = fe.hedge {
                                fe.hedges.insert(
                                    rid,
                                    FeHedge {
                                        arrival: now,
                                        copies: vec![chosen as u32],
                                        fire_token: None,
                                        resolved: false,
                                        pending_losers: 0,
                                        lost: Vec::new(),
                                    },
                                );
                                if hcfg.retry_after_ms > 0.0 {
                                    // Speculative retry: arm the
                                    // deadline instead of the trigger.
                                    let at =
                                        now + SimDuration::from_secs_f64(hcfg.retry_after_ms / 1e3);
                                    let token = fe
                                        .calendar
                                        .schedule_cancellable(at, FeEv::HedgeFire { rid, fn_idx });
                                    fe.hedges.get_mut(&rid).expect("just inserted").fire_token =
                                        Some(token);
                                } else {
                                    match hcfg.trigger {
                                        HedgeTrigger::Immediate => {
                                            // States are fresh from pick_site.
                                            if fe.hedge_within_budget() {
                                                fe.dispatch_clones(rid, fn_idx, now);
                                            } else {
                                                fe.hedges.remove(&rid);
                                            }
                                        }
                                        HedgeTrigger::PredictedP95OverSlo => {
                                            let pct = fe.router_cfg.percentile;
                                            let cold = fe.router_cfg.cold_start_penalty_ms / 1e3;
                                            if predicted_score(&fe.states[chosen], pct, cold)
                                                > fe.router_cfg.slo_ms / 1e3
                                                && fe.hedge_within_budget()
                                            {
                                                fe.dispatch_clones(rid, fn_idx, now);
                                            } else {
                                                fe.hedges.remove(&rid);
                                            }
                                        }
                                        HedgeTrigger::DeferredMs(ms) => {
                                            let at = now + SimDuration::from_secs_f64(ms / 1e3);
                                            let token = fe.calendar.schedule_cancellable(
                                                at,
                                                FeEv::HedgeFire { rid, fn_idx },
                                            );
                                            fe.hedges
                                                .get_mut(&rid)
                                                .expect("just inserted")
                                                .fire_token = Some(token);
                                        }
                                    }
                                }
                            }
                        }
                        fe.schedule_next_arrival(fn_idx, now);
                    }
                    FeEv::DeliveryDue {
                        site,
                        rid,
                        fn_idx,
                        arrival,
                    } => {
                        if fe.hedge.is_some() && fe.hedges.get(&rid).is_some_and(|g| g.resolved) {
                            // A hedge clone arriving after its sibling
                            // already answered (the race resolved while
                            // it crossed the network): consumed at the
                            // door, never enters the scheduler.
                            fe.fronts[site as usize].finished += 1;
                            fe.agg[fn_idx as usize].cancelled += 1;
                            if let Some(g) = fe.hedges.get_mut(&rid) {
                                g.copies.retain(|&s| s != site);
                                g.pending_losers = g.pending_losers.saturating_sub(1);
                                if g.pending_losers == 0 {
                                    fe.hedges.remove(&rid);
                                }
                            }
                        } else if fe.fronts[site as usize].routable() {
                            let mut shard = shards_ref[site as usize].lock().expect("shard lock");
                            shard.st.inbox.push_back((
                                now,
                                Msg::Deliver {
                                    rid,
                                    fn_idx,
                                    arrival,
                                },
                            ));
                        } else {
                            // The destination went dark while the request
                            // was in flight: bounce and migrate. Under
                            // delayed telemetry the bounce doubles as
                            // passive failure detection (mirrors the
                            // sequential deliver()).
                            if fe.telemetry.enabled() {
                                fe.telemetry.mark_down(site as usize);
                            }
                            fe.migrate(shards_ref, site as usize, rid, fn_idx, arrival, now, false);
                        }
                    }
                    FeEv::Publish { site } => {
                        let i = site as usize;
                        // Re-arm first: one jitter draw per grid slot,
                        // whatever the site's fate, so the schedule is
                        // identical across fault histories and thread
                        // counts (and matches the sequential driver).
                        let next = fe.telemetry.next_publish(i);
                        fe.calendar.schedule(next, FeEv::Publish { site });
                        // Drawn before the fate checks — stream position
                        // invariant across fault histories, like the
                        // jitter draw above.
                        let lost_in_transit = fe.telemetry.publish_lost(i);
                        let skip = lost_in_transit
                            || !fe.fronts[i].up
                            || (fe.fronts[i].partitioned && fe.telemetry.cfg.loss_under_partition);
                        if !skip {
                            let t = now.as_secs_f64();
                            // Census under an uncontended lock: every
                            // shard is parked at the window start, so the
                            // snapshot is barrier-stale but deterministic
                            // for every thread count (same as the oracle
                            // pick_site census).
                            let shard = shards_ref[i].lock().expect("shard lock");
                            let warm: Vec<u64> = (0..shard.st.per_fn.len())
                                .map(|f| shard.policy.warm_containers(f as u32))
                                .collect();
                            let resources = if fe.multidim {
                                shard.policy.resource_snapshot()
                            } else {
                                Default::default()
                            };
                            drop(shard);
                            let fleet: u64 = warm.iter().sum();
                            let front = &mut fe.fronts[i];
                            let servers = if fleet > 0 {
                                fleet.min(u64::from(u32::MAX)) as u32
                            } else {
                                front.meta.capacity_hint.round().max(1.0) as u32
                            };
                            front.health.observe(t, front.slowed || !front.routable());
                            let snap = TelemetrySnapshot {
                                published_at: now,
                                forecast: front.predictor.forecast(t, servers),
                                flakiness: front.health.value(),
                                warm,
                                resources,
                            };
                            let at = now + front.meta.latency;
                            fe.calendar.schedule(at, FeEv::SnapshotDue { site, snap });
                        }
                    }
                    FeEv::SnapshotDue { site, snap } => {
                        let i = site as usize;
                        let lost =
                            fe.fronts[i].partitioned && fe.telemetry.cfg.loss_under_partition;
                        if !lost {
                            if let Some(rec) = fe.reconciler.as_mut() {
                                if let Some(desired) = rec.desired_fleet(i, &snap, now) {
                                    let at = now + fe.fronts[i].meta.latency;
                                    fe.calendar
                                        .schedule(at, FeEv::DirectiveDue { site, desired });
                                }
                            }
                            fe.telemetry.ingest(i, snap, now);
                        }
                    }
                    FeEv::DirectiveDue { site, desired } => {
                        let i = site as usize;
                        let front = &fe.fronts[i];
                        if front.up && !(front.partitioned && fe.telemetry.cfg.loss_under_partition)
                        {
                            let mut shard = shards_ref[i].lock().expect("shard lock");
                            shard.st.inbox.push_back((now, Msg::Directive { desired }));
                        }
                    }
                    FeEv::HedgeFire { rid, fn_idx } => {
                        if fe.hedges.get(&rid).is_some_and(|g| !g.resolved) {
                            fe.hedges.get_mut(&rid).expect("checked").fire_token = None;
                            let retry = fe.hedge.is_some_and(|cfg| cfg.retry_after_ms > 0.0);
                            if !fe.hedge_within_budget() {
                                // Over the waste budget: no clone, no
                                // retry — the group has nothing to race.
                                fe.hedges.remove(&rid);
                            } else {
                                let primary = fe.hedges[&rid].copies[0];
                                fe.refresh_states(shards_ref, fn_idx, now);
                                fe.dispatch_clones(rid, fn_idx, now);
                                if retry {
                                    // Retry, not hedge: abandon the
                                    // original once its replacement
                                    // exists — a late answer from it is
                                    // wasted work, not a win.
                                    if let Some(g) = fe.hedges.get_mut(&rid) {
                                        if g.copies.len() > 1 && g.copies[0] == primary {
                                            g.copies.remove(0);
                                            g.lost.push(primary);
                                            g.pending_losers += 1;
                                            let at = now + fe.fronts[primary as usize].meta.latency;
                                            fe.calendar.schedule(
                                                at,
                                                FeEv::CancelDue { site: primary, rid },
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                    FeEv::CancelDue { site, rid } => {
                        let mut shard = shards_ref[site as usize].lock().expect("shard lock");
                        shard.st.inbox.push_back((now, Msg::Cancel { rid }));
                    }
                }
            }

            // Worker phase.
            *command.lock().expect("command lock") = (horizon, false);
            start_barrier.wait();
            done_barrier.wait();

            // Merge phase.
            fe.merge_window(shards_ref);
            t_window = horizon;
        }
        *command.lock().expect("command lock") = (SimTime::ZERO, true);
        start_barrier.wait();
    });

    // Assemble the report exactly as the sequential finish() does.
    let outstanding = fe
        .arrivals_total
        .saturating_sub(fe.completed_total + fe.timeouts_total + fe.lost_total);
    let per_site = shards
        .into_iter()
        .zip(fe.fronts)
        .map(|(shard, front)| {
            let shard = shard.into_inner().expect("shard lock");
            let utilization = fe
                .multidim
                .then(|| shard.policy.resource_snapshot().utilization());
            let site_outcome = EngineOutcome {
                per_fn: shard.st.per_fn,
                outstanding: shard.st.in_flight,
                duration_secs,
            };
            SiteReport {
                name: front.meta.name,
                latency_secs: front.meta.latency.as_secs_f64(),
                routed: front.routed,
                migrated: front.migrated_out,
                migrated_in: front.migrated_in,
                failed: front.failed,
                chaos_crashes: shard.st.chaos_crashes,
                downtime_secs: front.downtime.total_until(end),
                flakiness: front.health.value(),
                wasted_work: front.wasted,
                wasted_secs: front.wasted_secs,
                utilization,
                report: shard.policy.finish(site_outcome),
            }
        })
        .collect::<Vec<_>>();
    let wasted_work = per_site.iter().map(|s| s.wasted_work).sum();
    FederatedReport {
        router: fe.router.name().to_owned(),
        per_site,
        aggregate_per_fn: fe.agg,
        unroutable: fe.unroutable,
        wasted_work,
        outstanding,
        duration: duration_secs,
        threads,
    }
}
