//! The event calendar: a time-ordered priority queue of scheduled events.
//!
//! Ties at the same instant are broken by insertion order (a monotonically
//! increasing sequence number), which makes simulations fully deterministic
//! regardless of calendar internals.
//!
//! Two interchangeable backends implement that contract:
//!
//! * [`crate::wheel::TimerWheel`] — a hierarchical timer wheel (the
//!   default): `O(1)` scheduling, cache-friendly buckets, built for
//!   trace replay with 10⁴–10⁶ in-flight timers.
//! * [`HeapCalendar`] — the original `BinaryHeap`: simple and obviously
//!   correct, kept as the differential-testing oracle and selectable as
//!   the [`EventQueue`] backend with the `heap-calendar` feature.
//!
//! A differential proptest (`tests/calendar_differential.rs`) holds the
//! two to bit-identical pop order over arbitrary schedules, so every
//! fixed-seed golden in the workspace is insensitive to the choice.

use crate::time::SimTime;
#[cfg(not(feature = "heap-calendar"))]
use crate::wheel::TimerWheel;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The binary-heap calendar backend: the reference implementation of
/// the `(time, seq)` earliest-first contract.
///
/// [`EventQueue`] uses the timer wheel by default; this type remains
/// `pub` so differential tests can drive both backends with identical
/// `(at, seq)` streams, and so the `heap-calendar` feature can fall
/// back to it wholesale.
#[derive(Debug)]
pub struct HeapCalendar<E> {
    heap: BinaryHeap<Scheduled<E>>,
    /// Tombstones for cancelled-but-still-resident events by `seq`,
    /// purged lazily as pops/peeks reach them. `len` excludes them.
    cancelled: HashSet<u64>,
}

impl<E> Default for HeapCalendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapCalendar<E> {
    /// An empty calendar.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
        }
    }

    /// Insert an event with an explicit tie-break sequence number.
    pub fn insert(&mut self, at: SimTime, seq: u64, event: E) {
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Cancel a pending event by its insertion `seq` (same contract as
    /// [`crate::wheel::TimerWheel::cancel`]): the entry becomes a
    /// tombstone purged lazily by pops/peeks, and `len` drops now. The
    /// `seq` must be pending; a double cancel is absorbed (`false`).
    pub fn cancel(&mut self, seq: u64) -> bool {
        self.cancelled.insert(seq)
    }

    /// Remove and return the earliest `(at, seq)` event, purging
    /// cancelled tombstones on the way.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let s = self.heap.pop()?;
            if !self.cancelled.is_empty() && self.cancelled.remove(&s.seq) {
                continue;
            }
            return Some((s.at, s.event));
        }
    }

    /// Timestamp of the earliest pending event without popping it.
    /// Purges cancelled tombstones off the front so peek and pop agree.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let top = self.heap.peek()?;
            if !self.cancelled.is_empty() && self.cancelled.contains(&top.seq) {
                let s = self.heap.pop().expect("peeked");
                self.cancelled.remove(&s.seq);
                continue;
            }
            return Some(top.at);
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
    }
}

/// A deterministic discrete-event calendar.
///
/// ```
/// use lass_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "b");
/// q.schedule(SimTime::from_secs(1), "a");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    #[cfg(not(feature = "heap-calendar"))]
    calendar: TimerWheel<E>,
    #[cfg(feature = "heap-calendar")]
    calendar: HeapCalendar<E>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty calendar positioned at `t = 0`.
    pub fn new() -> Self {
        Self {
            #[cfg(not(feature = "heap-calendar"))]
            calendar: TimerWheel::new(),
            #[cfg(feature = "heap-calendar")]
            calendar: HeapCalendar::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event (or zero).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past (i.e.
    /// before the last popped event) is a logic error and panics in debug
    /// builds; in release it is clamped to `now` to keep the clock monotone.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        let at = at.max(self.now);
        self.calendar.insert(at, self.seq, event);
        self.seq += 1;
    }

    /// Schedule `event` at `at` and return a cancellation token for it.
    /// The token is the event's unique insertion sequence number; pass
    /// it to [`EventQueue::cancel`] while the event is still pending to
    /// remove it without it ever firing.
    pub fn schedule_cancellable(&mut self, at: SimTime, event: E) -> u64 {
        let token = self.seq;
        self.schedule(at, event);
        token
    }

    /// Cancel a pending event by the token
    /// [`EventQueue::schedule_cancellable`] returned. The event must
    /// still be pending (not yet popped): liveness is the caller's
    /// responsibility — the engine's request table guards its cancel
    /// tokens with generation checks so a stale cancel never reaches
    /// here. Returns `false` on a (caller-bug) double cancel.
    pub fn cancel(&mut self, token: u64) -> bool {
        self.calendar.cancel(token)
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, event) = self.calendar.pop()?;
        self.now = at;
        Some((at, event))
    }

    /// Timestamp of the next event without popping it. Takes `&mut`
    /// because cancelled tombstones are purged off the front so the
    /// answer always matches what `pop` would return.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.calendar.peek_time()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.calendar.len()
    }

    /// Whether the calendar is empty.
    pub fn is_empty(&self) -> bool {
        self.calendar.is_empty()
    }

    /// Drop all pending events (the clock is kept).
    pub fn clear(&mut self) {
        self.calendar.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 5);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(4), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
        // Scheduling relative to now is the common idiom.
        let later = q.now() + SimDuration::from_secs(1);
        q.schedule(later, ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(3));
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(4));
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(9), ());
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut q = EventQueue::new();
        let tok = q.schedule_cancellable(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(tok));
        assert!(!q.cancel(tok), "double cancel must be absorbed");
        assert_eq!(q.len(), 1);
        // Peek must not report the tombstoned front event.
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), "b")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn cancelling_everything_empties_the_queue() {
        let mut q = EventQueue::new();
        let toks: Vec<u64> = (0..10)
            .map(|i| q.schedule_cancellable(SimTime::from_secs(i), i))
            .collect();
        for t in toks {
            assert!(q.cancel(t));
        }
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
        // The queue stays usable afterwards.
        q.schedule(SimTime::from_secs(20), 99);
        assert_eq!(q.pop(), Some((SimTime::from_secs(20), 99)));
    }

    #[test]
    fn heap_calendar_cancel_matches_wheel_semantics() {
        let mut h = HeapCalendar::new();
        h.insert(SimTime::from_secs(1), 0, "a");
        h.insert(SimTime::from_secs(2), 1, "b");
        h.insert(SimTime::from_secs(3), 2, "c");
        assert!(h.cancel(1));
        assert_eq!(h.len(), 2);
        assert_eq!(h.pop(), Some((SimTime::from_secs(1), "a")));
        assert_eq!(h.peek_time(), Some(SimTime::from_secs(3)));
        assert_eq!(h.pop(), Some((SimTime::from_secs(3), "c")));
        assert!(h.is_empty());
    }

    #[test]
    fn heap_calendar_matches_contract() {
        // The oracle backend honors the same (time, seq) contract.
        let mut h = HeapCalendar::new();
        let t = SimTime::from_secs(1);
        h.insert(t, 1, "b");
        h.insert(t, 0, "a");
        h.insert(SimTime::from_secs(2), 2, "c");
        assert_eq!(h.peek_time(), Some(t));
        assert_eq!(h.len(), 3);
        assert_eq!(h.pop(), Some((t, "a")));
        assert_eq!(h.pop(), Some((t, "b")));
        assert_eq!(h.pop(), Some((SimTime::from_secs(2), "c")));
        assert!(h.is_empty());
    }
}
