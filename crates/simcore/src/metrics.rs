//! Measurement instruments for simulations.
//!
//! * [`SampleStats`] — per-function latency statistics, in one of two
//!   representations: **exact** (every sample retained; arbitrary
//!   percentiles, byte-stable serialization — the default, used by the
//!   figure-repro simulations and all fixed-seed goldens) or
//!   **streaming** (O(1) memory per instrument; mean/min/max moments
//!   plus P² marker estimates of p50/p95/p99 — used by trace replay at
//!   10⁴–10⁶ distinct functions, where retaining samples would grow
//!   without bound).
//! * [`TimeWeightedGauge`] — integrates a piecewise-constant value over
//!   simulated time (container counts, allocated CPU, utilization).
//! * [`TimeSeries`] — timestamped observations for plotting allocation
//!   timelines (Figs. 6, 8, 9).

use crate::time::SimTime;
use lass_queueing::P2Quantile;
use serde::{Deserialize, Error, Map, Serialize, Value};

/// The P² marker estimators of a hot streaming instrument. Boxed and
/// allocated on first record: under a Zipf popularity law most of a
/// million functions see little or no traffic, and cold instruments
/// stay a few dozen bytes.
#[derive(Debug, Clone)]
struct Quants {
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl Quants {
    fn new() -> Box<Self> {
        Box::new(Self {
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        })
    }
}

#[derive(Debug, Clone)]
enum Repr {
    Exact {
        samples: Vec<f64>,
        sorted: bool,
    },
    Streaming {
        count: usize,
        sum: f64,
        min: f64,
        max: f64,
        quants: Option<Box<Quants>>,
    },
}

/// Sample statistics: exact (retained samples) or streaming (bounded).
#[derive(Debug, Clone)]
pub struct SampleStats {
    repr: Repr,
}

impl Default for SampleStats {
    fn default() -> Self {
        Self::new()
    }
}

impl SampleStats {
    /// Empty exact instrument: every sample retained, percentiles exact,
    /// serialization byte-stable (`{"samples": [...]}`).
    pub fn new() -> Self {
        Self {
            repr: Repr::Exact {
                samples: Vec::new(),
                sorted: false,
            },
        }
    }

    /// Empty streaming instrument: O(1) memory; mean/min/max moments and
    /// P² estimates of p50/p95/p99. [`Self::samples`] returns `&[]` and
    /// [`Self::fraction_within`] `None` — callers that need raw samples
    /// must use the exact representation.
    pub fn streaming() -> Self {
        Self {
            repr: Repr::Streaming {
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
                quants: None,
            },
        }
    }

    /// Whether this instrument streams (no retained samples).
    pub fn is_streaming(&self) -> bool {
        matches!(self.repr, Repr::Streaming { .. })
    }

    /// Number of samples retained in memory (0 when streaming) — the
    /// memory-regression probe.
    pub fn retained(&self) -> usize {
        match &self.repr {
            Repr::Exact { samples, .. } => samples.len(),
            Repr::Streaming { .. } => 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        match &mut self.repr {
            Repr::Exact { samples, sorted } => {
                samples.push(x);
                *sorted = false;
            }
            Repr::Streaming {
                count,
                sum,
                min,
                max,
                quants,
            } => {
                *count += 1;
                *sum += x;
                *min = min.min(x);
                *max = max.max(x);
                let q = quants.get_or_insert_with(Quants::new);
                q.p50.observe(x);
                q.p95.observe(x);
                q.p99.observe(x);
            }
        }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        match &self.repr {
            Repr::Exact { samples, .. } => samples.len(),
            Repr::Streaming { count, .. } => *count,
        }
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sample mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        match &self.repr {
            Repr::Exact { samples, .. } => {
                if samples.is_empty() {
                    None
                } else {
                    Some(samples.iter().sum::<f64>() / samples.len() as f64)
                }
            }
            Repr::Streaming { count, sum, .. } => {
                if *count == 0 {
                    None
                } else {
                    Some(sum / *count as f64)
                }
            }
        }
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        match &self.repr {
            Repr::Exact { samples, .. } => samples.iter().copied().reduce(f64::max),
            Repr::Streaming { count, max, .. } => (*count > 0).then_some(*max),
        }
    }

    /// Percentile, `p ∈ [0, 1]`: exact (linear interpolation) for the
    /// exact representation; for streaming, the P² estimate of the
    /// nearest tracked marker (p50 / p95 / p99), with `p = 0` / `p = 1`
    /// served from the tracked min/max.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p));
        match &mut self.repr {
            Repr::Exact { samples, sorted } => {
                if samples.is_empty() {
                    return None;
                }
                if !*sorted {
                    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
                    *sorted = true;
                }
                let s = &samples[..];
                if s.len() == 1 {
                    return Some(s[0]);
                }
                let rank = p * (s.len() - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                Some(if lo == hi {
                    s[lo]
                } else {
                    let w = rank - lo as f64;
                    s[lo] * (1.0 - w) + s[hi] * w
                })
            }
            Repr::Streaming {
                count,
                min,
                max,
                quants,
                ..
            } => {
                if *count == 0 {
                    return None;
                }
                if p == 0.0 {
                    return Some(*min);
                }
                if p == 1.0 {
                    return Some(*max);
                }
                let q = quants.as_ref()?;
                let est = if p <= 0.725 {
                    &q.p50
                } else if p <= 0.97 {
                    &q.p95
                } else {
                    &q.p99
                };
                est.estimate()
            }
        }
    }

    /// Fraction of samples `≤ bound` (`None` when empty **or
    /// streaming** — the streaming representation keeps no sample set to
    /// count over).
    pub fn fraction_within(&self, bound: f64) -> Option<f64> {
        match &self.repr {
            Repr::Exact { samples, .. } => {
                if samples.is_empty() {
                    return None;
                }
                let n = samples.iter().filter(|&&x| x <= bound).count();
                Some(n as f64 / samples.len() as f64)
            }
            Repr::Streaming { .. } => None,
        }
    }

    /// Raw samples (insertion or sorted order, unspecified); empty when
    /// streaming.
    pub fn samples(&self) -> &[f64] {
        match &self.repr {
            Repr::Exact { samples, .. } => samples,
            Repr::Streaming { .. } => &[],
        }
    }
}

// Hand-written (de)serialization: the exact representation must keep the
// `{"samples": [...]}` shape the previous derive emitted — every
// fixed-seed golden hashes the serialized report bytes. Streaming
// serializes its summary (the estimators are not round-trippable).
impl Serialize for SampleStats {
    fn serialize(&self) -> Value {
        match &self.repr {
            Repr::Exact { samples, .. } => {
                let mut m = Map::new();
                m.insert("samples".to_string(), samples.serialize());
                Value::Object(m)
            }
            Repr::Streaming {
                count,
                sum,
                min,
                max,
                quants,
            } => {
                let est = |f: fn(&Quants) -> &P2Quantile| -> Value {
                    quants
                        .as_ref()
                        .and_then(|q| f(q).estimate())
                        .map_or(Value::Null, |v| v.serialize())
                };
                let mut m = Map::new();
                m.insert("count".to_string(), count.serialize());
                if *count == 0 {
                    for k in ["max", "mean", "min", "p50", "p95", "p99"] {
                        m.insert(k.to_string(), Value::Null);
                    }
                } else {
                    m.insert("max".to_string(), max.serialize());
                    m.insert("mean".to_string(), (sum / *count as f64).serialize());
                    m.insert("min".to_string(), min.serialize());
                    m.insert("p50".to_string(), est(|q| &q.p50));
                    m.insert("p95".to_string(), est(|q| &q.p95));
                    m.insert("p99".to_string(), est(|q| &q.p99));
                }
                Value::Object(m)
            }
        }
    }
}

impl Deserialize for SampleStats {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let m = v
            .as_object()
            .ok_or_else(|| Error::custom("SampleStats: expected object"))?;
        match m.get("samples") {
            Some(s) => Ok(Self {
                repr: Repr::Exact {
                    samples: Vec::<f64>::deserialize(s)?,
                    sorted: false,
                },
            }),
            None => Err(Error::custom(
                "SampleStats: streaming summaries are not round-trippable",
            )),
        }
    }
}

/// Integrates a piecewise-constant value over simulated time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeightedGauge {
    start: SimTime,
    last_t: SimTime,
    value: f64,
    integral: f64,
}

impl TimeWeightedGauge {
    /// Gauge starting at `t0` with initial `value`.
    pub fn new(t0: SimTime, value: f64) -> Self {
        Self {
            start: t0,
            last_t: t0,
            value,
            integral: 0.0,
        }
    }

    /// Set the gauge to `value` at time `t` (accumulates the previous value
    /// over `[last, t)`).
    pub fn set(&mut self, t: SimTime, value: f64) {
        debug_assert!(t >= self.last_t, "gauge updated out of order");
        self.integral += self.value * (t.saturating_since(self.last_t)).as_secs_f64();
        self.last_t = t;
        self.value = value;
    }

    /// Current (instantaneous) value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Time-weighted average over `[t0, t]`.
    pub fn average_until(&self, t: SimTime) -> f64 {
        let span = t.saturating_since(self.start).as_secs_f64();
        if span <= 0.0 {
            return self.value;
        }
        let total = self.integral + self.value * t.saturating_since(self.last_t).as_secs_f64();
        total / span
    }

    /// The raw integral `∫ value dt` over `[t0, t]`.
    pub fn integral_until(&self, t: SimTime) -> f64 {
        self.integral + self.value * t.saturating_since(self.last_t).as_secs_f64()
    }
}

/// Accumulates the total time a component spends unavailable.
///
/// Chaos layers flip a site between reachable and unreachable many times
/// over a run (crashes, recoveries, partitions); this instrument sums the
/// closed down-intervals and lets an open interval be closed at the
/// report boundary. Idempotent: repeated `mark_down`/`mark_up` calls in
/// the same state are no-ops, so overlapping fault processes (a crash
/// during a partition, say) can share one clock.
#[derive(Debug, Clone, Default)]
pub struct DowntimeClock {
    total_secs: f64,
    down_since: Option<SimTime>,
}

impl DowntimeClock {
    /// A clock that has never been down.
    pub fn new() -> Self {
        Self::default()
    }

    /// The component became unavailable at `t` (no-op if already down).
    pub fn mark_down(&mut self, t: SimTime) {
        if self.down_since.is_none() {
            self.down_since = Some(t);
        }
    }

    /// The component became available at `t` (no-op if already up).
    pub fn mark_up(&mut self, t: SimTime) {
        if let Some(since) = self.down_since.take() {
            self.total_secs += t.saturating_since(since).as_secs_f64();
        }
    }

    /// Whether the clock is currently in a down interval.
    pub fn is_down(&self) -> bool {
        self.down_since.is_some()
    }

    /// Total downtime in seconds up to `t`, closing any open interval at
    /// `t` for the measurement (without mutating the clock).
    pub fn total_until(&self, t: SimTime) -> f64 {
        match self.down_since {
            Some(since) => self.total_secs + t.saturating_since(since).as_secs_f64(),
            None => self.total_secs,
        }
    }
}

/// A timestamped series of observations, for timeline plots.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append `(t, value)`.
    pub fn push(&mut self, t: SimTime, value: f64) {
        self.points.push((t.as_secs_f64(), value));
    }

    /// All `(seconds, value)` points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last value, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }

    /// Mean of the values between `t0` and `t1` (unweighted across points).
    pub fn mean_between(&self, t0: f64, t1: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|(t, _)| *t >= t0 && *t < t1)
            .map(|(_, v)| *v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_stats_basics() {
        let mut s = SampleStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.percentile(0.5), None);
        for i in 1..=100 {
            s.record(f64::from(i));
        }
        assert_eq!(s.count(), 100);
        assert!((s.mean().unwrap() - 50.5).abs() < 1e-9);
        assert_eq!(s.max().unwrap(), 100.0);
        assert!((s.percentile(0.95).unwrap() - 95.05).abs() < 0.1);
        assert!((s.fraction_within(50.0).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sample_stats_resorts_after_new_samples() {
        let mut s = SampleStats::new();
        s.record(5.0);
        assert_eq!(s.percentile(1.0), Some(5.0));
        s.record(10.0);
        assert_eq!(s.percentile(1.0), Some(10.0));
    }

    #[test]
    fn streaming_stats_bounded_memory_close_estimates() {
        let mut s = SampleStats::streaming();
        assert!(s.is_streaming());
        assert!(s.is_empty());
        assert_eq!(s.percentile(0.95), None);
        for i in 1..=10_000 {
            s.record(f64::from(i));
        }
        // No retained samples, ever.
        assert_eq!(s.retained(), 0);
        assert!(s.samples().is_empty());
        assert_eq!(s.count(), 10_000);
        assert!((s.mean().unwrap() - 5000.5).abs() < 1e-9);
        assert_eq!(s.max(), Some(10_000.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(1.0), Some(10_000.0));
        // P² estimates land near the exact quantiles on a uniform ramp.
        assert!((s.percentile(0.5).unwrap() - 5000.0).abs() < 250.0);
        assert!((s.percentile(0.95).unwrap() - 9500.0).abs() < 250.0);
        assert!((s.percentile(0.99).unwrap() - 9900.0).abs() < 250.0);
        // No sample set to count over.
        assert_eq!(s.fraction_within(5000.0), None);
    }

    #[test]
    fn exact_serialization_shape_is_stable_and_round_trips() {
        use serde::{Deserialize as _, Serialize as _};
        let mut s = SampleStats::new();
        s.record(1.5);
        s.record(0.25);
        // The golden-pinned byte shape.
        assert_eq!(
            serde_json::to_string(&s.serialize()).unwrap(),
            r#"{"samples":[1.5,0.25]}"#
        );
        let back = SampleStats::deserialize(&s.serialize()).unwrap();
        assert_eq!(back.samples(), s.samples());

        let mut t = SampleStats::streaming();
        t.record(2.0);
        let v = t.serialize();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("count").and_then(|c| c.as_f64()), Some(1.0));
        assert_eq!(obj.get("mean").and_then(|c| c.as_f64()), Some(2.0));
        // Streaming summaries don't round-trip.
        assert!(SampleStats::deserialize(&v).is_err());
    }

    #[test]
    fn gauge_integrates_steps() {
        let mut g = TimeWeightedGauge::new(SimTime::ZERO, 2.0);
        g.set(SimTime::from_secs(10), 4.0); // 2.0 for 10s = 20
        g.set(SimTime::from_secs(20), 0.0); // 4.0 for 10s = 40
        let avg = g.average_until(SimTime::from_secs(40)); // 0.0 for 20s
        assert!((avg - 60.0 / 40.0).abs() < 1e-12, "avg={avg}");
        assert!((g.integral_until(SimTime::from_secs(40)) - 60.0).abs() < 1e-12);
        assert_eq!(g.current(), 0.0);
    }

    #[test]
    fn gauge_average_at_start_is_value() {
        let g = TimeWeightedGauge::new(SimTime::from_secs(5), 7.0);
        assert_eq!(g.average_until(SimTime::from_secs(5)), 7.0);
    }

    #[test]
    fn downtime_clock_accumulates_and_is_idempotent() {
        let mut c = DowntimeClock::new();
        assert!(!c.is_down());
        assert_eq!(c.total_until(SimTime::from_secs(100)), 0.0);
        c.mark_down(SimTime::from_secs(10));
        c.mark_down(SimTime::from_secs(12)); // no-op: already down
        assert!(c.is_down());
        // Open interval measured without closing it.
        assert!((c.total_until(SimTime::from_secs(15)) - 5.0).abs() < 1e-12);
        c.mark_up(SimTime::from_secs(20));
        c.mark_up(SimTime::from_secs(25)); // no-op: already up
        assert!(!c.is_down());
        assert!((c.total_until(SimTime::from_secs(100)) - 10.0).abs() < 1e-12);
        c.mark_down(SimTime::from_secs(90));
        assert!((c.total_until(SimTime::from_secs(100)) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn timeseries_push_and_query() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        ts.push(SimTime::from_secs(1), 10.0);
        ts.push(SimTime::from_secs(2), 20.0);
        ts.push(SimTime::from_secs(3), 30.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.last(), Some((3.0, 30.0)));
        assert_eq!(ts.mean_between(1.5, 3.5), Some(25.0));
        assert_eq!(ts.mean_between(10.0, 20.0), None);
    }
}
