//! Measurement instruments for simulations.
//!
//! * [`SampleStats`] — exact statistics over recorded samples (mean, max,
//!   arbitrary percentiles) — used for waiting/response times.
//! * [`TimeWeightedGauge`] — integrates a piecewise-constant value over
//!   simulated time (container counts, allocated CPU, utilization).
//! * [`TimeSeries`] — timestamped observations for plotting allocation
//!   timelines (Figs. 6, 8, 9).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Exact sample statistics with deferred sorting.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SampleStats {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: bool,
}

impl SampleStats {
    /// Empty instrument.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// Exact percentile with linear interpolation, `p ∈ [0, 1]`.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p));
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        let s = &self.samples;
        if s.len() == 1 {
            return Some(s[0]);
        }
        let rank = p * (s.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        Some(if lo == hi {
            s[lo]
        } else {
            let w = rank - lo as f64;
            s[lo] * (1.0 - w) + s[hi] * w
        })
    }

    /// Fraction of samples `≤ bound` (`None` when empty).
    pub fn fraction_within(&self, bound: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let n = self.samples.iter().filter(|&&x| x <= bound).count();
        Some(n as f64 / self.samples.len() as f64)
    }

    /// Raw samples (insertion or sorted order, unspecified).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Integrates a piecewise-constant value over simulated time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeightedGauge {
    start: SimTime,
    last_t: SimTime,
    value: f64,
    integral: f64,
}

impl TimeWeightedGauge {
    /// Gauge starting at `t0` with initial `value`.
    pub fn new(t0: SimTime, value: f64) -> Self {
        Self {
            start: t0,
            last_t: t0,
            value,
            integral: 0.0,
        }
    }

    /// Set the gauge to `value` at time `t` (accumulates the previous value
    /// over `[last, t)`).
    pub fn set(&mut self, t: SimTime, value: f64) {
        debug_assert!(t >= self.last_t, "gauge updated out of order");
        self.integral += self.value * (t.saturating_since(self.last_t)).as_secs_f64();
        self.last_t = t;
        self.value = value;
    }

    /// Current (instantaneous) value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Time-weighted average over `[t0, t]`.
    pub fn average_until(&self, t: SimTime) -> f64 {
        let span = t.saturating_since(self.start).as_secs_f64();
        if span <= 0.0 {
            return self.value;
        }
        let total = self.integral + self.value * t.saturating_since(self.last_t).as_secs_f64();
        total / span
    }

    /// The raw integral `∫ value dt` over `[t0, t]`.
    pub fn integral_until(&self, t: SimTime) -> f64 {
        self.integral + self.value * t.saturating_since(self.last_t).as_secs_f64()
    }
}

/// Accumulates the total time a component spends unavailable.
///
/// Chaos layers flip a site between reachable and unreachable many times
/// over a run (crashes, recoveries, partitions); this instrument sums the
/// closed down-intervals and lets an open interval be closed at the
/// report boundary. Idempotent: repeated `mark_down`/`mark_up` calls in
/// the same state are no-ops, so overlapping fault processes (a crash
/// during a partition, say) can share one clock.
#[derive(Debug, Clone, Default)]
pub struct DowntimeClock {
    total_secs: f64,
    down_since: Option<SimTime>,
}

impl DowntimeClock {
    /// A clock that has never been down.
    pub fn new() -> Self {
        Self::default()
    }

    /// The component became unavailable at `t` (no-op if already down).
    pub fn mark_down(&mut self, t: SimTime) {
        if self.down_since.is_none() {
            self.down_since = Some(t);
        }
    }

    /// The component became available at `t` (no-op if already up).
    pub fn mark_up(&mut self, t: SimTime) {
        if let Some(since) = self.down_since.take() {
            self.total_secs += t.saturating_since(since).as_secs_f64();
        }
    }

    /// Whether the clock is currently in a down interval.
    pub fn is_down(&self) -> bool {
        self.down_since.is_some()
    }

    /// Total downtime in seconds up to `t`, closing any open interval at
    /// `t` for the measurement (without mutating the clock).
    pub fn total_until(&self, t: SimTime) -> f64 {
        match self.down_since {
            Some(since) => self.total_secs + t.saturating_since(since).as_secs_f64(),
            None => self.total_secs,
        }
    }
}

/// A timestamped series of observations, for timeline plots.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append `(t, value)`.
    pub fn push(&mut self, t: SimTime, value: f64) {
        self.points.push((t.as_secs_f64(), value));
    }

    /// All `(seconds, value)` points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last value, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }

    /// Mean of the values between `t0` and `t1` (unweighted across points).
    pub fn mean_between(&self, t0: f64, t1: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|(t, _)| *t >= t0 && *t < t1)
            .map(|(_, v)| *v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_stats_basics() {
        let mut s = SampleStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.percentile(0.5), None);
        for i in 1..=100 {
            s.record(f64::from(i));
        }
        assert_eq!(s.count(), 100);
        assert!((s.mean().unwrap() - 50.5).abs() < 1e-9);
        assert_eq!(s.max().unwrap(), 100.0);
        assert!((s.percentile(0.95).unwrap() - 95.05).abs() < 0.1);
        assert!((s.fraction_within(50.0).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sample_stats_resorts_after_new_samples() {
        let mut s = SampleStats::new();
        s.record(5.0);
        assert_eq!(s.percentile(1.0), Some(5.0));
        s.record(10.0);
        assert_eq!(s.percentile(1.0), Some(10.0));
    }

    #[test]
    fn gauge_integrates_steps() {
        let mut g = TimeWeightedGauge::new(SimTime::ZERO, 2.0);
        g.set(SimTime::from_secs(10), 4.0); // 2.0 for 10s = 20
        g.set(SimTime::from_secs(20), 0.0); // 4.0 for 10s = 40
        let avg = g.average_until(SimTime::from_secs(40)); // 0.0 for 20s
        assert!((avg - 60.0 / 40.0).abs() < 1e-12, "avg={avg}");
        assert!((g.integral_until(SimTime::from_secs(40)) - 60.0).abs() < 1e-12);
        assert_eq!(g.current(), 0.0);
    }

    #[test]
    fn gauge_average_at_start_is_value() {
        let g = TimeWeightedGauge::new(SimTime::from_secs(5), 7.0);
        assert_eq!(g.average_until(SimTime::from_secs(5)), 7.0);
    }

    #[test]
    fn downtime_clock_accumulates_and_is_idempotent() {
        let mut c = DowntimeClock::new();
        assert!(!c.is_down());
        assert_eq!(c.total_until(SimTime::from_secs(100)), 0.0);
        c.mark_down(SimTime::from_secs(10));
        c.mark_down(SimTime::from_secs(12)); // no-op: already down
        assert!(c.is_down());
        // Open interval measured without closing it.
        assert!((c.total_until(SimTime::from_secs(15)) - 5.0).abs() < 1e-12);
        c.mark_up(SimTime::from_secs(20));
        c.mark_up(SimTime::from_secs(25)); // no-op: already up
        assert!(!c.is_down());
        assert!((c.total_until(SimTime::from_secs(100)) - 10.0).abs() < 1e-12);
        c.mark_down(SimTime::from_secs(90));
        assert!((c.total_until(SimTime::from_secs(100)) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn timeseries_push_and_query() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        ts.push(SimTime::from_secs(1), 10.0);
        ts.push(SimTime::from_secs(2), 20.0);
        ts.push(SimTime::from_secs(3), 30.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.last(), Some((3.0, 30.0)));
        assert_eq!(ts.mean_between(1.5, 3.5), Some(25.0));
        assert_eq!(ts.mean_between(10.0, 20.0), None);
    }
}
