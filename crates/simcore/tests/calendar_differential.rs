//! Differential test: the timer-wheel calendar against the binary-heap
//! oracle.
//!
//! Both backends promise the same observable contract — pop earliest
//! `(time, seq)` first — and every fixed-seed golden in the workspace
//! leans on it. This harness drives [`TimerWheel`] and [`HeapCalendar`]
//! with identical operation sequences (schedules interleaved with pops,
//! i.e. schedule-during-pop) and requires bit-identical pop streams.
//!
//! Offset scales are chosen to exercise every wheel path: zero offsets
//! (same-instant ties through the ready heap), sub-slot offsets, every
//! wheel level, and >2⁴⁸ ns offsets that land in the overflow map.

use lass_simcore::{HeapCalendar, SimTime, TimerWheel};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event `delta` ns after the last popped timestamp.
    Schedule(u64),
    /// Pop one event from both calendars and compare.
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Pop),
        Just(Op::Pop),
        // Same-instant tie with whatever else lands at `now`.
        Just(Op::Schedule(0)),
        // Within the current level-0 slot (~4 µs).
        (1u64..4096).prop_map(Op::Schedule),
        // Level 0 across slots.
        (4096u64..1 << 18).prop_map(Op::Schedule),
        // Mid levels (microseconds to minutes).
        ((1u64 << 18)..(1 << 42)).prop_map(Op::Schedule),
        // Top level and the far future: beyond the 2^48 ns horizon
        // these go through the overflow map.
        ((1u64 << 42)..(1 << 52)).prop_map(Op::Schedule),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn wheel_matches_heap_oracle(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut wheel = TimerWheel::new();
        let mut heap = HeapCalendar::new();
        let mut seq = 0u64;
        let mut now = 0u64; // timestamp of the last pop, like EventQueue
        for op in ops {
            match op {
                Op::Schedule(delta) => {
                    let at = SimTime(now.saturating_add(delta));
                    wheel.insert(at, seq, seq);
                    heap.insert(at, seq, seq);
                    seq += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    let (w, h) = (wheel.pop(), heap.pop());
                    prop_assert_eq!(w, h, "pop diverged after seq {}", seq);
                    if let Some((t, _)) = w {
                        now = t.0;
                    }
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain the rest: the full residual streams must match too.
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }
}

/// Directed regression: a burst of same-instant events scheduled *while*
/// draining that instant (the ready-heap path) keeps insertion order.
#[test]
fn schedule_during_pop_preserves_tie_order() {
    let mut wheel = TimerWheel::new();
    let mut heap = HeapCalendar::new();
    let t = SimTime(1 << 21);
    for seq in 0..8u64 {
        wheel.insert(t, seq, seq);
        heap.insert(t, seq, seq);
    }
    for seq in 8u64..16 {
        assert_eq!(wheel.pop(), heap.pop());
        // New work at the very same instant, mid-drain.
        wheel.insert(t, seq, seq);
        heap.insert(t, seq, seq);
    }
    loop {
        let (w, h) = (wheel.pop(), heap.pop());
        assert_eq!(w, h);
        if w.is_none() {
            break;
        }
    }
}
