//! Differential test: the timer-wheel calendar against the binary-heap
//! oracle.
//!
//! Both backends promise the same observable contract — pop earliest
//! `(time, seq)` first — and every fixed-seed golden in the workspace
//! leans on it. This harness drives [`TimerWheel`] and [`HeapCalendar`]
//! with identical operation sequences (schedules interleaved with pops,
//! i.e. schedule-during-pop) and requires bit-identical pop streams.
//!
//! Offset scales are chosen to exercise every wheel path: zero offsets
//! (same-instant ties through the ready heap), sub-slot offsets, every
//! wheel level, and >2⁴⁸ ns offsets that land in the overflow map.

use lass_simcore::{HeapCalendar, RequestTable, SimTime, TimerWheel};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event `delta` ns after the last popped timestamp.
    Schedule(u64),
    /// Pop one event from both calendars and compare.
    Pop,
    /// Cancel a still-pending event (picked by index into the live
    /// set) on both calendars; both must acknowledge, and a second
    /// cancel of the same seq must be absorbed identically.
    Cancel(usize),
    /// Cancel a pending event and immediately reschedule its payload
    /// under a fresh seq `delta` ns after the last popped timestamp —
    /// the hedge loser-requeue pattern.
    Reschedule(usize, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Pop),
        Just(Op::Pop),
        // Same-instant tie with whatever else lands at `now`.
        Just(Op::Schedule(0)),
        // Within the current level-0 slot (~4 µs).
        (1u64..4096).prop_map(Op::Schedule),
        // Level 0 across slots.
        (4096u64..1 << 18).prop_map(Op::Schedule),
        // Mid levels (microseconds to minutes).
        ((1u64 << 18)..(1 << 42)).prop_map(Op::Schedule),
        // Top level and the far future: beyond the 2^48 ns horizon
        // these go through the overflow map.
        ((1u64 << 42)..(1 << 52)).prop_map(Op::Schedule),
        (0usize..1 << 16).prop_map(Op::Cancel),
        (0usize..1 << 16, 0u64..1 << 44).prop_map(|(i, d)| Op::Reschedule(i, d)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn wheel_matches_heap_oracle(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut wheel = TimerWheel::new();
        let mut heap = HeapCalendar::new();
        let mut seq = 0u64;
        let mut now = 0u64; // timestamp of the last pop, like EventQueue
        // Seqs scheduled but not yet popped or cancelled: both cancel
        // contracts require a pending seq, so ops only pick from here.
        let mut live: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Schedule(delta) => {
                    let at = SimTime(now.saturating_add(delta));
                    wheel.insert(at, seq, seq);
                    heap.insert(at, seq, seq);
                    live.push(seq);
                    seq += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    let (w, h) = (wheel.pop(), heap.pop());
                    prop_assert_eq!(w, h, "pop diverged after seq {}", seq);
                    if let Some((t, e)) = w {
                        now = t.0;
                        live.retain(|&s| s != e);
                    }
                }
                Op::Cancel(idx) => {
                    if live.is_empty() {
                        continue;
                    }
                    let victim = live.swap_remove(idx % live.len());
                    prop_assert!(wheel.cancel(victim));
                    prop_assert!(heap.cancel(victim));
                    prop_assert!(!wheel.cancel(victim), "double cancel absorbed");
                    prop_assert!(!heap.cancel(victim), "double cancel absorbed");
                }
                Op::Reschedule(idx, delta) => {
                    if live.is_empty() {
                        continue;
                    }
                    let victim = live.swap_remove(idx % live.len());
                    prop_assert!(wheel.cancel(victim));
                    prop_assert!(heap.cancel(victim));
                    let at = SimTime(now.saturating_add(delta));
                    wheel.insert(at, seq, seq);
                    heap.insert(at, seq, seq);
                    live.push(seq);
                    seq += 1;
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        // Drain the rest: the full residual streams must match too.
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            prop_assert_eq!(w, h);
            if w.is_none() {
                break;
            }
        }
    }
}

/// Directed regression: cancelling tied events *while* draining their
/// instant (tombstones already staged in the wheel's ready heap) keeps
/// both backends on the same pop stream — the first-response-wins path
/// cancels a loser at exactly the instant the winner's completion pops.
#[test]
fn cancel_during_pop_matches_heap_oracle() {
    let mut wheel = TimerWheel::new();
    let mut heap = HeapCalendar::new();
    let t = SimTime(1 << 21);
    for seq in 0..8u64 {
        wheel.insert(t, seq, seq);
        heap.insert(t, seq, seq);
    }
    // Pop one of the tie burst, then cancel two mid-drain: one already
    // staged (seq 1) and the last of the burst (seq 7).
    assert_eq!(wheel.pop(), heap.pop());
    for victim in [1u64, 7] {
        assert!(wheel.cancel(victim));
        assert!(heap.cancel(victim));
    }
    assert_eq!(wheel.peek_time(), heap.peek_time());
    // Reschedule one victim's payload at the same instant under a new
    // seq, mid-drain: it must still come out after the survivors.
    wheel.insert(t, 8, 8);
    heap.insert(t, 8, 8);
    let mut drained = Vec::new();
    loop {
        let (w, h) = (wheel.pop(), heap.pop());
        assert_eq!(w, h);
        match w {
            Some((_, e)) => drained.push(e),
            None => break,
        }
    }
    assert_eq!(drained, vec![2, 3, 4, 5, 6, 8]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A slot token taken before a request retires must go stale the
    /// moment the slot is reused — however many inserts and removes
    /// happen in between. This is the guard that makes a late hedge
    /// cancel (or timer) a no-op instead of killing an unrelated
    /// request that recycled the slot.
    #[test]
    fn stale_generation_cancel_never_fires_after_slot_reuse(
        pre in 1usize..16,
        victim_pick in 0usize..16,
        churn in prop::collection::vec(0u8..4, 1..64),
    ) {
        let mut table = RequestTable::new();
        let mut next_rid = 0u64;
        let mut resident: Vec<u64> = Vec::new();
        for _ in 0..pre {
            table.insert(next_rid, 0, SimTime(next_rid));
            resident.push(next_rid);
            next_rid += 1;
        }
        let victim = resident.swap_remove(victim_pick % resident.len());
        let token = table.slot_token(victim).unwrap();
        prop_assert!(table.token_live(victim, token));

        // Retire the victim, then churn the table: its slot is on top
        // of the free list, so the very next insert recycles it.
        table.remove(victim);
        prop_assert!(!table.token_live(victim, token), "retired yet live");
        let successor = next_rid;
        for (i, op) in churn.iter().enumerate() {
            if *op == 3 && !resident.is_empty() {
                let rid = resident.swap_remove(i % resident.len());
                table.remove(rid);
            } else {
                table.insert(next_rid, 1, SimTime(next_rid));
                resident.push(next_rid);
                next_rid += 1;
            }
            // The stale token must stay dead at every point of the
            // churn — a late cancel can land at any time.
            prop_assert!(!table.token_live(victim, token));
        }

        // The successor recycled the victim's slot under a bumped
        // generation: its token is live, distinct, and the victim's
        // stale token never validates against either rid.
        if let Some(fresh) = table.slot_token(successor) {
            prop_assert!(fresh != token, "recycled slot kept the stale generation");
            prop_assert!(table.token_live(successor, fresh));
            prop_assert!(!table.token_live(successor, token));
        }
        prop_assert!(table.get(victim).is_none());
    }
}

/// Directed regression: a burst of same-instant events scheduled *while*
/// draining that instant (the ready-heap path) keeps insertion order.
#[test]
fn schedule_during_pop_preserves_tie_order() {
    let mut wheel = TimerWheel::new();
    let mut heap = HeapCalendar::new();
    let t = SimTime(1 << 21);
    for seq in 0..8u64 {
        wheel.insert(t, seq, seq);
        heap.insert(t, seq, seq);
    }
    for seq in 8u64..16 {
        assert_eq!(wheel.pop(), heap.pop());
        // New work at the very same instant, mid-drain.
        wheel.insert(t, seq, seq);
        heap.insert(t, seq, seq);
    }
    loop {
        let (w, h) = (wheel.pop(), heap.pop());
        assert_eq!(w, h);
        if w.is_none() {
            break;
        }
    }
}
