//! The paper's function catalog (Table 1).
//!
//! Six realistic edge workloads plus a configurable micro-benchmark. The
//! standard container sizes come verbatim from Table 1. Base service times
//! are **calibrated constants**: the paper does not tabulate them, so we
//! choose values consistent with its experiments (the micro-benchmark is
//! explicitly configured to 100/200 ms in §6.2; MobileNet runs at single-
//! digit req/s in Fig. 6; the lighter functions are faster). Demand
//! fractions encode Fig. 7: ~30 % slack for most functions, none for
//! MobileNet.

use crate::servicetime::ServiceModel;
use lass_cluster::{BwMbps, CpuMilli, Dimension, MemMib, ResourceVec};
use lass_simcore::SimDuration;
use serde::{Deserialize, Error, Serialize, Value};

/// The workload class of a function: which resource dimension its
/// containers bind on. The class maps the Table 1 `(cpu, mem)` sizing
/// into a full demand vector — `compute` and `memory` functions reserve
/// no bandwidth (the historical accounting, byte-for-byte), while `io`
/// functions reserve NIC bandwidth proportional to their CPU size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkloadClass {
    /// CPU-bound (DNN inference, crypto): binds on cpu. The default —
    /// every pre-class function behaves exactly as before.
    #[default]
    Compute,
    /// Memory-bound (in-memory caches, large-model residency): binds on
    /// the memory dimension.
    Memory,
    /// I/O-bound (streaming, object-store shuffles): additionally
    /// reserves NIC bandwidth, 1 Mbps per 10 milli-vCPU of standard
    /// size.
    Io,
}

impl WorkloadClass {
    /// Stable lowercase name (scenario JSON, report columns).
    pub fn as_str(self) -> &'static str {
        match self {
            WorkloadClass::Compute => "compute",
            WorkloadClass::Memory => "memory",
            WorkloadClass::Io => "io",
        }
    }

    /// Parse the scenario-JSON name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "compute" => Some(WorkloadClass::Compute),
            "memory" => Some(WorkloadClass::Memory),
            "io" => Some(WorkloadClass::Io),
            _ => None,
        }
    }

    /// The per-container demand vector for a function of this class
    /// sized `(cpu, mem)`. `compute` and `memory` demand zero bandwidth
    /// — identical node accounting to the pre-vector code; `io` adds
    /// 1 Mbps per 10 milli-vCPU.
    pub fn demand(self, cpu: CpuMilli, mem: MemMib) -> ResourceVec {
        let bandwidth = match self {
            WorkloadClass::Compute | WorkloadClass::Memory => BwMbps::ZERO,
            WorkloadClass::Io => BwMbps(cpu.0 / 10),
        };
        ResourceVec::new(cpu, mem, bandwidth)
    }

    /// The dimension a container of this class binds on first — what
    /// the planner router scores headroom against.
    pub fn binding(self) -> Dimension {
        match self {
            WorkloadClass::Compute => Dimension::Cpu,
            WorkloadClass::Memory => Dimension::Mem,
            WorkloadClass::Io => Dimension::Bandwidth,
        }
    }
}

impl Serialize for WorkloadClass {
    fn serialize(&self) -> Value {
        Value::String(self.as_str().to_owned())
    }
}

impl Deserialize for WorkloadClass {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v.as_str() {
            Some(s) => WorkloadClass::parse(s).ok_or_else(|| {
                Error::custom(format!(
                    "unknown workload class {s:?} (expected \"compute\", \"memory\", or \"io\")"
                ))
            }),
            None => Err(Error::custom("workload class must be a string")),
        }
    }
}

/// A deployable serverless function: identity, standard container size
/// (Table 1), service-time model and cold-start cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// Human-readable name.
    pub name: String,
    /// Implementation language(s), as listed in Table 1.
    pub languages: String,
    /// Standard CPU allocation.
    pub standard_cpu: CpuMilli,
    /// Standard memory allocation.
    pub standard_mem: MemMib,
    /// Workload class (defaults to `compute`, the historical behavior).
    #[serde(default)]
    pub class: WorkloadClass,
    /// Service-time response to deflation.
    pub service: ServiceModel,
    /// Container cold-start latency.
    pub cold_start: SimDuration,
}

impl FunctionSpec {
    /// Convenience: service rate at the standard size (req/s).
    pub fn standard_rate(&self) -> f64 {
        self.service.service_rate(0.0)
    }

    /// The standard-size demand vector (class-dependent bandwidth).
    pub fn standard_demand(&self) -> ResourceVec {
        self.class.demand(self.standard_cpu, self.standard_mem)
    }
}

/// The configurable micro-benchmark (Table 1: Python, 0.4 vCPU + 256 MB).
/// `service_time` is the mean execution time in seconds — §6.2 uses 100 ms
/// (μ=10) and 200 ms (μ=5).
pub fn micro_benchmark(service_time: f64) -> FunctionSpec {
    FunctionSpec {
        name: "micro-benchmark".into(),
        languages: "Python".into(),
        standard_cpu: CpuMilli::from_cores(0.4),
        standard_mem: MemMib(256),
        class: WorkloadClass::Compute,
        service: ServiceModel::exponential(service_time, 0.7),
        cold_start: SimDuration::from_millis(400),
    }
}

/// MobileNet v2 DNN inference (Table 1: Python, 2 vCPU + 1024 MB). The
/// paper notes it saturates its allocation ("little headroom … close to
/// 100 % CPU utilization inside the container", §6.5).
pub fn mobilenet_v2() -> FunctionSpec {
    FunctionSpec {
        name: "MobileNet v2".into(),
        languages: "Python".into(),
        standard_cpu: CpuMilli::from_cores(2.0),
        standard_mem: MemMib(1024),
        class: WorkloadClass::Compute,
        service: ServiceModel::exponential(0.25, 0.98),
        cold_start: SimDuration::from_millis(1000),
    }
}

/// ShuffleNet v2 DNN inference (Table 1: Python, 1 vCPU + 512 MB).
pub fn shufflenet_v2() -> FunctionSpec {
    FunctionSpec {
        name: "ShuffleNet v2".into(),
        languages: "Python".into(),
        standard_cpu: CpuMilli::from_cores(1.0),
        standard_mem: MemMib(512),
        class: WorkloadClass::Compute,
        service: ServiceModel::exponential(0.12, 0.72),
        cold_start: SimDuration::from_millis(800),
    }
}

/// SqueezeNet DNN inference (Table 1: Python, 1 vCPU + 512 MB).
pub fn squeezenet() -> FunctionSpec {
    FunctionSpec {
        name: "SqueezeNet".into(),
        languages: "Python".into(),
        standard_cpu: CpuMilli::from_cores(1.0),
        standard_mem: MemMib(512),
        class: WorkloadClass::Compute,
        service: ServiceModel::exponential(0.10, 0.70),
        cold_start: SimDuration::from_millis(800),
    }
}

/// BinaryAlert malicious-file detection (Table 1: Python, 0.5 vCPU +
/// 256 MB).
pub fn binary_alert() -> FunctionSpec {
    FunctionSpec {
        name: "BinaryAlert".into(),
        languages: "Python".into(),
        standard_cpu: CpuMilli::from_cores(0.5),
        standard_mem: MemMib(256),
        class: WorkloadClass::Compute,
        service: ServiceModel::exponential(0.05, 0.70),
        cold_start: SimDuration::from_millis(500),
    }
}

/// Geofencing alerts (Table 1: JavaScript, 0.3 vCPU + 128 MB).
pub fn geofence() -> FunctionSpec {
    FunctionSpec {
        name: "GeoFence".into(),
        languages: "JavaScript".into(),
        standard_cpu: CpuMilli::from_cores(0.3),
        standard_mem: MemMib(128),
        class: WorkloadClass::Compute,
        service: ServiceModel::exponential(0.02, 0.65),
        cold_start: SimDuration::from_millis(300),
    }
}

/// Image resizing (Table 1: JavaScript + WASM (C), 0.8 vCPU + 256 MB).
pub fn image_resizer() -> FunctionSpec {
    FunctionSpec {
        name: "Image Resizer".into(),
        languages: "JavaScript, WASM (C)".into(),
        standard_cpu: CpuMilli::from_cores(0.8),
        standard_mem: MemMib(256),
        class: WorkloadClass::Compute,
        service: ServiceModel::exponential(0.06, 0.70),
        cold_start: SimDuration::from_millis(400),
    }
}

/// The six realistic functions (everything in Table 1 except the
/// micro-benchmark), in the table's order.
pub fn standard_catalog() -> Vec<FunctionSpec> {
    vec![
        mobilenet_v2(),
        shufflenet_v2(),
        squeezenet(),
        binary_alert(),
        geofence(),
        image_resizer(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_sizes_match_paper() {
        let mb = micro_benchmark(0.1);
        assert_eq!(mb.standard_cpu, CpuMilli(400));
        assert_eq!(mb.standard_mem, MemMib(256));
        assert_eq!(mobilenet_v2().standard_cpu, CpuMilli(2000));
        assert_eq!(mobilenet_v2().standard_mem, MemMib(1024));
        assert_eq!(shufflenet_v2().standard_cpu, CpuMilli(1000));
        assert_eq!(shufflenet_v2().standard_mem, MemMib(512));
        assert_eq!(squeezenet().standard_cpu, CpuMilli(1000));
        assert_eq!(squeezenet().standard_mem, MemMib(512));
        assert_eq!(binary_alert().standard_cpu, CpuMilli(500));
        assert_eq!(binary_alert().standard_mem, MemMib(256));
        assert_eq!(geofence().standard_cpu, CpuMilli(300));
        assert_eq!(geofence().standard_mem, MemMib(128));
        assert_eq!(image_resizer().standard_cpu, CpuMilli(800));
        assert_eq!(image_resizer().standard_mem, MemMib(256));
    }

    #[test]
    fn micro_benchmark_is_configurable() {
        assert!((micro_benchmark(0.1).standard_rate() - 10.0).abs() < 1e-9);
        assert!((micro_benchmark(0.2).standard_rate() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mobilenet_has_no_slack_others_do() {
        assert!(mobilenet_v2().service.slack() < 0.05);
        for f in [
            shufflenet_v2(),
            squeezenet(),
            binary_alert(),
            geofence(),
            image_resizer(),
        ] {
            assert!(
                f.service.slack() >= 0.25,
                "{} should have ~30% slack",
                f.name
            );
        }
    }

    #[test]
    fn catalog_has_six_functions() {
        let cat = standard_catalog();
        assert_eq!(cat.len(), 6);
        let names: Vec<&str> = cat.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"MobileNet v2"));
        assert!(names.contains(&"GeoFence"));
    }

    #[test]
    fn dnns_are_slower_than_lightweight_functions() {
        assert!(mobilenet_v2().service.base_time > geofence().service.base_time);
        assert!(squeezenet().service.base_time > binary_alert().service.base_time);
    }

    #[test]
    fn class_round_trips_and_defaults_to_compute() {
        for c in [
            WorkloadClass::Compute,
            WorkloadClass::Memory,
            WorkloadClass::Io,
        ] {
            assert_eq!(WorkloadClass::parse(c.as_str()), Some(c));
            let json = serde_json::to_string(&c).unwrap();
            let back: WorkloadClass = serde_json::from_str(&json).unwrap();
            assert_eq!(back, c);
        }
        assert_eq!(WorkloadClass::default(), WorkloadClass::Compute);
        assert!(WorkloadClass::parse("gpu").is_none());
        // Every catalog function is compute-class (the paper's Table 1).
        for f in standard_catalog() {
            assert_eq!(f.class, WorkloadClass::Compute);
        }
    }

    #[test]
    fn class_demand_vectors_bind_where_expected() {
        use lass_cluster::{BwMbps, Dimension, ResourceVec};
        let cpu = CpuMilli(500);
        let mem = MemMib(256);
        assert_eq!(
            WorkloadClass::Compute.demand(cpu, mem),
            ResourceVec::cpu_mem(cpu, mem),
            "compute reserves no bandwidth (historical accounting)"
        );
        assert_eq!(
            WorkloadClass::Memory.demand(cpu, mem),
            ResourceVec::cpu_mem(cpu, mem)
        );
        assert_eq!(
            WorkloadClass::Io.demand(cpu, mem),
            ResourceVec::new(cpu, mem, BwMbps(50))
        );
        assert_eq!(WorkloadClass::Compute.binding(), Dimension::Cpu);
        assert_eq!(WorkloadClass::Memory.binding(), Dimension::Mem);
        assert_eq!(WorkloadClass::Io.binding(), Dimension::Bandwidth);
    }

    #[test]
    fn function_spec_class_defaults_under_serde() {
        // A spec JSON without a `class` key deserializes to compute and
        // produces the historical zero-bandwidth demand vector.
        let spec = micro_benchmark(0.1);
        let json = serde_json::to_string(&spec).unwrap();
        let back: FunctionSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.class, WorkloadClass::Compute);
        assert_eq!(
            spec.standard_demand(),
            lass_cluster::ResourceVec::cpu_mem(spec.standard_cpu, spec.standard_mem)
        );
    }
}
