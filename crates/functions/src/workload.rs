//! Workload specifications — a declarative layer over the arrival
//! processes in `lass-simcore`, matching the paper's IoT workload
//! generator (§6.1): static rate, discrete changes, continuous change,
//! and per-minute trace replay.

use lass_simcore::{
    ArrivalProcess, ModulatedPoisson, PerMinuteTrace, PiecewiseConstantPoisson, SimTime,
    StaticPoisson,
};
use serde::{Deserialize, Serialize};

/// A declarative workload description for one function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Constant arrival rate (req/s) for `duration` seconds.
    Static {
        /// Arrival rate in requests/second.
        rate: f64,
        /// Length of the workload in seconds.
        duration: f64,
    },
    /// Piecewise-constant rate: `(start_secs, rate)` breakpoints (first
    /// must be at 0) for `duration` seconds — the "discrete change" mode.
    Steps {
        /// `(start time in seconds, rate)` breakpoints.
        steps: Vec<(f64, f64)>,
        /// Length of the workload in seconds.
        duration: f64,
    },
    /// Linear ramp from `from` to `to` req/s over `duration` seconds — the
    /// "continuous change" mode.
    Ramp {
        /// Initial rate (req/s).
        from: f64,
        /// Final rate (req/s).
        to: f64,
        /// Length of the ramp in seconds.
        duration: f64,
    },
    /// Per-minute invocation counts (Azure trace format, §6.7).
    Trace {
        /// Invocations in each successive minute.
        per_minute: Vec<u64>,
    },
}

impl WorkloadSpec {
    /// Check the spec before building: rates must be finite and
    /// non-negative, durations positive, step breakpoints well-formed.
    /// [`WorkloadSpec::build`] panics on these conditions; callers fed
    /// from external input (scenario JSON) should validate first.
    pub fn validate(&self) -> Result<(), String> {
        let ok_rate = |r: f64| r.is_finite() && r >= 0.0;
        match self {
            WorkloadSpec::Static { rate, duration } => {
                if !ok_rate(*rate) {
                    return Err(format!("Static workload rate must be >= 0, got {rate}"));
                }
                if !(duration.is_finite() && *duration > 0.0) {
                    return Err(format!(
                        "Static workload duration must be > 0, got {duration}"
                    ));
                }
            }
            WorkloadSpec::Steps { steps, duration } => {
                if steps.is_empty() {
                    return Err("Steps workload needs at least one breakpoint".into());
                }
                if steps[0].0 != 0.0 {
                    return Err("Steps workload must start with a breakpoint at t = 0".into());
                }
                for w in steps.windows(2) {
                    if w[0].0 >= w[1].0 {
                        return Err("Steps breakpoints must be strictly increasing".into());
                    }
                }
                if let Some(&(t, r)) = steps.iter().find(|&&(t, r)| !ok_rate(r) || !t.is_finite()) {
                    return Err(format!("bad Steps breakpoint ({t}, {r})"));
                }
                if !(duration.is_finite() && *duration > 0.0) {
                    return Err(format!(
                        "Steps workload duration must be > 0, got {duration}"
                    ));
                }
            }
            WorkloadSpec::Ramp { from, to, duration } => {
                if !ok_rate(*from) || !ok_rate(*to) {
                    return Err(format!("Ramp rates must be >= 0, got {from} -> {to}"));
                }
                if !(duration.is_finite() && *duration > 0.0) {
                    return Err(format!(
                        "Ramp workload duration must be > 0, got {duration}"
                    ));
                }
            }
            WorkloadSpec::Trace { per_minute } => {
                if per_minute.is_empty() {
                    return Err("Trace workload needs at least one minute of counts".into());
                }
            }
        }
        Ok(())
    }

    /// Materialize the arrival process.
    pub fn build(&self) -> Box<dyn ArrivalProcess + Send> {
        match self {
            WorkloadSpec::Static { rate, duration } => Box::new(StaticPoisson::until(
                *rate,
                SimTime::from_secs_f64(*duration),
            )),
            WorkloadSpec::Steps { steps, duration } => {
                let segments = steps
                    .iter()
                    .map(|&(t, r)| (SimTime::from_secs_f64(t), r))
                    .collect();
                Box::new(PiecewiseConstantPoisson::new(
                    segments,
                    SimTime::from_secs_f64(*duration),
                ))
            }
            WorkloadSpec::Ramp { from, to, duration } => {
                let (f, t, d) = (*from, *to, *duration);
                let max = f.max(t).max(1e-9);
                Box::new(ModulatedPoisson::new(
                    move |secs| {
                        let frac = (secs / d).clamp(0.0, 1.0);
                        f + (t - f) * frac
                    },
                    max,
                    SimTime::from_secs_f64(d),
                ))
            }
            WorkloadSpec::Trace { per_minute } => Box::new(PerMinuteTrace::new(per_minute)),
        }
    }

    /// Total duration of the workload in seconds.
    pub fn duration(&self) -> f64 {
        match self {
            WorkloadSpec::Static { duration, .. }
            | WorkloadSpec::Steps { duration, .. }
            | WorkloadSpec::Ramp { duration, .. } => *duration,
            WorkloadSpec::Trace { per_minute } => per_minute.len() as f64 * 60.0,
        }
    }

    /// The same workload with every rate multiplied by `factor` —
    /// the knob scenario sweeps turn to push a fixed traffic shape
    /// through under- to over-load. Trace counts are scaled and
    /// rounded; `factor` must be finite and non-negative.
    pub fn scale_rate(&self, factor: f64) -> WorkloadSpec {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "rate factor must be finite and >= 0, got {factor}"
        );
        match self {
            WorkloadSpec::Static { rate, duration } => WorkloadSpec::Static {
                rate: rate * factor,
                duration: *duration,
            },
            WorkloadSpec::Steps { steps, duration } => WorkloadSpec::Steps {
                steps: steps.iter().map(|&(t, r)| (t, r * factor)).collect(),
                duration: *duration,
            },
            WorkloadSpec::Ramp { from, to, duration } => WorkloadSpec::Ramp {
                from: from * factor,
                to: to * factor,
                duration: *duration,
            },
            WorkloadSpec::Trace { per_minute } => WorkloadSpec::Trace {
                per_minute: per_minute
                    .iter()
                    .map(|&n| (n as f64 * factor).round() as u64)
                    .collect(),
            },
        }
    }

    /// The nominal rate at time `t` (seconds); for analysis and plotting.
    pub fn rate_at(&self, t: f64) -> f64 {
        match self {
            WorkloadSpec::Static { rate, duration } => {
                if t < *duration {
                    *rate
                } else {
                    0.0
                }
            }
            WorkloadSpec::Steps { steps, duration } => {
                if t >= *duration {
                    return 0.0;
                }
                steps
                    .iter()
                    .rev()
                    .find(|&&(s, _)| s <= t)
                    .map_or(0.0, |&(_, r)| r)
            }
            WorkloadSpec::Ramp { from, to, duration } => {
                if t >= *duration {
                    return 0.0;
                }
                from + (to - from) * (t / duration).clamp(0.0, 1.0)
            }
            WorkloadSpec::Trace { per_minute } => {
                let m = (t / 60.0) as usize;
                per_minute.get(m).map_or(0.0, |&c| c as f64 / 60.0)
            }
        }
    }

    /// The paper's Fig. 6 micro-benchmark staging: 5→30 req/s in steps of
    /// 5, then back down, one step per `step_secs`.
    pub fn fig6_micro_steps(step_secs: f64) -> WorkloadSpec {
        let up = [5.0, 10.0, 15.0, 20.0, 25.0, 30.0];
        let down = [25.0, 20.0, 15.0, 10.0, 5.0];
        let mut steps = Vec::new();
        let mut t = 0.0;
        for r in up.into_iter().chain(down) {
            steps.push((t, r));
            t += step_secs;
        }
        WorkloadSpec::Steps { steps, duration: t }
    }

    /// The paper's Fig. 6 MobileNet staging: 3→8 req/s and back, one step
    /// per `step_secs`, starting after `offset` seconds.
    pub fn fig6_mobilenet_steps(offset: f64, step_secs: f64) -> WorkloadSpec {
        let up = [3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let down = [7.0, 6.0, 5.0, 4.0, 3.0];
        let mut steps = vec![(0.0, 3.0)];
        let mut t = offset;
        for r in up.into_iter().chain(down) {
            if t > 0.0 {
                steps.push((t, r));
            }
            t += step_secs;
        }
        WorkloadSpec::Steps { steps, duration: t }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lass_simcore::SimRng;

    fn drain(spec: &WorkloadSpec, seed: u64) -> Vec<f64> {
        let mut p = spec.build();
        let mut rng = SimRng::from_seed(seed);
        let mut out = Vec::new();
        let mut now = SimTime::ZERO;
        while let Some(t) = p.next_after(now, &mut rng) {
            now = t;
            out.push(t.as_secs_f64());
        }
        out
    }

    #[test]
    fn static_spec_generates_expected_count() {
        let spec = WorkloadSpec::Static {
            rate: 50.0,
            duration: 100.0,
        };
        let arr = drain(&spec, 1);
        assert!((arr.len() as f64 - 5000.0).abs() < 300.0, "n={}", arr.len());
        assert!(arr.iter().all(|&t| t < 100.0));
        assert_eq!(spec.duration(), 100.0);
        assert_eq!(spec.rate_at(50.0), 50.0);
        assert_eq!(spec.rate_at(150.0), 0.0);
    }

    #[test]
    fn steps_spec_rate_lookup() {
        let spec = WorkloadSpec::Steps {
            steps: vec![(0.0, 5.0), (60.0, 30.0)],
            duration: 120.0,
        };
        assert_eq!(spec.rate_at(0.0), 5.0);
        assert_eq!(spec.rate_at(59.9), 5.0);
        assert_eq!(spec.rate_at(60.0), 30.0);
        assert_eq!(spec.rate_at(120.0), 0.0);
    }

    #[test]
    fn ramp_spec_rate_and_density() {
        let spec = WorkloadSpec::Ramp {
            from: 0.0,
            to: 100.0,
            duration: 100.0,
        };
        assert_eq!(spec.rate_at(0.0), 0.0);
        assert_eq!(spec.rate_at(50.0), 50.0);
        let arr = drain(&spec, 2);
        // Integral = 5000 expected arrivals.
        assert!((arr.len() as f64 - 5000.0).abs() < 300.0, "n={}", arr.len());
    }

    #[test]
    fn trace_spec_duration_and_rate() {
        let spec = WorkloadSpec::Trace {
            per_minute: vec![60, 120, 0],
        };
        assert_eq!(spec.duration(), 180.0);
        assert_eq!(spec.rate_at(30.0), 1.0);
        assert_eq!(spec.rate_at(90.0), 2.0);
        assert_eq!(spec.rate_at(150.0), 0.0);
    }

    #[test]
    fn fig6_micro_staging_shape() {
        let spec = WorkloadSpec::fig6_micro_steps(60.0);
        assert_eq!(spec.rate_at(0.0), 5.0);
        assert_eq!(spec.rate_at(5.5 * 60.0), 30.0);
        assert_eq!(spec.rate_at(10.5 * 60.0), 5.0);
        assert_eq!(spec.duration(), 11.0 * 60.0);
    }

    #[test]
    fn fig6_mobilenet_staging_shape() {
        let spec = WorkloadSpec::fig6_mobilenet_steps(660.0, 60.0);
        assert_eq!(spec.rate_at(0.0), 3.0);
        assert_eq!(spec.rate_at(660.0 + 0.5 * 60.0), 3.0);
        assert_eq!(spec.rate_at(660.0 + 5.5 * 60.0), 8.0);
    }
}
