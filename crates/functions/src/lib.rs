//! Serverless function models and workloads for the LaSS reproduction.
//!
//! * [`catalog`] — the paper's Table 1: six realistic edge functions plus
//!   a configurable micro-benchmark, with standard container sizes.
//! * [`servicetime`] — the CPU-slack deflation model behind Fig. 7 (flat
//!   response within a function's slack, proportional slowdown beyond).
//! * [`workload`] — declarative workload specs for the generator's three
//!   modes (static / discrete change / continuous change) plus trace
//!   replay, including the staging used in Figs. 6, 8, 9.
//! * [`azure`] — Azure Functions trace 2019 CSV loader and a synthetic
//!   generator matching the dataset's qualitative statistics (§6.7).
//! * [`profiler`] — offline service-time profiles and the online learner
//!   (§5), bucketed by deflation level.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod azure;
pub mod catalog;
pub mod profiler;
pub mod servicetime;
pub mod workload;

pub use azure::{
    fig9_traces, parse_invocations_csv, sample_window, synthesize, TracePattern, TraceRow,
};
pub use catalog::{
    binary_alert, geofence, image_resizer, micro_benchmark, mobilenet_v2, shufflenet_v2,
    squeezenet, standard_catalog, FunctionSpec, WorkloadClass,
};
pub use profiler::{ServiceEstimate, ServiceTimeProfiler};
pub use servicetime::{ServiceDistribution, ServiceModel};
pub use workload::WorkloadSpec;
