//! Azure Functions trace support (§6.7).
//!
//! The paper samples one hour of per-minute invocation counts per function
//! from the *Azure Functions Trace 2019* (Azure Public Dataset). The
//! dataset is not redistributable with this repository, so this module
//! provides
//!
//! * [`parse_invocations_csv`] — a loader for the published CSV schema
//!   (`HashOwner,HashApp,HashFunction,Trigger,1,…,1440`), usable when the
//!   user has the real files, and
//! * [`TracePattern`] / [`synthesize`] — a statistically-matched synthetic
//!   generator reproducing the qualitative features §6.7 depends on:
//!   steady background functions, diurnal drift, and the "highly sporadic"
//!   on/off burst pattern the paper highlights for MobileNet.

use lass_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// One row of the Azure invocations file: identity plus per-minute counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Hashed owner id.
    pub owner: String,
    /// Hashed app id.
    pub app: String,
    /// Hashed function id.
    pub function: String,
    /// Trigger type (http, queue, timer, …).
    pub trigger: String,
    /// Invocation counts, one per minute of the day (usually 1440).
    pub per_minute: Vec<u64>,
}

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A row had fewer than the 4 identity columns + 1 minute column.
    TooFewColumns {
        /// 0-based row index (excluding the header).
        row: usize,
    },
    /// A count failed to parse as an unsigned integer.
    BadCount {
        /// 0-based row index (excluding the header).
        row: usize,
        /// 0-based column index.
        col: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::TooFewColumns { row } => write!(f, "row {row}: too few columns"),
            TraceError::BadCount { row, col } => {
                write!(f, "row {row}, column {col}: invalid count")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Parse the Azure invocations-per-function CSV format. The first line is
/// assumed to be a header and skipped when it does not start with a hash
/// digit sequence.
pub fn parse_invocations_csv(text: &str) -> Result<Vec<TraceRow>, TraceError> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if i == 0 && line.to_ascii_lowercase().starts_with("hashowner") {
            continue;
        }
        let row_idx = rows.len();
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 5 {
            return Err(TraceError::TooFewColumns { row: row_idx });
        }
        let mut per_minute = Vec::with_capacity(fields.len() - 4);
        for (col, f) in fields[4..].iter().enumerate() {
            let v: u64 = f
                .trim()
                .parse()
                .map_err(|_| TraceError::BadCount { row: row_idx, col })?;
            per_minute.push(v);
        }
        rows.push(TraceRow {
            owner: fields[0].to_string(),
            app: fields[1].to_string(),
            function: fields[2].to_string(),
            trigger: fields[3].to_string(),
            per_minute,
        });
    }
    Ok(rows)
}

/// Extract a window of exactly `minutes` per-minute counts starting at
/// `start_minute` from a trace row (the paper samples 11:00–12:00, i.e.
/// minutes 660–720).
///
/// Reads are clamped to the recorded data: a window running past the end
/// of the row — or starting at or beyond it — is zero-filled to the
/// requested length instead of being silently shortened, so every
/// function in a replay shares the same horizon whatever its row length.
pub fn sample_window(row: &TraceRow, start_minute: usize, minutes: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(minutes);
    let end = row
        .per_minute
        .len()
        .min(start_minute.saturating_add(minutes));
    if start_minute < end {
        out.extend_from_slice(&row.per_minute[start_minute..end]);
    }
    out.resize(minutes, 0);
    out
}

/// Synthetic per-minute trace shapes matching the Azure 2019 qualitative
/// statistics (invocation rates span many orders of magnitude; many
/// functions are bursty or periodic — Shahrad et al., ATC '20).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum TracePattern {
    /// Poisson counts around a steady mean (per minute).
    Steady {
        /// Mean invocations per minute.
        mean_per_min: f64,
    },
    /// Sinusoidal diurnal drift around a mean.
    Diurnal {
        /// Mean invocations per minute.
        mean_per_min: f64,
        /// Relative amplitude in `[0, 1]`.
        amplitude: f64,
        /// Period in minutes.
        period_min: f64,
    },
    /// On/off bursts ("highly sporadic" — the MobileNet pattern in Fig 9a):
    /// geometric burst/idle durations, high rate while on, zero while off.
    Sporadic {
        /// Mean invocations per minute while a burst is active.
        burst_mean_per_min: f64,
        /// Mean burst length in minutes.
        mean_burst_min: f64,
        /// Mean idle gap in minutes.
        mean_idle_min: f64,
    },
    /// Steady base load with occasional multiplicative spikes.
    Spiky {
        /// Mean invocations per minute between spikes.
        base_per_min: f64,
        /// Per-minute probability of a spike.
        spike_prob: f64,
        /// Spike multiplier.
        spike_factor: f64,
    },
}

/// Generate `minutes` of per-minute counts from a pattern.
pub fn synthesize(pattern: TracePattern, minutes: usize, rng: &mut SimRng) -> Vec<u64> {
    let mut out = Vec::with_capacity(minutes);
    match pattern {
        TracePattern::Steady { mean_per_min } => {
            for _ in 0..minutes {
                out.push(rng.poisson(mean_per_min));
            }
        }
        TracePattern::Diurnal {
            mean_per_min,
            amplitude,
            period_min,
        } => {
            assert!((0.0..=1.0).contains(&amplitude));
            for m in 0..minutes {
                let phase = (m as f64 / period_min) * std::f64::consts::TAU;
                let mean = mean_per_min * (1.0 + amplitude * phase.sin());
                out.push(rng.poisson(mean.max(0.0)));
            }
        }
        TracePattern::Sporadic {
            burst_mean_per_min,
            mean_burst_min,
            mean_idle_min,
        } => {
            // Start idle: the paper's MobileNet trace begins quiet.
            let mut bursting = false;
            let mut remaining = sample_geometric(rng, mean_idle_min);
            for _ in 0..minutes {
                if remaining == 0 {
                    bursting = !bursting;
                    remaining = sample_geometric(
                        rng,
                        if bursting {
                            mean_burst_min
                        } else {
                            mean_idle_min
                        },
                    );
                }
                out.push(if bursting {
                    rng.poisson(burst_mean_per_min)
                } else {
                    0
                });
                remaining = remaining.saturating_sub(1);
            }
        }
        TracePattern::Spiky {
            base_per_min,
            spike_prob,
            spike_factor,
        } => {
            for _ in 0..minutes {
                let mean = if rng.chance(spike_prob) {
                    base_per_min * spike_factor
                } else {
                    base_per_min
                };
                out.push(rng.poisson(mean));
            }
        }
    }
    out
}

fn sample_geometric(rng: &mut SimRng, mean: f64) -> u64 {
    // Geometric with the given mean (≥ 1 minute).
    let p = (1.0 / mean.max(1.0)).clamp(1e-6, 1.0);
    let u = rng.uniform().max(1e-12);
    ((u.ln() / (1.0 - p).ln()).ceil() as u64).max(1)
}

/// The §6.7 experiment's six per-function traces (one hour each),
/// synthesized to match the paper's description: five functions with
/// steady-to-moderately-varying load and a highly sporadic MobileNet.
/// Order matches [`crate::catalog::standard_catalog`].
pub fn fig9_traces(seed: u64) -> Vec<Vec<u64>> {
    let minutes = 60;
    let mut traces = Vec::with_capacity(6);
    // MobileNet: sporadic heavy bursts (the overload driver). Rates are
    // calibrated so the background load alone keeps the cluster highly
    // utilized (§6.7) and each burst forces fair-share reclamation.
    let mut rng = SimRng::from_seed_label(seed, "azure:mobilenet");
    traces.push(synthesize(
        TracePattern::Sporadic {
            burst_mean_per_min: 420.0, // ~7 req/s while bursting
            mean_burst_min: 6.0,
            mean_idle_min: 6.0,
        },
        minutes,
        &mut rng,
    ));
    // ShuffleNet: steady moderate load.
    let mut rng = SimRng::from_seed_label(seed, "azure:shufflenet");
    traces.push(synthesize(
        TracePattern::Steady {
            mean_per_min: 720.0,
        },
        minutes,
        &mut rng,
    ));
    // SqueezeNet: diurnal-ish drift.
    let mut rng = SimRng::from_seed_label(seed, "azure:squeezenet");
    traces.push(synthesize(
        TracePattern::Diurnal {
            mean_per_min: 600.0,
            amplitude: 0.4,
            period_min: 30.0,
        },
        minutes,
        &mut rng,
    ));
    // BinaryAlert: spiky.
    let mut rng = SimRng::from_seed_label(seed, "azure:binaryalert");
    traces.push(synthesize(
        TracePattern::Spiky {
            base_per_min: 900.0,
            spike_prob: 0.08,
            spike_factor: 2.5,
        },
        minutes,
        &mut rng,
    ));
    // GeoFence: steady high-frequency light load.
    let mut rng = SimRng::from_seed_label(seed, "azure:geofence");
    traces.push(synthesize(
        TracePattern::Steady {
            mean_per_min: 2400.0,
        },
        minutes,
        &mut rng,
    ));
    // Image Resizer: diurnal.
    let mut rng = SimRng::from_seed_label(seed, "azure:resizer");
    traces.push(synthesize(
        TracePattern::Diurnal {
            mean_per_min: 600.0,
            amplitude: 0.4,
            period_min: 20.0,
        },
        minutes,
        &mut rng,
    ));
    traces
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "\
HashOwner,HashApp,HashFunction,Trigger,1,2,3,4,5
o1,a1,f1,http,0,5,10,0,2
o1,a1,f2,timer,1,1,1,1,1
o2,a2,f3,queue,100,0,0,0,40
";

    #[test]
    fn parses_well_formed_csv() {
        let rows = parse_invocations_csv(CSV).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].owner, "o1");
        assert_eq!(rows[0].trigger, "http");
        assert_eq!(rows[0].per_minute, vec![0, 5, 10, 0, 2]);
        assert_eq!(rows[2].per_minute[0], 100);
    }

    #[test]
    fn rejects_bad_count() {
        let bad = "HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,http,xyz\n";
        assert!(matches!(
            parse_invocations_csv(bad),
            Err(TraceError::BadCount { row: 0, col: 0 })
        ));
    }

    #[test]
    fn rejects_short_row() {
        let bad = "HashOwner,HashApp,HashFunction,Trigger,1\no,a,f\n";
        assert!(matches!(
            parse_invocations_csv(bad),
            Err(TraceError::TooFewColumns { row: 0 })
        ));
    }

    #[test]
    fn window_sampling() {
        let rows = parse_invocations_csv(CSV).unwrap();
        assert_eq!(sample_window(&rows[0], 1, 3), vec![5, 10, 0]);
        // Overruns are zero-filled to the requested length, not shortened.
        assert_eq!(
            sample_window(&rows[0], 4, 10),
            vec![2, 0, 0, 0, 0, 0, 0, 0, 0, 0]
        );
    }

    #[test]
    fn window_sampling_clamps_at_and_past_the_end() {
        let rows = parse_invocations_csv(CSV).unwrap();
        // Row has 5 minutes. A window starting exactly at the end, or
        // beyond it, yields all-zero minutes of the requested length.
        assert_eq!(sample_window(&rows[0], 5, 3), vec![0, 0, 0]);
        assert_eq!(sample_window(&rows[0], 99, 2), vec![0, 0]);
        // Exact fit is untouched.
        assert_eq!(sample_window(&rows[0], 0, 5), vec![0, 5, 10, 0, 2]);
        // Zero-length windows stay empty wherever they start.
        assert_eq!(sample_window(&rows[0], 2, 0), Vec::<u64>::new());
    }

    #[test]
    fn steady_pattern_mean() {
        let mut rng = SimRng::from_seed(1);
        let t = synthesize(
            TracePattern::Steady {
                mean_per_min: 100.0,
            },
            2000,
            &mut rng,
        );
        let mean = t.iter().sum::<u64>() as f64 / t.len() as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean={mean}");
    }

    #[test]
    fn diurnal_pattern_oscillates() {
        let mut rng = SimRng::from_seed(2);
        let t = synthesize(
            TracePattern::Diurnal {
                mean_per_min: 100.0,
                amplitude: 0.8,
                period_min: 60.0,
            },
            60,
            &mut rng,
        );
        let peak = *t.iter().max().unwrap() as f64;
        let trough = *t.iter().min().unwrap() as f64;
        assert!(peak > 140.0, "peak={peak}");
        assert!(trough < 60.0, "trough={trough}");
    }

    #[test]
    fn sporadic_pattern_has_idle_and_burst_minutes() {
        let mut rng = SimRng::from_seed(3);
        let t = synthesize(
            TracePattern::Sporadic {
                burst_mean_per_min: 300.0,
                mean_burst_min: 5.0,
                mean_idle_min: 10.0,
            },
            600,
            &mut rng,
        );
        let idle = t.iter().filter(|&&c| c == 0).count();
        let busy = t.iter().filter(|&&c| c > 100).count();
        assert!(idle > 200, "idle minutes = {idle}");
        assert!(busy > 100, "busy minutes = {busy}");
        // Bursts are contiguous: transitions are rare relative to minutes.
        let transitions = t.windows(2).filter(|w| (w[0] == 0) != (w[1] == 0)).count();
        assert!(transitions < 150, "transitions={transitions}");
    }

    #[test]
    fn spiky_pattern_exceeds_base() {
        let mut rng = SimRng::from_seed(4);
        let t = synthesize(
            TracePattern::Spiky {
                base_per_min: 50.0,
                spike_prob: 0.1,
                spike_factor: 5.0,
            },
            1000,
            &mut rng,
        );
        let spikes = t.iter().filter(|&&c| c > 150).count();
        assert!(spikes > 30, "spikes={spikes}");
    }

    #[test]
    fn fig9_traces_shape() {
        let traces = fig9_traces(42);
        assert_eq!(traces.len(), 6);
        assert!(traces.iter().all(|t| t.len() == 60));
        // MobileNet trace must be sporadic: it has idle minutes.
        let idle = traces[0].iter().filter(|&&c| c == 0).count();
        assert!(
            idle >= 5,
            "MobileNet trace should have idle minutes, got {idle}"
        );
        // And is deterministic per seed.
        assert_eq!(traces, fig9_traces(42));
        assert_ne!(traces, fig9_traces(43));
    }
}
