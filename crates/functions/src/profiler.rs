//! Service-time profiling.
//!
//! The controller "needs to know the service time distribution … LaSS
//! supports two approaches: 1) load offline profiling results … and 2) use
//! an online learning algorithm to learn the service time distribution(s)
//! over time" (§5). Under deflation there is a *family* of distributions,
//! one per container size; we bucket by deflation decile.
//!
//! The online learner keeps a running mean and streaming P² quantiles per
//! `(function, deflation-bucket)` and takes over from the offline profile
//! once it has seen enough samples.

use crate::servicetime::ServiceModel;
use lass_cluster::FnId;
use lass_queueing::P2Quantile;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What the controller needs to know about service times at a given
/// container size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceEstimate {
    /// Mean service time (seconds).
    pub mean: f64,
    /// Service rate μ = 1/mean (req/s).
    pub rate: f64,
    /// 95th percentile of the service time.
    pub p95: f64,
    /// 99th percentile of the service time.
    pub p99: f64,
    /// Whether the estimate came from online observations (vs. the offline
    /// profile).
    pub online: bool,
}

#[derive(Debug, Clone)]
struct OnlineBucket {
    count: usize,
    mean: f64,
    p95: P2Quantile,
    p99: P2Quantile,
}

impl OnlineBucket {
    fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
        }
    }

    fn record(&mut self, x: f64) {
        self.count += 1;
        self.mean += (x - self.mean) / self.count as f64;
        self.p95.observe(x);
        self.p99.observe(x);
    }
}

/// Offline profiles + online learner for per-function service times.
#[derive(Debug, Clone)]
pub struct ServiceTimeProfiler {
    offline: BTreeMap<FnId, ServiceModel>,
    online: BTreeMap<(FnId, u8), OnlineBucket>,
    /// Online estimates are used only after this many samples in a bucket.
    min_samples: usize,
}

/// Deflation-decile bucket index (0 ⇒ [0, 0.1), 9 ⇒ [0.9, 1)).
fn bucket(deflation: f64) -> u8 {
    debug_assert!((0.0..1.0).contains(&deflation));
    ((deflation * 10.0) as u8).min(9)
}

impl ServiceTimeProfiler {
    /// A profiler that trusts online data after `min_samples` observations
    /// per bucket (the paper does not specify; 50 is conservative).
    pub fn new(min_samples: usize) -> Self {
        Self {
            offline: BTreeMap::new(),
            online: BTreeMap::new(),
            min_samples,
        }
    }

    /// Register a function's offline profile (its deflation service-time
    /// model, e.g. from Table 1 / Fig. 7 measurements).
    pub fn register(&mut self, fn_id: FnId, model: ServiceModel) {
        self.offline.insert(fn_id, model);
    }

    /// The offline model, if registered.
    pub fn offline_model(&self, fn_id: FnId) -> Option<&ServiceModel> {
        self.offline.get(&fn_id)
    }

    /// Record one observed service time (seconds) at the given deflation
    /// ratio.
    pub fn record(&mut self, fn_id: FnId, deflation: f64, observed: f64) {
        debug_assert!(observed.is_finite() && observed >= 0.0);
        self.online
            .entry((fn_id, bucket(deflation)))
            .or_insert_with(OnlineBucket::new)
            .record(observed);
    }

    /// Number of online samples in the bucket covering `deflation`.
    pub fn online_samples(&self, fn_id: FnId, deflation: f64) -> usize {
        self.online
            .get(&(fn_id, bucket(deflation)))
            .map_or(0, |b| b.count)
    }

    /// Estimate the service-time distribution of `fn_id` at `deflation`.
    /// Prefers the online learner once its bucket is warm; falls back to
    /// the offline profile; `None` if the function is unknown both ways.
    pub fn estimate(&self, fn_id: FnId, deflation: f64) -> Option<ServiceEstimate> {
        if let Some(b) = self.online.get(&(fn_id, bucket(deflation))) {
            if b.count >= self.min_samples {
                let mean = b.mean.max(1e-9);
                return Some(ServiceEstimate {
                    mean,
                    rate: 1.0 / mean,
                    p95: b.p95.estimate().unwrap_or(mean),
                    p99: b.p99.estimate().unwrap_or(mean),
                    online: true,
                });
            }
        }
        let model = self.offline.get(&fn_id)?;
        let mean = model.mean_service_time(deflation);
        Some(ServiceEstimate {
            mean,
            rate: 1.0 / mean,
            p95: model.service_percentile(deflation, 0.95),
            p99: model.service_percentile(deflation, 0.99),
            online: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lass_simcore::SimRng;

    #[test]
    fn offline_fallback_matches_model() {
        let mut p = ServiceTimeProfiler::new(50);
        p.register(FnId(0), ServiceModel::exponential(0.1, 0.7));
        let est = p.estimate(FnId(0), 0.0).unwrap();
        assert!(!est.online);
        assert!((est.mean - 0.1).abs() < 1e-12);
        assert!((est.rate - 10.0).abs() < 1e-9);
        assert!((est.p99 - 0.1 * 100.0f64.ln()).abs() < 1e-9);
        // Deflated bucket uses the slack model.
        let est50 = p.estimate(FnId(0), 0.5).unwrap();
        assert!((est50.mean - 0.14).abs() < 1e-9);
    }

    #[test]
    fn unknown_function_yields_none() {
        let p = ServiceTimeProfiler::new(10);
        assert!(p.estimate(FnId(9), 0.0).is_none());
    }

    #[test]
    fn online_takes_over_after_min_samples() {
        let mut p = ServiceTimeProfiler::new(100);
        p.register(FnId(1), ServiceModel::exponential(0.1, 0.7));
        let mut rng = SimRng::from_seed(5);
        // The function actually runs at 0.2 mean (offline profile is stale).
        for _ in 0..99 {
            p.record(FnId(1), 0.0, rng.exp(5.0));
        }
        assert!(!p.estimate(FnId(1), 0.0).unwrap().online);
        for _ in 0..2000 {
            p.record(FnId(1), 0.0, rng.exp(5.0));
        }
        let est = p.estimate(FnId(1), 0.0).unwrap();
        assert!(est.online);
        assert!((est.mean - 0.2).abs() < 0.01, "mean={}", est.mean);
        assert!((est.rate - 5.0).abs() < 0.3);
        let truth_p99 = 0.2 * 100.0f64.ln();
        assert!(
            (est.p99 - truth_p99).abs() / truth_p99 < 0.2,
            "p99={}",
            est.p99
        );
    }

    #[test]
    fn buckets_are_independent_per_deflation() {
        let mut p = ServiceTimeProfiler::new(10);
        p.register(FnId(2), ServiceModel::exponential(0.1, 0.7));
        for _ in 0..50 {
            p.record(FnId(2), 0.05, 0.1); // bucket 0
            p.record(FnId(2), 0.55, 0.2); // bucket 5
        }
        assert_eq!(p.online_samples(FnId(2), 0.0), 50);
        assert_eq!(p.online_samples(FnId(2), 0.5), 50);
        assert_eq!(p.online_samples(FnId(2), 0.9), 0);
        let shallow = p.estimate(FnId(2), 0.02).unwrap();
        let deep = p.estimate(FnId(2), 0.52).unwrap();
        assert!((shallow.mean - 0.1).abs() < 1e-9);
        assert!((deep.mean - 0.2).abs() < 1e-9);
    }

    #[test]
    fn online_without_offline_profile_works() {
        let mut p = ServiceTimeProfiler::new(5);
        for _ in 0..10 {
            p.record(FnId(3), 0.0, 0.3);
        }
        let est = p.estimate(FnId(3), 0.0).unwrap();
        assert!(est.online);
        assert!((est.mean - 0.3).abs() < 1e-9);
        // But an unwarmed bucket of the same function has no fallback.
        assert!(p.estimate(FnId(3), 0.5).is_none());
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket(0.0), 0);
        assert_eq!(bucket(0.0999), 0);
        assert_eq!(bucket(0.1), 1);
        assert_eq!(bucket(0.95), 9);
        assert_eq!(bucket(0.9999), 9);
    }
}
