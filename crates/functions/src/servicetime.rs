//! Service-time models under CPU deflation.
//!
//! §6.5 of the paper measures how each function's service time responds to
//! CPU deflation (Fig. 7): functions typically use only a fraction of their
//! standard allocation ("slack"), so reclaiming up to that slack has little
//! effect, while deeper deflation slows the function roughly in proportion
//! to the CPU taken away. MobileNet is the exception — it saturates its
//! 2-vCPU allocation, so *any* deflation slows it down.
//!
//! We capture this with a two-parameter model: a base service time at the
//! standard size and a `demand_fraction` `u ∈ (0, 1]` — the share of the
//! standard allocation the function actually needs. With deflation ratio
//! `d`, the effective slowdown is `max(1, u / (1 − d))`: flat until the
//! slack is exhausted (`d ≤ 1 − u`), then inversely proportional to the
//! remaining CPU.

use lass_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// Shape of the service-time distribution around its (deflation-dependent)
/// mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceDistribution {
    /// Exponential (the M/M/c modeling assumption; default).
    Exponential,
    /// Deterministic (micro-benchmark with fixed cycle count).
    Deterministic,
    /// Log-normal with the given coefficient of variation (robustness
    /// studies: the models assume exponential, real inference is not).
    LogNormal {
        /// Coefficient of variation (σ/μ in linear space).
        cv: f64,
    },
}

/// A function's service-time response to CPU deflation.
///
/// ```
/// use lass_functions::ServiceModel;
///
/// // 100 ms base time, 30% CPU slack (Fig. 7's typical shape).
/// let m = ServiceModel::exponential(0.1, 0.7);
/// assert_eq!(m.mean_service_time(0.2), 0.1);            // within slack: free
/// assert!((m.mean_service_time(0.5) - 0.14).abs() < 1e-12); // beyond: slower
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Mean service time (seconds) at the standard container size.
    pub base_time: f64,
    /// Fraction of the standard CPU allocation the function actually
    /// consumes (1 − slack). MobileNet ≈ 0.98; most functions ≈ 0.7.
    pub demand_fraction: f64,
    /// Distribution shape.
    pub distribution: ServiceDistribution,
}

impl ServiceModel {
    /// Exponential service model with the given base time and demand.
    pub fn exponential(base_time: f64, demand_fraction: f64) -> Self {
        Self::new(base_time, demand_fraction, ServiceDistribution::Exponential)
    }

    /// General constructor.
    pub fn new(base_time: f64, demand_fraction: f64, distribution: ServiceDistribution) -> Self {
        assert!(base_time > 0.0 && base_time.is_finite(), "bad base time");
        assert!(
            demand_fraction > 0.0 && demand_fraction <= 1.0,
            "demand fraction must be in (0, 1]"
        );
        if let ServiceDistribution::LogNormal { cv } = distribution {
            assert!(cv > 0.0 && cv.is_finite(), "bad CV");
        }
        Self {
            base_time,
            demand_fraction,
            distribution,
        }
    }

    /// Multiplicative slowdown at deflation ratio `d ∈ [0, 1)`:
    /// `max(1, u/(1−d))`.
    pub fn slowdown(&self, deflation: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&deflation),
            "deflation ratio must be in [0, 1), got {deflation}"
        );
        (self.demand_fraction / (1.0 - deflation)).max(1.0)
    }

    /// The deflation ratio at which slowdown begins (the function's slack).
    pub fn slack(&self) -> f64 {
        1.0 - self.demand_fraction
    }

    /// Mean service time (seconds) at deflation ratio `d`.
    pub fn mean_service_time(&self, deflation: f64) -> f64 {
        self.base_time * self.slowdown(deflation)
    }

    /// Service rate μ (req/s) at deflation ratio `d`.
    pub fn service_rate(&self, deflation: f64) -> f64 {
        1.0 / self.mean_service_time(deflation)
    }

    /// The `p`-percentile of the service time at deflation `d` under this
    /// model's distribution (used to derive the wait budget `t = d − s_p`).
    pub fn service_percentile(&self, deflation: f64, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p));
        let mean = self.mean_service_time(deflation);
        match self.distribution {
            ServiceDistribution::Exponential => -(1.0 - p).ln() * mean,
            ServiceDistribution::Deterministic => mean,
            ServiceDistribution::LogNormal { cv } => {
                let sigma2 = (1.0 + cv * cv).ln();
                let mu = mean.ln() - sigma2 / 2.0;
                // Quantile via inverse error function approximation.
                (mu + sigma2.sqrt() * normal_quantile(p)).exp()
            }
        }
    }

    /// Draw one service time at deflation ratio `d`.
    pub fn sample(&self, deflation: f64, rng: &mut SimRng) -> f64 {
        let mean = self.mean_service_time(deflation);
        match self.distribution {
            ServiceDistribution::Exponential => rng.exp(1.0 / mean),
            ServiceDistribution::Deterministic => mean,
            ServiceDistribution::LogNormal { cv } => rng.lognormal_mean_cv(mean, cv),
        }
    }
}

/// Standard normal quantile (Acklam's rational approximation, |err| < 1e-8).
fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slack_region_is_flat() {
        // 30% slack: deflation up to 0.3 costs nothing.
        let m = ServiceModel::exponential(0.1, 0.7);
        assert!((m.slack() - 0.3).abs() < 1e-12);
        assert_eq!(m.slowdown(0.0), 1.0);
        assert_eq!(m.slowdown(0.2), 1.0);
        assert!((m.slowdown(0.3) - 1.0).abs() < 1e-9);
        assert!(m.slowdown(0.5) > 1.0);
    }

    #[test]
    fn beyond_slack_slowdown_is_inverse_proportional() {
        let m = ServiceModel::exponential(0.1, 0.7);
        // At d=0.5, remaining CPU = 0.5 of standard; demand 0.7 -> 1.4x.
        assert!((m.slowdown(0.5) - 1.4).abs() < 1e-9);
        assert!((m.mean_service_time(0.5) - 0.14).abs() < 1e-9);
        // At d=0.65: 0.7/0.35 = 2x.
        assert!((m.slowdown(0.65) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mobilenet_like_has_no_flat_region() {
        let m = ServiceModel::exponential(0.25, 0.98);
        assert!(m.slack() < 0.03);
        // 30% deflation hurts immediately: 0.98/0.7 = 1.4x.
        assert!((m.slowdown(0.3) - 1.4).abs() < 1e-9);
    }

    #[test]
    fn slowdown_is_monotone_in_deflation() {
        let m = ServiceModel::exponential(0.1, 0.7);
        let mut last = 0.0;
        for i in 0..90 {
            let d = f64::from(i) / 100.0;
            let s = m.slowdown(d);
            assert!(s >= last);
            last = s;
        }
    }

    #[test]
    fn service_rate_is_reciprocal_mean() {
        let m = ServiceModel::exponential(0.2, 0.7);
        assert!((m.service_rate(0.0) - 5.0).abs() < 1e-9);
        assert!((m.service_rate(0.65) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn exponential_percentile() {
        let m = ServiceModel::exponential(0.1, 1.0);
        let p99 = m.service_percentile(0.0, 0.99);
        assert!((p99 - 0.1 * (100.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn deterministic_percentile_is_mean() {
        let m = ServiceModel::new(0.1, 0.7, ServiceDistribution::Deterministic);
        assert_eq!(m.service_percentile(0.0, 0.99), 0.1);
        let mut rng = SimRng::from_seed(1);
        assert_eq!(m.sample(0.0, &mut rng), 0.1);
    }

    #[test]
    fn lognormal_sampling_matches_mean() {
        let m = ServiceModel::new(0.1, 0.7, ServiceDistribution::LogNormal { cv: 0.4 });
        let mut rng = SimRng::from_seed(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| m.sample(0.0, &mut rng)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.1).abs() < 0.002, "mean={mean}");
        // Median of lognormal < mean; p50 percentile should reflect that.
        let p50 = m.service_percentile(0.0, 0.5);
        assert!(p50 < 0.1);
    }

    #[test]
    fn exponential_sampling_matches_deflated_mean() {
        let m = ServiceModel::exponential(0.1, 0.8);
        let mut rng = SimRng::from_seed(3);
        let n = 100_000;
        let d = 0.5; // slowdown 0.8/0.5 = 1.6 -> mean 0.16
        let mean: f64 = (0..n).map(|_| m.sample(d, &mut rng)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.16).abs() < 0.003, "mean={mean}");
    }

    #[test]
    fn normal_quantile_sanity() {
        assert!((normal_quantile(0.5)).abs() < 1e-8);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.99) - 2.326348).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "deflation ratio")]
    fn full_deflation_is_rejected() {
        ServiceModel::exponential(0.1, 0.7).slowdown(1.0);
    }
}
