//! Arrival-rate estimation.
//!
//! LaSS feeds its queueing models with an arrival-rate estimate that is
//! (a) smoothed across epochs with an exponential weighted moving average
//! (§3.3) and (b) made burst-reactive with the dual sliding-window scheme
//! the prototype borrows from Knative (§5): a 2-minute long window and a
//! 10-second short window are both maintained; when the short-window rate
//! is at least twice the long-window rate, the estimator switches to the
//! short window.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Exponential weighted moving average over per-epoch observations, with a
/// high weight `alpha` on the most recent epoch (§3.3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create an EWMA with smoothing weight `alpha ∈ (0, 1]` applied to the
    /// newest observation.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA weight must be in (0, 1], got {alpha}"
        );
        Self { alpha, value: None }
    }

    /// Fold in one observation and return the updated average. The first
    /// observation seeds the average directly.
    pub fn observe(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(v);
        v
    }

    /// Fold `n` identical observations of `x` in O(1) via the closed-form
    /// decay `v ← x + (v − x)·(1 − α)ⁿ` — equivalent to calling
    /// [`Ewma::observe`] with `x` `n` times, up to floating-point rounding
    /// (the iterated product and the power round differently in the last
    /// ULPs, so callers that need bit-exact replay must keep the loop for
    /// short runs and reserve this for long gaps).
    pub fn fold_constant(&mut self, x: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.value = Some(match self.value {
            // The first observation seeds the average; every further
            // identical observation leaves it at `x`.
            None => x,
            Some(v) => x + (v - x) * (1.0 - self.alpha).powf(n as f64),
        });
    }

    /// Current smoothed value, if any observation has been folded in.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Drop all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Burst-aware arrival-rate estimator with a long and a short sliding
/// window (§5 of the paper; defaults: 120 s long, 10 s short, burst when
/// the short-window rate is ≥ 2× the long-window rate).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DualWindowEstimator {
    long_window: f64,
    short_window: f64,
    burst_factor: f64,
    /// (bucket timestamp, arrivals recorded at that timestamp).
    buckets: VecDeque<(f64, u64)>,
    /// When coverage began (defaults to the first bucket's timestamp; set
    /// explicitly with [`DualWindowEstimator::set_origin`] when monitoring
    /// starts at a known instant).
    origin: Option<f64>,
}

impl Default for DualWindowEstimator {
    fn default() -> Self {
        Self::new(120.0, 10.0, 2.0)
    }
}

impl DualWindowEstimator {
    /// Create an estimator with the given window lengths (seconds) and
    /// burst-detection factor.
    pub fn new(long_window: f64, short_window: f64, burst_factor: f64) -> Self {
        assert!(long_window > 0.0 && short_window > 0.0);
        assert!(
            short_window <= long_window,
            "short window must not exceed the long window"
        );
        assert!(burst_factor >= 1.0);
        Self {
            long_window,
            short_window,
            burst_factor,
            buckets: VecDeque::new(),
            origin: None,
        }
    }

    /// Declare when monitoring coverage began. A bucket recorded at time
    /// `t` is taken to cover `(previous bucket or origin, t]`; without an
    /// explicit origin, the first bucket's timestamp is used, which
    /// *overestimates* early rates slightly (the first bucket's own span
    /// is unknown). The LaSS controller sets the origin to 0.
    pub fn set_origin(&mut self, t: f64) {
        self.origin = Some(t);
    }

    /// Record `arrivals` new requests observed at time `now` (seconds).
    /// Timestamps must be non-decreasing.
    pub fn record(&mut self, now: f64, arrivals: u64) {
        if let Some(&(last, _)) = self.buckets.back() {
            assert!(now >= last, "timestamps must be non-decreasing");
        }
        self.origin.get_or_insert(now);
        self.buckets.push_back((now, arrivals));
        self.evict(now);
    }

    fn evict(&mut self, now: f64) {
        let horizon = now - self.long_window;
        while let Some(&(t, _)) = self.buckets.front() {
            if t < horizon {
                self.buckets.pop_front();
            } else {
                break;
            }
        }
    }

    fn window_rate(&self, now: f64, window: f64) -> f64 {
        let Some(origin) = self.origin else {
            return 0.0;
        };
        if self.buckets.is_empty() {
            return 0.0;
        }
        // Before a full window has elapsed, divide by the covered span so
        // cold-start rates are not underestimated.
        let covered = (now - origin).max(1e-9);
        let effective = window.min(covered).max(1e-9);
        let horizon = now - window;
        let count: u64 = self
            .buckets
            .iter()
            .filter(|&&(t, _)| t > horizon)
            .map(|&(_, n)| n)
            .sum();
        count as f64 / effective
    }

    /// Rate over the long window (requests/second).
    pub fn long_rate(&self, now: f64) -> f64 {
        self.window_rate(now, self.long_window)
    }

    /// Rate over the short window (requests/second).
    pub fn short_rate(&self, now: f64) -> f64 {
        self.window_rate(now, self.short_window)
    }

    /// Whether a burst is in progress (short-window rate ≥ factor × long).
    pub fn is_burst(&self, now: f64) -> bool {
        let long = self.long_rate(now);
        let short = self.short_rate(now);
        long > 0.0 && short >= self.burst_factor * long
    }

    /// The burst-aware estimate: the short-window rate during a burst, the
    /// long-window rate otherwise (§5).
    pub fn rate(&self, now: f64) -> f64 {
        if self.is_burst(now) {
            self.short_rate(now)
        } else {
            self.long_rate(now)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_seeds_with_first_observation() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.observe(10.0), 10.0);
        assert_eq!(e.observe(20.0), 15.0);
        assert_eq!(e.observe(20.0), 17.5);
    }

    #[test]
    fn ewma_alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.observe(5.0);
        assert_eq!(e.observe(9.0), 9.0);
    }

    #[test]
    fn ewma_fold_constant_matches_iteration() {
        for &x in &[0.0, 1.0, 3.5] {
            let mut folded = Ewma::new(0.3);
            let mut looped = Ewma::new(0.3);
            folded.observe(10.0);
            looped.observe(10.0);
            folded.fold_constant(x, 40);
            for _ in 0..40 {
                looped.observe(x);
            }
            let (f, l) = (folded.value().unwrap(), looped.value().unwrap());
            assert!((f - l).abs() < 1e-12, "x={x}: folded {f} vs looped {l}");
        }
        // Seeding: n identical observations on an empty EWMA yield x.
        let mut e = Ewma::new(0.3);
        e.fold_constant(7.0, 3);
        assert_eq!(e.value(), Some(7.0));
        // n = 0 is a no-op.
        let mut e = Ewma::new(0.3);
        e.fold_constant(7.0, 0);
        assert_eq!(e.value(), None);
        // Huge n decays to x without iterating.
        let mut e = Ewma::new(0.3);
        e.observe(123.0);
        e.fold_constant(0.0, 1_000_000_000_000);
        assert_eq!(e.value(), Some(0.0));
    }

    #[test]
    fn ewma_reset() {
        let mut e = Ewma::new(0.3);
        e.observe(4.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.observe(7.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "EWMA weight")]
    fn ewma_rejects_zero_alpha() {
        Ewma::new(0.0);
    }

    /// Record `rate` req/s over (`from`, `to`], stamping each bucket at the
    /// *end* of its tick interval (the convention the controller uses).
    fn feed_constant(est: &mut DualWindowEstimator, rate: f64, from: f64, to: f64, tick: f64) {
        let mut t = from + tick;
        while t <= to + 1e-9 {
            est.record(t, (rate * tick).round() as u64);
            t += tick;
        }
    }

    #[test]
    fn steady_rate_is_recovered() {
        let mut est = DualWindowEstimator::default();
        feed_constant(&mut est, 10.0, 0.0, 240.0, 5.0);
        let r = est.rate(240.0);
        assert!((r - 10.0).abs() < 1.0, "rate={r}");
        assert!(!est.is_burst(240.0));
    }

    #[test]
    fn burst_switches_to_short_window() {
        let mut est = DualWindowEstimator::default();
        feed_constant(&mut est, 10.0, 0.0, 200.0, 5.0);
        // Load jumps 5x for the last 10 seconds.
        feed_constant(&mut est, 50.0, 200.0, 210.0, 5.0);
        assert!(
            est.is_burst(210.0),
            "short={} long={}",
            est.short_rate(210.0),
            est.long_rate(210.0)
        );
        let r = est.rate(210.0);
        assert!(r > 35.0, "burst-aware rate should follow short window: {r}");
    }

    #[test]
    fn small_increase_stays_on_long_window() {
        let mut est = DualWindowEstimator::default();
        feed_constant(&mut est, 10.0, 0.0, 200.0, 5.0);
        feed_constant(&mut est, 11.0, 200.0, 210.0, 5.0); // +10%, below 2x
        assert!(!est.is_burst(210.0));
        let r = est.rate(210.0);
        assert!(r < 12.0, "rate={r}");
    }

    #[test]
    fn cold_start_rate_uses_covered_span() {
        let mut est = DualWindowEstimator::default();
        est.record(0.0, 0);
        est.record(5.0, 50); // 50 arrivals in 5 s -> ~10/s
        let r = est.long_rate(5.0);
        assert!((r - 10.0).abs() < 2.0, "rate={r}");
    }

    #[test]
    fn old_buckets_are_evicted() {
        let mut est = DualWindowEstimator::new(20.0, 5.0, 2.0);
        feed_constant(&mut est, 100.0, 0.0, 30.0, 1.0);
        feed_constant(&mut est, 1.0, 30.0, 60.0, 1.0);
        // After 30s of quiet, the noisy prefix is gone from the 20 s window.
        let r = est.long_rate(60.0);
        assert!(r < 2.0, "rate={r}");
        assert!(est.buckets.len() <= 22);
    }

    #[test]
    fn empty_estimator_reports_zero() {
        let est = DualWindowEstimator::default();
        assert_eq!(est.rate(100.0), 0.0);
        assert!(!est.is_burst(100.0));
    }
}
