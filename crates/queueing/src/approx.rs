//! General-distribution queueing approximations — the paper's stated
//! future work (§8: "we have only considered Poisson arrival and service
//! processes. We can generalize our models to other inter-arrival/service
//! time distributions").
//!
//! For non-exponential service (M/G/c) and non-Poisson arrivals (G/G/c)
//! there is no closed-form waiting distribution, so we use the standard
//! engineering approximations:
//!
//! * **Allen–Cunneen / Kingman correction** — the mean wait scales the
//!   M/M/c mean by `(cₐ² + cₛ²)/2`, where `cₐ²`/`cₛ²` are the squared
//!   coefficients of variation of inter-arrival and service times
//!   (`cₐ² = 1` for Poisson, `cₛ² = 0` for deterministic service, `1` for
//!   exponential — where the formula collapses to exact M/M/c).
//! * **Exponential conditional-wait tail** — `P(W > t) ≈ P(W > 0) ·
//!   exp(−t / E[W | W > 0])`, exact for M/M/c and a good fit for moderate
//!   variability; this yields the waiting-percentile bound the container
//!   solver needs.

use crate::mmc::{MmcQueue, QueueError};
use crate::solver::{SolverConfig, SolverError, SolverResult};
use serde::{Deserialize, Serialize};

/// Variability description of a workload: squared coefficients of
/// variation of inter-arrival and service times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Variability {
    /// Squared CV of inter-arrival times (1 = Poisson).
    pub ca2: f64,
    /// Squared CV of service times (1 = exponential, 0 = deterministic).
    pub cs2: f64,
}

impl Variability {
    /// Poisson arrivals, exponential service — the exact M/M/c case.
    pub const MARKOVIAN: Variability = Variability { ca2: 1.0, cs2: 1.0 };

    /// Poisson arrivals, deterministic service (M/D/c).
    pub const DETERMINISTIC_SERVICE: Variability = Variability { ca2: 1.0, cs2: 0.0 };

    /// Build from a service-time coefficient of variation (Poisson
    /// arrivals): `cs2 = cv²`.
    pub fn from_service_cv(cv: f64) -> Self {
        assert!(cv >= 0.0 && cv.is_finite());
        Variability {
            ca2: 1.0,
            cs2: cv * cv,
        }
    }

    /// The Allen–Cunneen correction factor `(ca² + cs²) / 2`.
    pub fn correction(&self) -> f64 {
        (self.ca2 + self.cs2) / 2.0
    }
}

/// Approximate G/G/c queue built on the exact M/M/c backbone.
#[derive(Debug, Clone)]
pub struct GgcApprox {
    backbone: MmcQueue,
    variability: Variability,
}

impl GgcApprox {
    /// Build the approximation. Validation matches [`MmcQueue::new`].
    pub fn new(lambda: f64, mu: f64, c: u32, variability: Variability) -> Result<Self, QueueError> {
        assert!(
            variability.ca2 >= 0.0 && variability.cs2 >= 0.0,
            "squared CVs must be non-negative"
        );
        Ok(Self {
            backbone: MmcQueue::new(lambda, mu, c)?,
            variability,
        })
    }

    /// The underlying exact M/M/c model.
    pub fn backbone(&self) -> &MmcQueue {
        &self.backbone
    }

    /// Whether the system is stable.
    pub fn is_stable(&self) -> bool {
        self.backbone.is_stable()
    }

    /// Approximate mean wait: Allen–Cunneen scaling of the M/M/c mean.
    pub fn mean_wait(&self) -> f64 {
        self.backbone.mean_wait() * self.variability.correction()
    }

    /// Probability an arriving request waits at all. The delay probability
    /// is kept at the Erlang-C value (the standard choice; variability
    /// mostly stretches the conditional wait, not the chance of queueing).
    pub fn wait_probability(&self) -> f64 {
        self.backbone.erlang_c()
    }

    /// Approximate `P(W ≤ t)` via the exponential conditional-wait tail.
    /// Exact for `Variability::MARKOVIAN`.
    pub fn wait_cdf(&self, t: f64) -> f64 {
        approx_wait_cdf(
            self.is_stable(),
            self.wait_probability(),
            self.mean_wait(),
            t,
        )
    }

    /// Smallest `t` with `P(W ≤ t) ≥ p`.
    pub fn wait_percentile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p));
        if !self.is_stable() {
            return f64::INFINITY;
        }
        let pw = self.wait_probability();
        if pw <= 1.0 - p {
            return 0.0;
        }
        let cond = self.mean_wait() / pw;
        cond * (pw / (1.0 - p)).ln()
    }
}

/// The exponential conditional-wait tail shared by [`GgcApprox::wait_cdf`]
/// and the allocation-free solver sweep, so the two paths cannot drift.
fn approx_wait_cdf(stable: bool, pw: f64, mean_wait: f64, t: f64) -> f64 {
    assert!(t >= 0.0);
    if !stable {
        return 0.0;
    }
    if pw <= 0.0 {
        return 1.0;
    }
    if mean_wait <= 0.0 {
        return 1.0;
    }
    // E[W | W > 0] = E[W] / P(W > 0).
    let cond = mean_wait / pw;
    (1.0 - pw * (-t / cond).exp()).clamp(0.0, 1.0)
}

/// Container solver for general distributions: the smallest `c` whose
/// approximate `P(W ≤ t)` meets the target percentile. With
/// `Variability::MARKOVIAN` this mirrors Algorithm 1 on the exact
/// waiting-time CDF.
///
/// The `c` sweep evaluates the M/M/c backbone through one reused
/// [`ErlangScratch`](crate::mmc::ErlangScratch): `(λ, μ)` is fixed, so
/// each step extends the state-probability recurrence by one term
/// instead of rebuilding (and re-allocating) the whole model — the
/// results are bit-identical to the per-`c` [`GgcApprox`] construction.
pub fn required_containers_general(
    lambda: f64,
    mu: f64,
    variability: Variability,
    t: f64,
    cfg: &SolverConfig,
) -> Result<SolverResult, SolverError> {
    if t <= 0.0 || t.is_nan() {
        return Err(SolverError::BudgetExhausted { budget: t });
    }
    assert!(
        variability.ca2 >= 0.0 && variability.cs2 >= 0.0,
        "squared CVs must be non-negative"
    );
    let r = lambda / mu;
    let mut c = (r.floor() as u32).saturating_add(1).max(1);
    let mut iterations = 0u32;
    let mut best = 0.0f64;
    let mut scratch = crate::mmc::ErlangScratch::new();
    while c <= cfg.max_containers {
        iterations += 1;
        let snap = scratch.eval(lambda, mu, c).map_err(SolverError::from)?;
        let mean_wait = snap.mean_wait() * variability.correction();
        let p = approx_wait_cdf(snap.is_stable(), snap.erlang_c(), mean_wait, t);
        best = best.max(p);
        if p >= cfg.target_percentile {
            return Ok(SolverResult {
                containers: c,
                achieved: p,
                iterations,
            });
        }
        c += 1;
    }
    Err(SolverError::Infeasible {
        max_containers: cfg.max_containers,
        best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::required_containers_exact;

    #[test]
    fn markovian_case_matches_exact_mmc() {
        let q = GgcApprox::new(20.0, 5.0, 6, Variability::MARKOVIAN).unwrap();
        let exact = MmcQueue::new(20.0, 5.0, 6).unwrap();
        assert!((q.mean_wait() - exact.mean_wait()).abs() < 1e-12);
        for &t in &[0.0, 0.05, 0.1, 0.5] {
            assert!((q.wait_cdf(t) - exact.wait_cdf(t)).abs() < 1e-12, "t={t}");
        }
        assert!((q.wait_percentile(0.95) - exact.wait_percentile(0.95)).abs() < 1e-9);
    }

    #[test]
    fn deterministic_service_halves_the_wait() {
        let md = GgcApprox::new(20.0, 5.0, 6, Variability::DETERMINISTIC_SERVICE).unwrap();
        let mm = MmcQueue::new(20.0, 5.0, 6).unwrap();
        assert!((md.mean_wait() - mm.mean_wait() / 2.0).abs() < 1e-12);
        // Shorter waits => higher CDF everywhere.
        for &t in &[0.01, 0.05, 0.1] {
            assert!(md.wait_cdf(t) >= mm.wait_cdf(t));
        }
    }

    #[test]
    fn heavier_variability_needs_more_containers() {
        let cfg = SolverConfig::default();
        let low =
            required_containers_general(40.0, 10.0, Variability::from_service_cv(0.5), 0.05, &cfg)
                .unwrap();
        let mid =
            required_containers_general(40.0, 10.0, Variability::MARKOVIAN, 0.05, &cfg).unwrap();
        let high =
            required_containers_general(40.0, 10.0, Variability::from_service_cv(2.0), 0.05, &cfg)
                .unwrap();
        assert!(low.containers <= mid.containers);
        assert!(mid.containers <= high.containers);
        assert!(
            high.containers > low.containers,
            "cv=2 ({}c) must need more than cv=0.5 ({}c)",
            high.containers,
            low.containers
        );
    }

    #[test]
    fn markovian_solver_close_to_algorithm1() {
        // Same target on the exact CDF vs the paper's Eq-4 bound: answers
        // agree within one container across a sweep.
        let cfg = SolverConfig::default();
        for i in 1..=8 {
            let lambda = f64::from(i) * 10.0;
            let a = required_containers_general(lambda, 10.0, Variability::MARKOVIAN, 0.1, &cfg)
                .unwrap();
            let b = required_containers_exact(lambda, 10.0, 0.1, &cfg).unwrap();
            let diff = (i64::from(a.containers) - i64::from(b.containers)).abs();
            assert!(
                diff <= 1,
                "λ={lambda}: general {} vs alg1 {}",
                a.containers,
                b.containers
            );
        }
    }

    #[test]
    fn bursty_arrivals_also_increase_the_requirement() {
        let cfg = SolverConfig::default();
        let poisson =
            required_containers_general(40.0, 10.0, Variability::MARKOVIAN, 0.05, &cfg).unwrap();
        let bursty =
            required_containers_general(40.0, 10.0, Variability { ca2: 4.0, cs2: 1.0 }, 0.05, &cfg)
                .unwrap();
        assert!(bursty.containers > poisson.containers);
    }

    #[test]
    fn percentile_inverts_cdf() {
        let q = GgcApprox::new(30.0, 5.0, 8, Variability::from_service_cv(1.5)).unwrap();
        for &p in &[0.5, 0.9, 0.99] {
            let t = q.wait_percentile(p);
            if t > 0.0 {
                assert!((q.wait_cdf(t) - p).abs() < 1e-9, "p={p}");
            }
        }
    }

    #[test]
    fn unstable_limits() {
        let q = GgcApprox::new(100.0, 5.0, 3, Variability::MARKOVIAN).unwrap();
        assert!(!q.is_stable());
        assert_eq!(q.wait_cdf(1.0), 0.0);
        assert_eq!(q.wait_percentile(0.9), f64::INFINITY);
    }

    /// The allocation-free sweep must reproduce the per-`c` GgcApprox
    /// evaluation exactly: same container counts, same achieved
    /// percentile bits.
    #[test]
    fn scratch_sweep_matches_per_c_construction() {
        let cfg = SolverConfig::default();
        for &(lambda, cv) in &[(10.0, 1.0), (40.0, 0.5), (95.0, 2.0)] {
            let v = Variability::from_service_cv(cv);
            let got = required_containers_general(lambda, 10.0, v, 0.05, &cfg).unwrap();
            // Reference: evaluate each c with a fresh GgcApprox.
            let mut c = ((lambda / 10.0).floor() as u32).saturating_add(1).max(1);
            let want = loop {
                let q = GgcApprox::new(lambda, 10.0, c, v).unwrap();
                let p = q.wait_cdf(0.05);
                if p >= cfg.target_percentile {
                    break (c, p);
                }
                c += 1;
            };
            assert_eq!(got.containers, want.0, "λ={lambda} cv={cv}");
            assert_eq!(
                got.achieved.to_bits(),
                want.1.to_bits(),
                "λ={lambda} cv={cv}"
            );
        }
    }

    #[test]
    fn zero_budget_rejected() {
        let err = required_containers_general(
            10.0,
            10.0,
            Variability::MARKOVIAN,
            0.0,
            &SolverConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SolverError::BudgetExhausted { .. }));
    }
}
