//! Algorithm 1 of the LaSS paper: the iterative procedure that finds the
//! smallest number of containers `c` such that a target percentile of
//! requests waits no longer than a budget `t`.
//!
//! The controller derives `t` from the SLO deadline `d` by subtracting a
//! high percentile of the service time: `t = d − s_pXX` (see
//! [`wait_budget`]). The solver then grows `c` from the current allocation
//! until `P(Q ≤ t) ≥ target` under the M/M/c model.

use crate::mmc::{MmcQueue, QueueError};
use serde::{Deserialize, Serialize};

/// Tuning knobs for the container solver.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Target percentile of the waiting-time distribution that must fall
    /// inside the budget (the paper drives the sum in Eq. 4 to 0.99; the
    /// evaluation measures the 95th percentile).
    pub target_percentile: f64,
    /// Hard cap on the number of containers the solver will consider. This
    /// is a safety net against pathological inputs (e.g. `t ≈ 0` with a slow
    /// service rate), not a cluster-capacity limit — capacity is enforced by
    /// the fair-share layer.
    pub max_containers: u32,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            target_percentile: 0.99,
            max_containers: 100_000,
        }
    }
}

/// Outcome of a successful solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverResult {
    /// The smallest container count that meets the target.
    pub containers: u32,
    /// The achieved `P(Q ≤ t)` at that count.
    pub achieved: f64,
    /// Number of candidate counts examined (for scalability reporting,
    /// cf. Fig. 5).
    pub iterations: u32,
}

/// Errors from the container solver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SolverError {
    /// The underlying queueing model rejected the parameters.
    Model(String),
    /// No feasible count at or below `max_containers` meets the target.
    Infeasible {
        /// The cap that was hit.
        max_containers: u32,
        /// Best achieved probability at the cap.
        best: f64,
    },
    /// The wait budget is not positive — the SLO deadline does not even
    /// cover the service-time percentile, so no container count can help.
    BudgetExhausted {
        /// The (non-positive) budget that was computed.
        budget: f64,
    },
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::Model(e) => write!(f, "queueing model error: {e}"),
            SolverError::Infeasible {
                max_containers,
                best,
            } => write!(
                f,
                "no allocation ≤ {max_containers} containers meets the target (best {best:.4})"
            ),
            SolverError::BudgetExhausted { budget } => write!(
                f,
                "wait budget {budget:.4}s is non-positive; the SLO cannot be met at any scale"
            ),
        }
    }
}

impl std::error::Error for SolverError {}

impl From<QueueError> for SolverError {
    fn from(e: QueueError) -> Self {
        SolverError::Model(e.to_string())
    }
}

/// The wait budget the paper derives from the SLO: `t = d − s_p`, where
/// `d` is the SLO deadline and `s_p` a high percentile of the service time.
/// Callers that enforce the SLO on the *waiting time only* (as the paper's
/// evaluation does: "95% of requests should start being processed within
/// 100 ms") pass `service_percentile = 0.0`.
#[inline]
pub fn wait_budget(slo_deadline: f64, service_percentile_time: f64) -> f64 {
    slo_deadline - service_percentile_time
}

/// Algorithm 1: find the smallest `c ≥ start_c.max(1)` such that
/// `P(Q ≤ t) ≥ cfg.target_percentile` under M/M/c(λ, μ).
///
/// `start_c` is the current allocation ("number of containers in the
/// system", line 1 of Algorithm 1); starting the scan there makes epoch
/// re-solves incremental. Note that the returned count can therefore never
/// *shrink* below `start_c`; scale-down decisions re-run the solver from 1
/// (see [`required_containers_exact`]).
pub fn required_containers(
    lambda: f64,
    mu: f64,
    t: f64,
    start_c: u32,
    cfg: &SolverConfig,
) -> Result<SolverResult, SolverError> {
    if t <= 0.0 || t.is_nan() {
        return Err(SolverError::BudgetExhausted { budget: t });
    }
    let mut c = start_c.max(1);
    // Skip straight past guaranteed-unstable counts: stability needs c > r.
    let r = lambda / mu;
    if f64::from(c) <= r {
        c = (r.floor() as u32).saturating_add(1);
    }
    let mut iterations = 0u32;
    let mut best = 0.0f64;
    while c <= cfg.max_containers {
        iterations += 1;
        let q = MmcQueue::new(lambda, mu, c)?;
        let p = q.wait_probability_bound(t);
        best = best.max(p);
        if p >= cfg.target_percentile {
            return Ok(SolverResult {
                containers: c,
                achieved: p,
                iterations,
            });
        }
        c += 1;
    }
    Err(SolverError::Infeasible {
        max_containers: cfg.max_containers,
        best,
    })
}

/// Like [`required_containers`] but always scans from `c = 1`, returning
/// the true minimum (used when the controller considers scaling *down*).
///
/// ```
/// use lass_queueing::{required_containers_exact, SolverConfig};
///
/// // 50 req/s, 100 ms service time, 100 ms waiting budget at P99:
/// let res = required_containers_exact(50.0, 10.0, 0.1, &SolverConfig::default()).unwrap();
/// assert_eq!(res.containers, 8);
/// assert!(res.achieved >= 0.99);
/// ```
pub fn required_containers_exact(
    lambda: f64,
    mu: f64,
    t: f64,
    cfg: &SolverConfig,
) -> Result<SolverResult, SolverError> {
    required_containers(lambda, mu, t, 1, cfg)
}

/// Convenience wrapper: derive the wait budget from an SLO deadline and a
/// service-time percentile, then solve.
pub fn required_containers_for_slo(
    lambda: f64,
    mu: f64,
    slo_deadline: f64,
    service_percentile_time: f64,
    cfg: &SolverConfig,
) -> Result<SolverResult, SolverError> {
    required_containers(
        lambda,
        mu,
        wait_budget(slo_deadline, service_percentile_time),
        1,
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: SolverConfig = SolverConfig {
        target_percentile: 0.99,
        max_containers: 100_000,
    };

    #[test]
    fn solution_meets_target_and_is_minimal() {
        for &(lambda, mu, t) in &[
            (10.0, 10.0, 0.1),
            (30.0, 5.0, 0.1),
            (50.0, 10.0, 0.2),
            (100.0, 2.0, 0.05),
        ] {
            let res = required_containers_exact(lambda, mu, t, &CFG).unwrap();
            assert!(res.achieved >= 0.99);
            let c = res.containers;
            if c > 1 {
                let q = MmcQueue::new(lambda, mu, c - 1).unwrap();
                assert!(
                    q.wait_probability_bound(t) < 0.99,
                    "c-1={} already satisfies target for λ={lambda}, μ={mu}, t={t}",
                    c - 1
                );
            }
        }
    }

    #[test]
    fn more_load_never_needs_fewer_containers() {
        let mut last = 0;
        for i in 1..=30 {
            let lambda = f64::from(i) * 5.0;
            let res = required_containers_exact(lambda, 10.0, 0.1, &CFG).unwrap();
            assert!(res.containers >= last, "λ={lambda}");
            last = res.containers;
        }
    }

    #[test]
    fn tighter_budget_never_needs_fewer_containers() {
        let mut last = 0;
        for i in (1..=20).rev() {
            let t = f64::from(i) * 0.02;
            let res = required_containers_exact(30.0, 5.0, t, &CFG).unwrap();
            assert!(res.containers >= last, "t={t}");
            last = res.containers;
        }
    }

    #[test]
    fn starts_from_current_allocation() {
        let res = required_containers(10.0, 10.0, 0.1, 7, &CFG).unwrap();
        assert!(res.containers >= 7);
        // The incremental scan should touch few candidates.
        assert!(res.iterations <= 2);
    }

    #[test]
    fn zero_budget_is_rejected() {
        let err = required_containers_exact(10.0, 10.0, 0.0, &CFG).unwrap_err();
        assert!(matches!(err, SolverError::BudgetExhausted { .. }));
    }

    #[test]
    fn infeasible_when_capped() {
        let cfg = SolverConfig {
            target_percentile: 0.99,
            max_containers: 3,
        };
        let err = required_containers_exact(100.0, 1.0, 0.01, &cfg).unwrap_err();
        assert!(matches!(err, SolverError::Infeasible { .. }));
    }

    #[test]
    fn wait_budget_subtracts_service_tail() {
        assert!((wait_budget(0.2, 0.05) - 0.15).abs() < 1e-12);
        assert!(wait_budget(0.1, 0.2) < 0.0);
    }

    #[test]
    fn paper_fig3_regimes_are_modest() {
        // Fig 3 configurations: μ ∈ {5, 10}, SLO ∈ {100ms, 200ms} on waiting
        // time, λ ∈ 10..50. Allocations should stay small (single digits to
        // low tens) — sanity check the model is not wildly over-provisioning.
        for &mu in &[5.0, 10.0] {
            for &t in &[0.1, 0.2] {
                for i in 1..=5 {
                    let lambda = f64::from(i) * 10.0;
                    let res = required_containers_exact(lambda, mu, t, &CFG).unwrap();
                    let lower = (lambda / mu).ceil() as u32;
                    assert!(res.containers >= lower);
                    assert!(
                        res.containers <= lower + 12,
                        "λ={lambda} μ={mu} t={t}: c={}",
                        res.containers
                    );
                }
            }
        }
    }

    #[test]
    fn skips_unstable_prefix() {
        // λ/μ = 50, so the solver must start at c ≥ 51 without iterating
        // through the 50 unstable counts.
        let res = required_containers(100.0, 2.0, 0.5, 1, &CFG).unwrap();
        assert!(res.containers >= 51);
        assert!(res.iterations < 30, "iterations={}", res.iterations);
    }
}
