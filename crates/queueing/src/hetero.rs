//! Worst-case bounds for *heterogeneous* M/M/c queues (Alves et al. 2011),
//! as used by LaSS when container deflation leaves a function with
//! containers of unequal size (§3.2, Eq. 5–6).
//!
//! The bound assumes an adversarial scheduler that always occupies the
//! slowest containers first, which upper-bounds the state probabilities and
//! hence lower-bounds `P(Q ≤ t)`; provisioning against it is conservative.
//!
//! Two evaluation strategies are provided:
//!
//! * [`HeteroMmc`] — incremental **log-space** recurrences, numerically
//!   stable to thousands of containers (the paper's "Julia" implementation
//!   analogue, cf. §6.3),
//! * [`HeteroMmcNaive`] — direct floating-point products of Eq. 5–6 (the
//!   "Scala" implementation analogue, which the paper reports "was not able
//!   to compute the results in some cases due to its precision
//!   limitations"). Kept public so the scalability experiment (Fig. 5) and
//!   the solver-ablation bench can reproduce the breakdown.

use crate::mmc::{log_sum_exp, QueueError};
use crate::solver::{SolverConfig, SolverError, SolverResult};

/// Worst-case heterogeneous M/M/c model, log-space implementation.
///
/// Container service rates are sorted ascending internally (the bound is
/// defined in terms of the slowest-first prefix sums `S_k = Σ_{j≤k} μ_j`).
#[derive(Debug, Clone)]
pub struct HeteroMmc {
    lambda: f64,
    /// Sorted ascending.
    mus: Vec<f64>,
    /// Prefix sums `S_k` for `k = 1..=c` (index 0 → S_1).
    prefix: Vec<f64>,
    /// `log_terms[n] = ln(λ^n / Π_{k≤n} S_k)` for `0 ≤ n ≤ c`.
    log_terms: Vec<f64>,
    /// Log normalization constant (∞ when unstable).
    log_z: f64,
}

impl HeteroMmc {
    /// Build the model from the arrival rate and per-container service
    /// rates (any order; they are sorted internally).
    pub fn new(lambda: f64, mut mus: Vec<f64>) -> Result<Self, QueueError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(QueueError::InvalidArrivalRate);
        }
        if mus.is_empty() {
            return Err(QueueError::ZeroServers);
        }
        if mus.iter().any(|m| !(m.is_finite() && *m > 0.0)) {
            return Err(QueueError::InvalidServiceRate);
        }
        mus.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        let mut model = Self {
            lambda,
            mus: Vec::new(),
            prefix: Vec::new(),
            log_terms: vec![0.0],
            log_z: f64::INFINITY,
        };
        for mu in mus {
            model.push_container_unnormalized(mu);
        }
        model.renormalize();
        Ok(model)
    }

    /// Append one container of rate `mu` (O(c) due to re-sorting only when
    /// needed; O(1) amortized when appending the fastest rate, which is the
    /// controller's common case of adding standard-size containers).
    pub fn push_container(&mut self, mu: f64) {
        assert!(mu.is_finite() && mu > 0.0, "service rate must be positive");
        if self.mus.last().is_some_and(|&last| mu < last) {
            // Slower than an existing container: rebuild sorted.
            let mut mus = self.mus.clone();
            mus.push(mu);
            *self = Self::new(self.lambda, mus).expect("rates already validated");
        } else {
            self.push_container_unnormalized(mu);
            self.renormalize();
        }
    }

    fn push_container_unnormalized(&mut self, mu: f64) {
        let s_prev = self.prefix.last().copied().unwrap_or(0.0);
        let s = s_prev + mu;
        self.mus.push(mu);
        self.prefix.push(s);
        let last = *self.log_terms.last().expect("log_terms starts non-empty");
        self.log_terms.push(last + self.lambda.ln() - s.ln());
    }

    fn renormalize(&mut self) {
        let c = self.mus.len();
        let rho = self.lambda / self.prefix[c - 1];
        self.log_z = if rho < 1.0 {
            let tail = self.log_terms[c] - (1.0 - rho).ln();
            let mut items: Vec<f64> = self.log_terms[..c].to_vec();
            items.push(tail);
            log_sum_exp(&items)
        } else {
            f64::INFINITY
        };
    }

    /// Number of containers.
    #[inline]
    pub fn servers(&self) -> usize {
        self.mus.len()
    }

    /// Arrival rate λ.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Sorted (ascending) per-container service rates.
    #[inline]
    pub fn rates(&self) -> &[f64] {
        &self.mus
    }

    /// Aggregate service rate `S_c = Σ μ_j`.
    #[inline]
    pub fn aggregate_rate(&self) -> f64 {
        *self.prefix.last().expect("at least one container")
    }

    /// Worst-case utilization `λ / S_c`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.lambda / self.aggregate_rate()
    }

    /// Whether the worst-case system is stable.
    #[inline]
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// Upper-bound probability of an empty system.
    pub fn p0(&self) -> f64 {
        (-self.log_z).exp()
    }

    /// Worst-case steady-state probability `P_n` (Eq. 5 for `n < c`, Eq. 6
    /// geometric tail for `n ≥ c`).
    pub fn p_n(&self, n: u64) -> f64 {
        if !self.is_stable() {
            return 0.0;
        }
        let c = self.servers() as u64;
        let log_pn = if n <= c {
            self.log_terms[n as usize] - self.log_z
        } else {
            let log_rho = self.utilization().ln();
            self.log_terms[c as usize] + (n - c) as f64 * log_rho - self.log_z
        };
        log_pn.exp()
    }

    /// `Σ_{n=0}^{l} P_n` under the worst-case bound.
    pub fn cumulative_p(&self, l: u64) -> f64 {
        if !self.is_stable() {
            return 0.0;
        }
        let c = self.servers() as u64;
        let head_top = l.min(c - 1);
        let mut logs: Vec<f64> = (0..=head_top)
            .map(|n| self.log_terms[n as usize] - self.log_z)
            .collect();
        if l >= c {
            let rho = self.utilization();
            let k = (l - c + 1) as f64;
            let log_pc = self.log_terms[c as usize] - self.log_z;
            logs.push(log_pc + ((1.0 - rho.powf(k)) / (1.0 - rho)).ln());
        }
        log_sum_exp(&logs).exp().min(1.0)
    }

    /// The heterogeneous analogue of the paper's Eq. 3–4 waiting bound: a
    /// request that sees `n ≥ c` in the system drains at the aggregate rate
    /// `S_c`, so occupancy up to `L = ⌊ t·S_c + c − 1 ⌋` keeps the expected
    /// wait within `t`; the bound is `Σ_{n≤L} P_n`.
    pub fn wait_probability_bound(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "wait budget must be non-negative");
        if !self.is_stable() {
            return 0.0;
        }
        let c = self.servers() as f64;
        let l = (t * self.aggregate_rate() + c - 1.0).floor();
        if l < 0.0 {
            return 0.0;
        }
        self.cumulative_p(l as u64)
    }
}

/// Numerically *naive* implementation of the same bound: direct `f64`
/// products, exactly as Eq. 5–6 read. Overflows/underflows for large `c`
/// or high loads — see the `fig5` harness and solver-ablation benchmark.
#[derive(Debug, Clone)]
pub struct HeteroMmcNaive {
    lambda: f64,
    mus: Vec<f64>,
}

impl HeteroMmcNaive {
    /// Build the naive model (same validation as [`HeteroMmc`]).
    pub fn new(lambda: f64, mut mus: Vec<f64>) -> Result<Self, QueueError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(QueueError::InvalidArrivalRate);
        }
        if mus.is_empty() {
            return Err(QueueError::ZeroServers);
        }
        if mus.iter().any(|m| !(m.is_finite() && *m > 0.0)) {
            return Err(QueueError::InvalidServiceRate);
        }
        mus.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        Ok(Self { lambda, mus })
    }

    /// Direct-evaluation waiting bound. Returns `None` when the computation
    /// loses all precision (NaN/0/∞ intermediates) — the failure mode the
    /// paper attributes to its Scala implementation.
    pub fn wait_probability_bound(&self, t: f64) -> Option<f64> {
        let c = self.mus.len();
        let s_c: f64 = self.mus.iter().sum();
        if self.lambda >= s_c {
            return Some(0.0);
        }
        // Unnormalized terms.
        let mut terms = Vec::with_capacity(c + 1);
        terms.push(1.0f64);
        let mut s = 0.0;
        for &mu in &self.mus {
            s += mu;
            let prev = *terms.last().expect("non-empty");
            terms.push(prev * self.lambda / s);
        }
        let rho = self.lambda / s_c;
        let z: f64 = terms[..c].iter().sum::<f64>() + terms[c] / (1.0 - rho);
        if !z.is_finite() || z <= 0.0 {
            return None;
        }
        let l = (t * s_c + c as f64 - 1.0).floor();
        if l < 0.0 {
            return Some(0.0);
        }
        let l = l as usize;
        let mut sum = 0.0;
        for (n, term) in terms.iter().enumerate().take(c.min(l + 1)) {
            let _ = n;
            sum += term / z;
        }
        if l >= c {
            let k = (l - c + 1) as f64;
            sum += terms[c] / z * (1.0 - rho.powf(k)) / (1.0 - rho);
        }
        if sum.is_nan() {
            None
        } else {
            Some(sum.min(1.0))
        }
    }
}

/// Iterative solver for the heterogeneous case: starting from the rates of
/// the *existing* (possibly deflated) containers, add containers of rate
/// `added_mu` (standard size) until the worst-case bound meets the target.
///
/// Returns the number of **additional** containers required. Uses the
/// incremental log-space model, so each added container costs O(1) model
/// update plus an O(c) bound evaluation.
pub fn required_additional_containers(
    lambda: f64,
    existing_mus: &[f64],
    added_mu: f64,
    t: f64,
    cfg: &SolverConfig,
) -> Result<SolverResult, SolverError> {
    if t <= 0.0 || t.is_nan() {
        return Err(SolverError::BudgetExhausted { budget: t });
    }
    if !(added_mu.is_finite() && added_mu > 0.0) {
        return Err(SolverError::Model(
            QueueError::InvalidServiceRate.to_string(),
        ));
    }
    let mut model = if existing_mus.is_empty() {
        HeteroMmc::new(lambda, vec![added_mu]).map_err(SolverError::from)?
    } else {
        HeteroMmc::new(lambda, existing_mus.to_vec()).map_err(SolverError::from)?
    };
    let base = existing_mus.len();
    let mut iterations = 0u32;
    let mut best = 0.0f64;
    loop {
        iterations += 1;
        let p = if model.is_stable() {
            model.wait_probability_bound(t)
        } else {
            0.0
        };
        best = best.max(p);
        if p >= cfg.target_percentile {
            return Ok(SolverResult {
                containers: (model.servers() - base) as u32,
                achieved: p,
                iterations,
            });
        }
        if model.servers() >= cfg.max_containers as usize {
            return Err(SolverError::Infeasible {
                max_containers: cfg.max_containers,
                best,
            });
        }
        model.push_container(added_mu);
    }
}

/// Naive-implementation counterpart of [`required_additional_containers`]:
/// rebuilds the direct-float model from scratch on every candidate count.
/// Returns `None` when the floating-point evaluation loses all precision —
/// the failure mode the paper reports for its Scala implementation at
/// large container counts ("was not able to compute the results in some
/// cases due to its precision limitations", §6.3).
pub fn required_additional_containers_naive(
    lambda: f64,
    existing_mus: &[f64],
    added_mu: f64,
    t: f64,
    cfg: &SolverConfig,
) -> Option<SolverResult> {
    if t <= 0.0 || t.is_nan() || !(added_mu.is_finite() && added_mu > 0.0) {
        return None;
    }
    let mut mus = existing_mus.to_vec();
    if mus.is_empty() {
        mus.push(added_mu);
    }
    let base = existing_mus.len();
    let mut iterations = 0u32;
    loop {
        iterations += 1;
        let model = HeteroMmcNaive::new(lambda, mus.clone()).ok()?;
        let p = model.wait_probability_bound(t)?;
        if p >= cfg.target_percentile {
            return Some(SolverResult {
                containers: (mus.len() - base) as u32,
                achieved: p,
                iterations,
            });
        }
        if mus.len() >= cfg.max_containers as usize {
            return None;
        }
        mus.push(added_mu);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mmc::MmcQueue;
    use crate::solver::required_containers_exact;

    #[test]
    fn homogeneous_rates_match_mmc() {
        let lambda = 20.0;
        let mu = 5.0;
        let c = 7;
        let het = HeteroMmc::new(lambda, vec![mu; c]).unwrap();
        let hom = MmcQueue::new(lambda, mu, c as u32).unwrap();
        assert!(
            (het.p0() - hom.p0()).abs() < 1e-10,
            "{} vs {}",
            het.p0(),
            hom.p0()
        );
        for n in 0..30u64 {
            assert!(
                (het.p_n(n) - hom.p_n(n)).abs() < 1e-10,
                "n={n}: {} vs {}",
                het.p_n(n),
                hom.p_n(n)
            );
        }
        for &t in &[0.0, 0.01, 0.05, 0.1, 0.5] {
            assert!(
                (het.wait_probability_bound(t) - hom.wait_probability_bound(t)).abs() < 1e-10,
                "t={t}"
            );
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let het = HeteroMmc::new(12.0, vec![2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let mut sum = 0.0;
        for n in 0..100_000u64 {
            sum += het.p_n(n);
            if sum > 1.0 - 1e-13 {
                break;
            }
        }
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
    }

    #[test]
    fn worst_case_bound_is_conservative_vs_homogeneous_mean() {
        // Replacing two fast containers with the same aggregate capacity
        // split unevenly must not *increase* the bound (slowest-first
        // worst case penalizes heterogeneity).
        let even = HeteroMmc::new(8.0, vec![5.0, 5.0, 5.0]).unwrap();
        let skew = HeteroMmc::new(8.0, vec![2.0, 5.0, 8.0]).unwrap();
        for &t in &[0.01, 0.05, 0.1, 0.3] {
            assert!(
                skew.wait_probability_bound(t) <= even.wait_probability_bound(t) + 1e-9,
                "t={t}"
            );
        }
    }

    #[test]
    fn push_container_matches_fresh_build() {
        let mut inc = HeteroMmc::new(9.0, vec![2.0, 3.0]).unwrap();
        inc.push_container(4.0);
        inc.push_container(3.5); // out of order: forces re-sort path
        let fresh = HeteroMmc::new(9.0, vec![2.0, 3.0, 4.0, 3.5]).unwrap();
        assert_eq!(inc.rates(), fresh.rates());
        assert!((inc.p0() - fresh.p0()).abs() < 1e-12);
        assert!(
            (inc.wait_probability_bound(0.1) - fresh.wait_probability_bound(0.1)).abs() < 1e-12
        );
    }

    #[test]
    fn unstable_heterogeneous_system() {
        let het = HeteroMmc::new(100.0, vec![1.0, 2.0]).unwrap();
        assert!(!het.is_stable());
        assert_eq!(het.wait_probability_bound(1.0), 0.0);
        assert_eq!(het.p_n(0), 0.0);
    }

    #[test]
    fn additional_containers_cover_deflated_fleet() {
        // 4 deflated containers at 60% speed; standard rate 10. Budget 100ms.
        let cfg = SolverConfig::default();
        let existing = vec![6.0; 4];
        let res = required_additional_containers(50.0, &existing, 10.0, 0.1, &cfg).unwrap();
        assert!(res.achieved >= cfg.target_percentile);
        // Must need at least enough aggregate capacity for stability:
        // 50 > 24 existing -> at least ceil((50-24)/10) = 3 more.
        assert!(res.containers >= 3, "got {}", res.containers);
        // And the count should agree with a fresh (non-incremental) solve.
        let mut mus = existing.clone();
        mus.extend(std::iter::repeat_n(10.0, res.containers as usize - 1));
        let under = HeteroMmc::new(50.0, mus).unwrap();
        assert!(under.wait_probability_bound(0.1) < cfg.target_percentile);
    }

    #[test]
    fn hetero_needs_no_more_than_all_slow_and_no_less_than_all_fast() {
        // Sandwich property: required count with mixed rates lies between
        // the all-fast and all-slow homogeneous requirements.
        let cfg = SolverConfig::default();
        let t = 0.1;
        let lambda = 40.0;
        let res_mixed = required_additional_containers(lambda, &[], 10.0, t, &cfg).unwrap();
        let res_hom = required_containers_exact(lambda, 10.0, t, &cfg).unwrap();
        // With no existing containers and all additions at the standard
        // rate, the hetero solver degenerates to the homogeneous case.
        assert_eq!(res_mixed.containers, res_hom.containers);
    }

    #[test]
    fn naive_matches_logspace_at_small_scale() {
        let lambda = 20.0;
        let mus = vec![3.0, 4.0, 5.0, 5.0, 6.0, 7.0];
        let naive = HeteroMmcNaive::new(lambda, mus.clone()).unwrap();
        let stable = HeteroMmc::new(lambda, mus).unwrap();
        for &t in &[0.01, 0.05, 0.1] {
            let n = naive
                .wait_probability_bound(t)
                .expect("small scale must not fail");
            let s = stable.wait_probability_bound(t);
            assert!((n - s).abs() < 1e-9, "t={t}: naive={n} logspace={s}");
        }
    }

    #[test]
    fn naive_breaks_down_at_large_scale_logspace_does_not() {
        // 3000 containers at rate 1 with λ=2500: the unnormalized naive
        // terms overflow/underflow f64.
        let c = 3000usize;
        let lambda = 2500.0;
        let mus = vec![1.0; c];
        let stable = HeteroMmc::new(lambda, mus.clone()).unwrap();
        let b = stable.wait_probability_bound(0.5);
        assert!((0.0..=1.0).contains(&b) && b > 0.0, "log-space bound={b}");
        let naive = HeteroMmcNaive::new(lambda, mus).unwrap();
        match naive.wait_probability_bound(0.5) {
            None => {} // expected precision failure
            Some(v) => {
                // If it returns, it must be badly wrong or degenerate.
                assert!(
                    (v - b).abs() > 1e-3 || !(0.0..=1.0).contains(&v),
                    "naive unexpectedly exact at c={c}: {v} vs {b}"
                );
            }
        }
    }

    #[test]
    fn naive_solver_agrees_with_logspace_at_small_scale() {
        let cfg = SolverConfig::default();
        let existing = vec![6.0, 7.0, 8.0];
        let fast = required_additional_containers(30.0, &existing, 10.0, 0.1, &cfg).unwrap();
        let naive = required_additional_containers_naive(30.0, &existing, 10.0, 0.1, &cfg).unwrap();
        assert_eq!(fast.containers, naive.containers);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(HeteroMmc::new(-1.0, vec![1.0]).is_err());
        assert!(HeteroMmc::new(1.0, vec![]).is_err());
        assert!(HeteroMmc::new(1.0, vec![0.0]).is_err());
        assert!(HeteroMmcNaive::new(1.0, vec![f64::NAN]).is_err());
    }
}
