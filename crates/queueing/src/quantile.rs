//! Quantile estimation utilities.
//!
//! The online service-time learner (§5: "use an online learning algorithm
//! to learn the service time distribution(s) over time") needs streaming
//! quantiles with O(1) memory; we implement the classic P² algorithm of
//! Jain & Chlamtac. Exact percentiles over stored samples are also provided
//! for the evaluation harnesses (which report P95 waiting times).

use serde::{Deserialize, Serialize};

/// Exact percentile of a **sorted** slice with linear interpolation
/// (the "exclusive" variant used by most plotting tools). `p ∈ [0, 1]`.
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// A growable sample set with exact percentile queries. Sorting is deferred
/// and cached between queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExactPercentiles {
    samples: Vec<f64>,
    #[serde(skip)]
    sorted: bool,
}

impl ExactPercentiles {
    /// Empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample");
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Exact percentile (`p ∈ [0,1]`); `None` when empty.
    pub fn percentile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
        Some(percentile_of_sorted(&self.samples, p))
    }

    /// Sample mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Maximum sample; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }

    /// Read-only view of the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Streaming quantile estimation with the P² algorithm
/// (Jain & Chlamtac, CACM 1985): five markers, O(1) memory, O(1) update.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimated quantile values).
    q: [f64; 5],
    /// Marker positions (1-based ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Position increments per observation.
    dn: [f64; 5],
    count: usize,
    /// First five observations, used for initialization.
    init: Vec<f64>,
}

impl P2Quantile {
    /// Estimator for the `p`-quantile (`p ∈ (0, 1)`).
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1), got {p}");
        Self {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// The target quantile `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of observations folded in.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Fold in one observation.
    pub fn observe(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.count += 1;
        if self.count <= 5 {
            self.init.push(x);
            if self.count == 5 {
                self.init
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
                for (i, &v) in self.init.iter().enumerate() {
                    self.q[i] = v;
                }
            }
            return;
        }

        // Find cell k such that q[k] <= x < q[k+1]; adjust extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.q[i] && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for item in self.n.iter_mut().skip(k + 1) {
            *item += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (qm, q, qp) = (self.q[i - 1], self.q[i], self.q[i + 1]);
        let (nm, n, np) = (self.n[i - 1], self.n[i], self.n[i + 1]);
        q + d / (np - nm)
            * ((n - nm + d) * (qp - q) / (np - n) + (np - n - d) * (q - qm) / (n - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate of the `p`-quantile. `None` until at least one
    /// observation; exact for the first five.
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            1..=4 => {
                let mut v = self.init.clone();
                v.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
                Some(percentile_of_sorted(&v, self.p))
            }
            _ => Some(self.q[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_distr::{Distribution, Exp, Normal};

    #[test]
    fn exact_percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_of_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_of_sorted(&v, 1.0), 5.0);
        assert_eq!(percentile_of_sorted(&v, 0.5), 3.0);
        assert!((percentile_of_sorted(&v, 0.25) - 2.0).abs() < 1e-12);
        assert!((percentile_of_sorted(&v, 0.1) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn exact_percentile_singleton() {
        assert_eq!(percentile_of_sorted(&[42.0], 0.95), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn exact_percentile_rejects_empty() {
        percentile_of_sorted(&[], 0.5);
    }

    #[test]
    fn exact_percentiles_collection() {
        let mut ep = ExactPercentiles::new();
        assert!(ep.percentile(0.5).is_none());
        assert!(ep.mean().is_none());
        for i in (1..=100).rev() {
            ep.add(f64::from(i));
        }
        assert_eq!(ep.len(), 100);
        assert!((ep.percentile(0.5).unwrap() - 50.5).abs() < 1e-9);
        assert!((ep.mean().unwrap() - 50.5).abs() < 1e-9);
        assert_eq!(ep.max().unwrap(), 100.0);
        // Adding after a query invalidates the cache correctly.
        ep.add(1000.0);
        assert_eq!(ep.percentile(1.0).unwrap(), 1000.0);
    }

    #[test]
    fn p2_exact_for_first_observations() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), None);
        q.observe(3.0);
        assert_eq!(q.estimate(), Some(3.0));
        q.observe(1.0);
        q.observe(2.0);
        assert_eq!(q.estimate(), Some(2.0));
    }

    #[test]
    fn p2_median_of_uniform_stream() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut q = P2Quantile::new(0.5);
        for _ in 0..50_000 {
            q.observe(rng.gen::<f64>());
        }
        let est = q.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.02, "median estimate {est}");
    }

    #[test]
    fn p2_p99_of_exponential_stream() {
        let mut rng = StdRng::seed_from_u64(11);
        let exp = Exp::new(10.0).unwrap(); // mean 0.1, p99 = ln(100)/10 ≈ 0.4605
        let mut q = P2Quantile::new(0.99);
        for _ in 0..200_000 {
            q.observe(exp.sample(&mut rng));
        }
        let est = q.estimate().unwrap();
        let truth = (100.0f64).ln() / 10.0;
        assert!(
            (est - truth).abs() / truth < 0.1,
            "p99 estimate {est} vs {truth}"
        );
    }

    #[test]
    fn p2_p95_of_normal_stream() {
        let mut rng = StdRng::seed_from_u64(13);
        let nd = Normal::new(100.0, 15.0).unwrap();
        let mut q = P2Quantile::new(0.95);
        for _ in 0..100_000 {
            q.observe(nd.sample(&mut rng));
        }
        let est = q.estimate().unwrap();
        let truth = 100.0 + 1.6449 * 15.0;
        assert!((est - truth).abs() < 1.5, "p95 estimate {est} vs {truth}");
    }

    #[test]
    fn p2_matches_exact_on_same_stream() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut p2 = P2Quantile::new(0.9);
        let mut exact = ExactPercentiles::new();
        for _ in 0..20_000 {
            let x = rng.gen::<f64>() * rng.gen::<f64>(); // triangular-ish
            p2.observe(x);
            exact.add(x);
        }
        let a = p2.estimate().unwrap();
        let b = exact.percentile(0.9).unwrap();
        assert!((a - b).abs() < 0.02, "p2={a} exact={b}");
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn p2_rejects_degenerate_quantile() {
        P2Quantile::new(1.0);
    }
}
