//! Steady-state analysis of the homogeneous M/M/c/FCFS queue.
//!
//! The LaSS paper models each serverless function with `c` identical
//! containers as an M/M/c queue (Eq. 1–2) and bounds the waiting time of an
//! arriving request with the cumulative state probabilities (Eq. 3–4).
//!
//! All state probabilities are evaluated through incremental log-space
//! recurrences, so the model stays numerically exact for offered loads far
//! beyond the point where the textbook formulas (`r^n / n!`) overflow `f64`.

use serde::{Deserialize, Serialize};

/// Errors from model construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueError {
    /// The arrival rate was not a positive, finite number.
    InvalidArrivalRate,
    /// The service rate was not a positive, finite number.
    InvalidServiceRate,
    /// A model with zero containers was requested.
    ZeroServers,
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::InvalidArrivalRate => write!(f, "arrival rate must be positive and finite"),
            QueueError::InvalidServiceRate => write!(f, "service rate must be positive and finite"),
            QueueError::ZeroServers => write!(f, "at least one container is required"),
        }
    }
}

impl std::error::Error for QueueError {}

/// A homogeneous M/M/c/FCFS queueing model of one serverless function.
///
/// * `lambda` — mean request arrival rate (requests/second),
/// * `mu` — per-container service rate (requests/second),
/// * `c` — number of containers.
///
/// ```
/// use lass_queueing::MmcQueue;
///
/// // 20 req/s over 6 containers that each serve 5 req/s.
/// let q = MmcQueue::new(20.0, 5.0, 6).unwrap();
/// assert!(q.is_stable());
/// assert!((q.utilization() - 2.0 / 3.0).abs() < 1e-12);
/// // Probability an arriving request starts service within 100 ms
/// // (the paper's Eq. 3-4 bound):
/// assert!(q.wait_probability_bound(0.1) > 0.9);
/// ```
///
/// The model may be *unstable* (`λ ≥ cμ`); queries are still well defined
/// and return the natural limits (waiting probability bounds of zero, an
/// infinite mean wait), which lets the container solver simply grow `c`
/// until the system is both stable and meets its SLO.
#[derive(Debug, Clone)]
pub struct MmcQueue {
    lambda: f64,
    mu: f64,
    c: u32,
    /// `log_terms[n] = ln(r^n / n!)` for `0 ≤ n ≤ c`.
    log_terms: Vec<f64>,
    /// Log of the normalization constant `1/P0` (only finite when stable).
    log_z: f64,
}

/// Validate M/M/c parameters — the shared gate for [`MmcQueue::new`] and
/// [`ErlangScratch::eval`], so both paths accept and reject exactly the
/// same inputs.
fn validate_params(lambda: f64, mu: f64, c: u32) -> Result<(), QueueError> {
    if !(lambda.is_finite() && lambda > 0.0) {
        return Err(QueueError::InvalidArrivalRate);
    }
    if !(mu.is_finite() && mu > 0.0) {
        return Err(QueueError::InvalidServiceRate);
    }
    if c == 0 {
        return Err(QueueError::ZeroServers);
    }
    Ok(())
}

/// Extend `log_terms` so that `log_terms[n] = ln(r^n / n!)` holds for
/// `0 ≤ n ≤ c`, reusing the first `valid` entries (already computed for
/// the same `log_r`). Entries are produced by the same one-step
/// recurrence whatever `valid` is, so an incremental extension is
/// bit-identical to a fresh build.
fn fill_log_terms(log_r: f64, c: u32, log_terms: &mut Vec<f64>, valid: &mut usize) {
    let need = c as usize + 1;
    if *valid == 0 {
        if log_terms.is_empty() {
            log_terms.push(0.0); // ln(r^0/0!) = 0
        } else {
            log_terms[0] = 0.0;
        }
        *valid = 1;
    }
    while *valid < need {
        let n = *valid;
        let term = log_terms[n - 1] + log_r - (n as f64).ln();
        if n < log_terms.len() {
            log_terms[n] = term;
        } else {
            log_terms.push(term);
        }
        *valid += 1;
    }
}

/// Log of the normalization constant `1/P0` for a stable queue
/// (`rho < 1`), evaluated over the caller's scratch buffer so the hot
/// path allocates nothing. The summands are laid out exactly as the
/// historical `MmcQueue::new` did (head terms in order, geometric tail
/// last), so the result is bit-identical.
fn log_normalization(rho: f64, log_terms: &[f64], c: u32, items: &mut Vec<f64>) -> f64 {
    // Z = sum_{n=0}^{c-1} r^n/n!  +  r^c / (c! (1 - rho))
    let tail = log_terms[c as usize] - (1.0 - rho).ln();
    items.clear();
    items.extend_from_slice(&log_terms[..c as usize]);
    items.push(tail);
    log_sum_exp(items)
}

impl MmcQueue {
    /// Build the model, pre-computing the state-probability recurrence.
    pub fn new(lambda: f64, mu: f64, c: u32) -> Result<Self, QueueError> {
        validate_params(lambda, mu, c)?;
        let r = lambda / mu;
        let log_r = r.ln();
        let mut log_terms = Vec::with_capacity(c as usize + 1);
        let mut valid = 0;
        fill_log_terms(log_r, c, &mut log_terms, &mut valid);

        let rho = r / f64::from(c);
        let log_z = if rho < 1.0 {
            let mut items = Vec::with_capacity(c as usize + 1);
            log_normalization(rho, &log_terms, c, &mut items)
        } else {
            f64::INFINITY // unstable: P0 = 0
        };

        Ok(Self {
            lambda,
            mu,
            c,
            log_terms,
            log_z,
        })
    }

    /// Mean arrival rate λ.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Per-container service rate μ.
    #[inline]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Number of containers `c`.
    #[inline]
    pub fn servers(&self) -> u32 {
        self.c
    }

    /// Offered load `r = λ/μ` (the minimum number of containers for
    /// stability is `⌊r⌋ + 1`).
    #[inline]
    pub fn offered_load(&self) -> f64 {
        self.lambda / self.mu
    }

    /// System utilization `ρ = λ/(cμ)`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.lambda / (f64::from(self.c) * self.mu)
    }

    /// Whether the queue is stable (`ρ < 1`).
    #[inline]
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// `ln P0` — log-probability of an empty system (−∞ when unstable).
    #[inline]
    pub fn log_p0(&self) -> f64 {
        -self.log_z
    }

    /// `P0` — probability of an empty system (Eq. 2 of the paper).
    #[inline]
    pub fn p0(&self) -> f64 {
        (-self.log_z).exp()
    }

    /// Steady-state probability `P_n` of `n` requests in the system (Eq. 1).
    pub fn p_n(&self, n: u64) -> f64 {
        if !self.is_stable() {
            return 0.0;
        }
        let c = u64::from(self.c);
        let log_pn = if n <= c {
            self.log_terms[n as usize] - self.log_z
        } else {
            // P_n = P_c * rho^{n-c} for n >= c.
            let log_rho = self.utilization().ln();
            self.log_terms[self.c as usize] + (n - c) as f64 * log_rho - self.log_z
        };
        log_pn.exp()
    }

    /// The Erlang-C probability that an arriving request must wait
    /// (`P(W > 0)`), i.e. that all `c` containers are busy. Returns `1.0`
    /// for an unstable system.
    pub fn erlang_c(&self) -> f64 {
        if !self.is_stable() {
            return 1.0;
        }
        let rho = self.utilization();
        let log_c = self.log_terms[self.c as usize] - (1.0 - rho).ln() - self.log_z;
        log_c.exp().min(1.0)
    }

    /// The paper's waiting-time bound (Eq. 3–4): the probability that an
    /// arriving request waits at most `t` seconds, obtained by summing the
    /// steady-state probabilities up to the largest occupancy
    /// `L = ⌊ t·c·μ + c − 1 ⌋` whose *expected* drain time fits in `t`.
    ///
    /// This is the quantity Algorithm 1 drives to the target percentile.
    /// Returns `0.0` when the system is unstable (no bound can be given).
    pub fn wait_probability_bound(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "wait budget must be non-negative");
        if !self.is_stable() {
            return 0.0;
        }
        let c = f64::from(self.c);
        let l = (t * c * self.mu + c - 1.0).floor();
        if l < 0.0 {
            return 0.0;
        }
        self.cumulative_p(l as u64).min(1.0)
    }

    /// `Σ_{n=0}^{l} P_n` — cumulative steady-state probability.
    pub fn cumulative_p(&self, l: u64) -> f64 {
        if !self.is_stable() {
            return 0.0;
        }
        let c = u64::from(self.c);
        let head_top = l.min(c.saturating_sub(1));
        let mut logs: Vec<f64> = (0..=head_top)
            .map(|n| self.log_terms[n as usize] - self.log_z)
            .collect();
        if l >= c {
            // Geometric block: sum_{n=c}^{l} P_c rho^{n-c}
            //   = P_c (1 - rho^{l-c+1}) / (1 - rho).
            let rho = self.utilization();
            let k = (l - c + 1) as f64;
            let log_pc = self.log_terms[self.c as usize] - self.log_z;
            let log_block = log_pc + ((1.0 - rho.powf(k)) / (1.0 - rho)).ln();
            logs.push(log_block);
        }
        log_sum_exp(&logs).exp().min(1.0)
    }

    /// Exact waiting-time CDF of M/M/c/FCFS:
    /// `P(W ≤ t) = 1 − C(c, r)·e^{−(cμ−λ)t}`, where `C` is the Erlang-C
    /// probability. Used to cross-validate the paper's Eq. 3–4 bound.
    pub fn wait_cdf(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "wait budget must be non-negative");
        if !self.is_stable() {
            return 0.0;
        }
        let drain = f64::from(self.c) * self.mu - self.lambda;
        (1.0 - self.erlang_c() * (-drain * t).exp()).clamp(0.0, 1.0)
    }

    /// Invert the exact waiting-time CDF: the smallest `t` with
    /// `P(W ≤ t) ≥ p`. Returns `f64::INFINITY` for an unstable system.
    pub fn wait_percentile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "percentile must be in [0,1)");
        if !self.is_stable() {
            return f64::INFINITY;
        }
        let ec = self.erlang_c();
        if ec <= 1.0 - p {
            return 0.0;
        }
        let drain = f64::from(self.c) * self.mu - self.lambda;
        (ec / (1.0 - p)).ln() / drain
    }

    /// Mean waiting time `E[W] = C(c,r) / (cμ − λ)`.
    pub fn mean_wait(&self) -> f64 {
        if !self.is_stable() {
            return f64::INFINITY;
        }
        self.erlang_c() / (f64::from(self.c) * self.mu - self.lambda)
    }

    /// Mean queue length (excluding in-service requests), by Little's law.
    pub fn mean_queue_len(&self) -> f64 {
        self.lambda * self.mean_wait()
    }

    /// Mean response time `E[T] = E[W] + 1/μ`.
    pub fn mean_response(&self) -> f64 {
        self.mean_wait() + 1.0 / self.mu
    }
}

/// Allocation-free incremental Erlang-C evaluator — the route-decision
/// hot path's replacement for building one [`MmcQueue`] per call.
///
/// [`MmcQueue::new`] allocates a fresh `log_terms` vector (plus the
/// normalization scratch) on every construction; at one model per site
/// per routing decision that allocation dominates the decision cost
/// (see `BENCH_routing.json`). `ErlangScratch` keeps both buffers alive
/// across evaluations and exploits two incremental structures:
///
/// * the `ln(r^n/n!)` recurrence depends only on `r = λ/μ`, so while
///   `(λ, μ)` is unchanged a larger `c` just *extends* the existing
///   terms (the P₀ recurrence) instead of rebuilding them;
/// * the normalization `ln Z` is re-summed over the retained buffer —
///   O(c) arithmetic, zero allocation.
///
/// Every evaluation is **bit-identical** to the corresponding
/// [`MmcQueue`] queries (both paths share `fill_log_terms` /
/// `log_normalization` / `log_sum_exp`, performing the same operations
/// in the same order), which the differential proptests pin to the last
/// ULP. The result is a tiny Copy [`MmcSnapshot`] answering the
/// waiting-time queries in O(1).
#[derive(Debug, Clone, Default)]
pub struct ErlangScratch {
    /// Parameters the cached `log_terms` prefix was computed for.
    lambda: f64,
    mu: f64,
    log_r: f64,
    /// Number of leading `log_terms` entries valid for `(lambda, mu)`.
    valid: usize,
    /// `log_terms[n] = ln(r^n / n!)` scratch, grown monotonically.
    log_terms: Vec<f64>,
    /// Scratch for the normalization log-sum-exp.
    items: Vec<f64>,
}

impl ErlangScratch {
    /// A fresh evaluator with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate the M/M/c model at `(lambda, mu, c)`, reusing every term
    /// still valid from the previous call. Validation matches
    /// [`MmcQueue::new`] exactly.
    pub fn eval(&mut self, lambda: f64, mu: f64, c: u32) -> Result<MmcSnapshot, QueueError> {
        validate_params(lambda, mu, c)?;
        let r = lambda / mu;
        if lambda != self.lambda || mu != self.mu || self.valid == 0 {
            // New rate pair: the recurrence restarts from ln(r^0/0!).
            self.lambda = lambda;
            self.mu = mu;
            self.log_r = r.ln();
            self.valid = 0;
        }
        fill_log_terms(self.log_r, c, &mut self.log_terms, &mut self.valid);

        let rho = r / f64::from(c);
        let log_z = if rho < 1.0 {
            log_normalization(rho, &self.log_terms, c, &mut self.items)
        } else {
            f64::INFINITY // unstable: P0 = 0
        };
        // The Erlang-C probability, precomputed once per (λ, μ, c) so the
        // snapshot's waiting-time queries are pure arithmetic. Mirrors
        // `MmcQueue::erlang_c` exactly, including its use of the
        // *utilization* form of rho.
        let util = lambda / (f64::from(c) * mu);
        let erlang_c = if util < 1.0 {
            let log_c = self.log_terms[c as usize] - (1.0 - util).ln() - log_z;
            log_c.exp().min(1.0)
        } else {
            1.0
        };
        Ok(MmcSnapshot {
            lambda,
            mu,
            c,
            erlang_c,
        })
    }
}

/// A point evaluation of one M/M/c model: the parameters plus the
/// precomputed Erlang-C probability, from which the mean wait and every
/// waiting-time percentile follow in O(1) — no buffers, no allocation.
///
/// Produced by [`ErlangScratch::eval`]; each query returns the same bits
/// as the corresponding [`MmcQueue`] method (the formulas are copied
/// verbatim and the Erlang-C value is computed by the same expression).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmcSnapshot {
    lambda: f64,
    mu: f64,
    c: u32,
    erlang_c: f64,
}

impl MmcSnapshot {
    /// Mean arrival rate λ.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Per-container service rate μ.
    #[inline]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Number of containers `c`.
    #[inline]
    pub fn servers(&self) -> u32 {
        self.c
    }

    /// System utilization `ρ = λ/(cμ)`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.lambda / (f64::from(self.c) * self.mu)
    }

    /// Whether the queue is stable (`ρ < 1`).
    #[inline]
    pub fn is_stable(&self) -> bool {
        self.utilization() < 1.0
    }

    /// The Erlang-C probability `P(W > 0)`; `1.0` for an unstable
    /// system. Matches [`MmcQueue::erlang_c`] bit-for-bit.
    #[inline]
    pub fn erlang_c(&self) -> f64 {
        if !self.is_stable() {
            return 1.0;
        }
        self.erlang_c
    }

    /// Mean waiting time `E[W] = C(c,r) / (cμ − λ)`. Matches
    /// [`MmcQueue::mean_wait`] bit-for-bit.
    pub fn mean_wait(&self) -> f64 {
        if !self.is_stable() {
            return f64::INFINITY;
        }
        self.erlang_c() / (f64::from(self.c) * self.mu - self.lambda)
    }

    /// Exact waiting-time CDF `P(W ≤ t)`. Matches [`MmcQueue::wait_cdf`]
    /// bit-for-bit.
    pub fn wait_cdf(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "wait budget must be non-negative");
        if !self.is_stable() {
            return 0.0;
        }
        let drain = f64::from(self.c) * self.mu - self.lambda;
        (1.0 - self.erlang_c() * (-drain * t).exp()).clamp(0.0, 1.0)
    }

    /// Smallest `t` with `P(W ≤ t) ≥ p`; infinite when unstable. Matches
    /// [`MmcQueue::wait_percentile`] bit-for-bit.
    pub fn wait_percentile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "percentile must be in [0,1)");
        if !self.is_stable() {
            return f64::INFINITY;
        }
        let ec = self.erlang_c();
        if ec <= 1.0 - p {
            return 0.0;
        }
        let drain = f64::from(self.c) * self.mu - self.lambda;
        (ec / (1.0 - p)).ln() / drain
    }
}

/// Numerically-stable `ln Σ exp(x_i)`.
pub(crate) fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let s: f64 = xs.iter().map(|&x| (x - m).exp()).sum();
    m + s.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm1_p0(lambda: f64, mu: f64) -> f64 {
        1.0 - lambda / mu
    }

    #[test]
    fn reduces_to_mm1() {
        let q = MmcQueue::new(0.7, 1.0, 1).unwrap();
        assert!((q.p0() - mm1_p0(0.7, 1.0)).abs() < 1e-12);
        // M/M/1: P_n = (1-rho) rho^n.
        for n in 0..20u64 {
            let expect = 0.3 * 0.7f64.powi(n as i32);
            assert!((q.p_n(n) - expect).abs() < 1e-12, "n={n}");
        }
        // Erlang C for M/M/1 equals rho.
        assert!((q.erlang_c() - 0.7).abs() < 1e-12);
        // Mean wait: rho / (mu - lambda).
        assert!((q.mean_wait() - 0.7 / 0.3).abs() < 1e-9);
    }

    #[test]
    fn probabilities_sum_to_one() {
        for &(l, m, c) in &[
            (8.0, 1.0, 10),
            (30.0, 5.0, 8),
            (0.5, 10.0, 2),
            (95.0, 1.0, 100),
        ] {
            let q = MmcQueue::new(l, m, c).unwrap();
            let mut sum = 0.0;
            for n in 0..100_000u64 {
                sum += q.p_n(n);
                if sum > 1.0 - 1e-13 {
                    break;
                }
            }
            assert!(sum > 1.0 - 1e-9, "lambda={l} mu={m} c={c}: sum={sum}");
            assert!(sum < 1.0 + 1e-9);
        }
    }

    #[test]
    fn cumulative_matches_direct_sum() {
        let q = MmcQueue::new(12.0, 2.0, 9).unwrap();
        for l in [0u64, 3, 8, 9, 15, 50] {
            let direct: f64 = (0..=l).map(|n| q.p_n(n)).sum();
            let cum = q.cumulative_p(l);
            assert!((direct - cum).abs() < 1e-10, "l={l}: {direct} vs {cum}");
        }
    }

    #[test]
    fn erlang_c_textbook_value() {
        // Classic check: lambda=2, mu=1, c=3 => C ≈ 0.44444*... Let's compute
        // from the standard formula independently.
        let q = MmcQueue::new(2.0, 1.0, 3).unwrap();
        let r: f64 = 2.0;
        let c = 3.0;
        let rho = r / c;
        let num = r.powf(c) / 6.0 / (1.0 - rho);
        let den = 1.0 + r + r * r / 2.0 + num;
        let expect = num / den;
        assert!((q.erlang_c() - expect).abs() < 1e-12);
    }

    #[test]
    fn unstable_system_limits() {
        let q = MmcQueue::new(10.0, 1.0, 5).unwrap();
        assert!(!q.is_stable());
        assert_eq!(q.erlang_c(), 1.0);
        assert_eq!(q.wait_probability_bound(1.0), 0.0);
        assert_eq!(q.mean_wait(), f64::INFINITY);
        assert_eq!(q.p_n(3), 0.0);
        assert_eq!(q.wait_percentile(0.95), f64::INFINITY);
    }

    #[test]
    fn large_system_is_numerically_stable() {
        // r = 900 with c = 1000: naive r^n/n! overflows; log-space must not.
        let q = MmcQueue::new(900.0, 1.0, 1000).unwrap();
        assert!(q.is_stable());
        // P0 ~ e^-900 underflows f64 (that is the correct value); the
        // log-space representation must stay finite and negative.
        let lp0 = q.log_p0();
        assert!(lp0.is_finite() && lp0 < -500.0, "log_p0={lp0}");
        let ec = q.erlang_c();
        assert!((0.0..=1.0).contains(&ec), "erlang_c={ec}");
        let b = q.wait_probability_bound(0.1);
        assert!((0.0..=1.0).contains(&b), "bound={b}");
        assert!(
            b > 0.9,
            "with 10% headroom and t=0.1 the bound should be high: {b}"
        );
    }

    #[test]
    fn wait_bound_monotone_in_t() {
        let q = MmcQueue::new(20.0, 5.0, 6).unwrap();
        let mut last = 0.0;
        for i in 0..60 {
            let t = f64::from(i) * 0.01;
            let p = q.wait_probability_bound(t);
            assert!(p + 1e-12 >= last, "t={t}");
            last = p;
        }
    }

    #[test]
    fn wait_bound_monotone_in_c() {
        let mut last = 0.0;
        for c in 5..30 {
            let q = MmcQueue::new(20.0, 5.0, c).unwrap();
            let p = q.wait_probability_bound(0.05);
            assert!(p + 1e-12 >= last, "c={c}: {p} < {last}");
            last = p;
        }
    }

    #[test]
    fn exact_cdf_agrees_with_erlang_c_at_zero() {
        let q = MmcQueue::new(20.0, 5.0, 6).unwrap();
        assert!((q.wait_cdf(0.0) - (1.0 - q.erlang_c())).abs() < 1e-12);
    }

    #[test]
    fn wait_percentile_inverts_cdf() {
        let q = MmcQueue::new(20.0, 5.0, 6).unwrap();
        for &p in &[0.5, 0.9, 0.95, 0.99] {
            let t = q.wait_percentile(p);
            if t > 0.0 {
                assert!((q.wait_cdf(t) - p).abs() < 1e-9, "p={p}");
            } else {
                assert!(q.wait_cdf(0.0) >= p);
            }
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(
            MmcQueue::new(0.0, 1.0, 1).unwrap_err(),
            QueueError::InvalidArrivalRate
        );
        assert_eq!(
            MmcQueue::new(1.0, f64::NAN, 1).unwrap_err(),
            QueueError::InvalidServiceRate
        );
        assert_eq!(
            MmcQueue::new(1.0, 1.0, 0).unwrap_err(),
            QueueError::ZeroServers
        );
    }

    #[test]
    fn utilization_and_offered_load() {
        let q = MmcQueue::new(30.0, 5.0, 10).unwrap();
        assert!((q.offered_load() - 6.0).abs() < 1e-12);
        assert!((q.utilization() - 0.6).abs() < 1e-12);
    }

    /// Bit-level agreement between a fresh `MmcQueue` and a reused
    /// `ErlangScratch` across a parameter walk that exercises every
    /// reuse mode: same rates with growing/shrinking `c`, changed rates,
    /// stable and unstable regimes.
    #[test]
    fn scratch_matches_queue_to_the_last_ulp() {
        let mut scratch = ErlangScratch::new();
        let walk = [
            (20.0, 5.0, 6u32),
            (20.0, 5.0, 12),    // extend terms incrementally
            (20.0, 5.0, 3),     // shrink (prefix reuse), unstable
            (20.0, 5.0, 4),     // boundary rho = 1
            (20.0, 5.0, 5),     // stable again
            (900.0, 1.0, 1000), // rate change + large fleet
            (0.7, 1.0, 1),      // M/M/1
            (0.7, 1.0, 1),      // exact repeat
        ];
        for &(l, m, c) in &walk {
            let q = MmcQueue::new(l, m, c).unwrap();
            let s = scratch.eval(l, m, c).unwrap();
            assert_eq!(
                s.erlang_c().to_bits(),
                q.erlang_c().to_bits(),
                "erlang_c λ={l} μ={m} c={c}"
            );
            assert_eq!(
                s.mean_wait().to_bits(),
                q.mean_wait().to_bits(),
                "mean_wait λ={l} μ={m} c={c}"
            );
            for &p in &[0.0, 0.5, 0.9, 0.95, 0.99] {
                assert_eq!(
                    s.wait_percentile(p).to_bits(),
                    q.wait_percentile(p).to_bits(),
                    "wait_percentile({p}) λ={l} μ={m} c={c}"
                );
            }
            for &t in &[0.0, 0.01, 0.1, 1.0] {
                assert_eq!(
                    s.wait_cdf(t).to_bits(),
                    q.wait_cdf(t).to_bits(),
                    "wait_cdf({t}) λ={l} μ={m} c={c}"
                );
            }
            assert_eq!(s.utilization().to_bits(), q.utilization().to_bits());
            assert_eq!(s.is_stable(), q.is_stable());
        }
    }

    #[test]
    fn scratch_rejects_exactly_like_queue() {
        let mut scratch = ErlangScratch::new();
        for &(l, m, c) in &[
            (0.0, 1.0, 1u32),
            (-2.0, 1.0, 1),
            (f64::NAN, 1.0, 1),
            (f64::INFINITY, 1.0, 1),
            (1.0, 0.0, 1),
            (1.0, f64::NAN, 1),
            (1.0, 1.0, 0),
        ] {
            assert_eq!(
                scratch.eval(l, m, c).err(),
                MmcQueue::new(l, m, c).err(),
                "λ={l} μ={m} c={c}"
            );
        }
        // A rejected call must not poison the next valid one.
        let s = scratch.eval(20.0, 5.0, 6).unwrap();
        let q = MmcQueue::new(20.0, 5.0, 6).unwrap();
        assert_eq!(s.mean_wait().to_bits(), q.mean_wait().to_bits());
    }

    #[test]
    fn log_sum_exp_edge_cases() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert!((log_sum_exp(&[0.0, 0.0]) - 2.0f64.ln()).abs() < 1e-12);
        // Huge magnitudes must not overflow.
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
    }
}
