//! Queueing-theoretic capacity models for latency-sensitive serverless
//! functions, as described in §3 of the LaSS paper (HPDC '21).
//!
//! This crate is pure mathematics: no simulation, no I/O, no clocks. It
//! provides
//!
//! * [`mmc`] — steady-state analysis of the homogeneous M/M/c/FCFS queue
//!   (Eq. 1–2 of the paper), including the waiting-time tail bound the paper
//!   derives from the state probabilities (Eq. 3–4) and the classical exact
//!   waiting-time distribution for cross-validation. For hot paths that
//!   evaluate many models, [`ErlangScratch`] is an allocation-free
//!   incremental evaluator producing bit-identical [`MmcSnapshot`]s.
//! * [`solver`] — Algorithm 1: the iterative procedure that finds the
//!   smallest container count `c` such that a target percentile of requests
//!   waits no longer than the SLO budget.
//! * [`hetero`] — the worst-case upper bounds of Alves et al. for
//!   *heterogeneous* M/M/c queues (Eq. 5–6), used when resource deflation
//!   leaves a function with containers of different sizes, plus the matching
//!   iterative solver. Two implementations are provided: a numerically naive
//!   direct evaluation (the paper's fragile "Scala" implementation analogue)
//!   and a robust incremental log-space evaluation (the "Julia" analogue).
//! * [`approx`] — G/G/c approximations (Allen–Cunneen / Kingman) for
//!   non-Poisson arrivals and non-exponential service — the paper's §8
//!   future work.
//! * [`estimator`] — arrival-rate estimation: EWMA smoothing over per-epoch
//!   observations (§3.3) and the dual sliding-window burst detector the
//!   prototype borrows from Knative (§5).
//! * [`predictor`] — online λ̂/μ̂ telemetry feeding the M/M/c closed forms:
//!   the waiting-time forecasts behind model-driven (SLO-aware) routing,
//!   plus the downtime EWMA behind failure-aware routing.
//! * [`quantile`] — streaming quantile estimation (the P² algorithm) used by
//!   the online service-time learner, plus exact percentiles over samples.
//!
//! All probabilities are computed with incremental, log-space-safe
//! recurrences so that the models remain stable for thousands of containers
//! (cf. §6.3, where the naive implementation fails at scale).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod approx;
pub mod estimator;
pub mod hetero;
pub mod mmc;
pub mod predictor;
pub mod quantile;
pub mod solver;

pub use approx::{required_containers_general, GgcApprox, Variability};
pub use estimator::{DualWindowEstimator, Ewma};
pub use hetero::{
    required_additional_containers, required_additional_containers_naive, HeteroMmc, HeteroMmcNaive,
};
pub use mmc::{ErlangScratch, MmcQueue, MmcSnapshot, QueueError};
pub use predictor::{
    EvaluatedForecast, ForecastCache, HealthEwma, PredictorConfig, SnapshotCache, WaitForecast,
    WaitPredictor,
};
pub use quantile::{percentile_of_sorted, ExactPercentiles, P2Quantile};
pub use solver::{
    required_containers, required_containers_exact, required_containers_for_slo, wait_budget,
    SolverConfig, SolverError, SolverResult,
};

/// Convenience: 99th percentile of an exponential service-time distribution
/// with rate `mu` (requests/second). The paper sets the wait budget to
/// `t_p99 = d − 1/μ_p99`, where `1/μ_p99` is this value.
#[inline]
pub fn exp_service_percentile(mu: f64, percentile: f64) -> f64 {
    assert!(mu > 0.0, "service rate must be positive");
    assert!(
        (0.0..1.0).contains(&percentile),
        "percentile must be in [0, 1)"
    );
    -(1.0 - percentile).ln() / mu
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_percentile_median() {
        // Median of Exp(mu) is ln(2)/mu.
        let m = exp_service_percentile(2.0, 0.5);
        assert!((m - std::f64::consts::LN_2 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn exp_percentile_p99_scales_inversely_with_mu() {
        let a = exp_service_percentile(5.0, 0.99);
        let b = exp_service_percentile(10.0, 0.99);
        assert!((a / b - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "service rate must be positive")]
    fn exp_percentile_rejects_zero_rate() {
        exp_service_percentile(0.0, 0.99);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn exp_percentile_rejects_unit_percentile() {
        exp_service_percentile(1.0, 1.0);
    }
}
