//! Model-driven waiting-time prediction from live telemetry.
//!
//! The paper's validation hinges on one loop: measure a function's
//! arrival rate and service rate online, plug them into the M/M/c
//! closed forms, and let the *prediction* drive resource decisions. The
//! per-site scheduler already closes that loop for container counts
//! (Algorithm 1 via [`solver`](crate::solver)); [`WaitPredictor`]
//! closes it for *routing*: a front-end router maintains one predictor
//! per site, feeds it every routed arrival and every completion, and
//! asks for the site's forecast waiting time before committing the next
//! request.
//!
//! Estimation reuses the crate's [`Ewma`] machinery (§3.3): arrivals
//! are bucketed into fixed ticks and the per-tick rate is EWMA-smoothed
//! into λ̂; observed service times are EWMA-smoothed and inverted into
//! the per-server rate μ̂. A forecast is then just an
//! [`MmcQueue`](crate::MmcQueue) built from `(λ̂, μ̂, c)` — the same
//! mathematics the differential test harness pins against the
//! simulator, so the router and the oracle can check each other.
//!
//! Everything here is pure arithmetic on caller-supplied timestamps: no
//! clocks, no randomness, no simulation types — predictions are exactly
//! reproducible from the observation sequence.

use crate::estimator::Ewma;
use crate::mmc::MmcQueue;
use serde::{Deserialize, Serialize};

/// Smoothing constants for a [`WaitPredictor`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[serde(default)]
pub struct PredictorConfig {
    /// Arrival-rate bucket width in seconds: arrivals are counted per
    /// tick and the per-tick rate is folded into the λ EWMA.
    pub tick_secs: f64,
    /// EWMA weight on the newest per-tick arrival rate.
    pub lambda_alpha: f64,
    /// EWMA weight on the newest observed service time.
    pub service_alpha: f64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            tick_secs: 1.0,
            lambda_alpha: 0.3,
            service_alpha: 0.05,
        }
    }
}

impl PredictorConfig {
    /// Check the knobs before building a predictor.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.tick_secs.is_finite() && self.tick_secs > 0.0) {
            return Err(format!(
                "tick_secs must be positive, got {}",
                self.tick_secs
            ));
        }
        for (name, v) in [
            ("lambda_alpha", self.lambda_alpha),
            ("service_alpha", self.service_alpha),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(format!("{name} must be in (0, 1], got {v}"));
            }
        }
        Ok(())
    }
}

/// A point-in-time prediction input: the estimated arrival rate λ̂, the
/// estimated per-server service rate μ̂, and the server count `c` the
/// caller believes the site holds. Build one with
/// [`WaitPredictor::forecast`] and query the M/M/c closed forms.
#[derive(Debug, Clone, Copy, Default)]
pub struct WaitForecast {
    /// Estimated arrival rate (requests/second); 0 before any arrival.
    pub lambda: f64,
    /// Estimated per-server service rate (requests/second); 0 before
    /// any completion.
    pub mu: f64,
    /// Server count assumed for the forecast.
    pub servers: u32,
}

impl WaitForecast {
    /// Whether enough telemetry has accumulated to build a model.
    pub fn has_model(&self) -> bool {
        self.lambda > 0.0 && self.mu > 0.0 && self.servers > 0
    }

    /// Estimated utilization `λ̂ / (c μ̂)` (0 without a model).
    pub fn utilization(&self) -> f64 {
        if !self.has_model() {
            return 0.0;
        }
        self.lambda / (f64::from(self.servers) * self.mu)
    }

    fn model(&self) -> Option<MmcQueue> {
        if !self.has_model() {
            return None;
        }
        MmcQueue::new(self.lambda, self.mu, self.servers).ok()
    }

    /// Predicted mean waiting time, seconds. Zero without a model (an
    /// idle or unobserved site is optimistically free); infinite when
    /// the estimated load exceeds the estimated capacity.
    pub fn mean_wait(&self) -> f64 {
        self.model().map_or(0.0, |q| q.mean_wait())
    }

    /// Predicted waiting time at percentile `p ∈ [0, 1)`, seconds. Zero
    /// without a model; infinite when the forecast is unstable.
    pub fn wait_percentile(&self, p: f64) -> f64 {
        self.model().map_or(0.0, |q| q.wait_percentile(p))
    }
}

/// Online λ̂/μ̂ estimator feeding the M/M/c closed forms.
///
/// Feed it every arrival ([`WaitPredictor::on_arrival`]) and every
/// completed request's service time
/// ([`WaitPredictor::on_service`]); ask for a [`WaitForecast`] at any
/// instant. Timestamps must be non-decreasing.
#[derive(Debug, Clone)]
pub struct WaitPredictor {
    cfg: PredictorConfig,
    /// Start of the current arrival tick (set by the first observation).
    win_start: Option<f64>,
    /// Arrivals observed inside the current tick.
    win_count: u64,
    lambda: Ewma,
    service: Ewma,
}

impl Default for WaitPredictor {
    fn default() -> Self {
        Self::new(PredictorConfig::default())
    }
}

impl WaitPredictor {
    /// A predictor with the given smoothing constants.
    pub fn new(cfg: PredictorConfig) -> Self {
        cfg.validate().expect("invalid PredictorConfig");
        Self {
            cfg,
            win_start: None,
            win_count: 0,
            lambda: Ewma::new(cfg.lambda_alpha),
            service: Ewma::new(cfg.service_alpha),
        }
    }

    /// Close every arrival tick that ended before `now`, folding its
    /// rate into the λ EWMA (ticks with zero arrivals count too — an
    /// idle site must see its estimate decay).
    fn advance(&mut self, now: f64) {
        let Some(mut start) = self.win_start else {
            self.win_start = Some(now);
            return;
        };
        while now - start >= self.cfg.tick_secs {
            self.lambda
                .observe(self.win_count as f64 / self.cfg.tick_secs);
            self.win_count = 0;
            start += self.cfg.tick_secs;
        }
        self.win_start = Some(start);
    }

    /// Record one arrival at time `now` (seconds).
    pub fn on_arrival(&mut self, now: f64) {
        self.advance(now);
        self.win_count += 1;
    }

    /// Record one completed request's service time (seconds).
    pub fn on_service(&mut self, service_secs: f64) {
        if service_secs.is_finite() && service_secs > 0.0 {
            self.service.observe(service_secs);
        }
    }

    /// Build the forecast as of `now`, assuming the site currently holds
    /// `servers` servers.
    pub fn forecast(&mut self, now: f64, servers: u32) -> WaitForecast {
        self.advance(now);
        let lambda = self.lambda.value().unwrap_or(0.0);
        let mu = match self.service.value() {
            Some(s) if s > 0.0 => 1.0 / s,
            _ => 0.0,
        };
        WaitForecast {
            lambda,
            mu,
            servers,
        }
    }
}

/// EWMA of a site's *down* fraction over fixed ticks — the
/// failure-aware router's memory of recent crashes and partitions.
///
/// Feed it the site's up/down state whenever the state is observed or
/// changes ([`HealthEwma::observe`]); the current flakiness score is
/// the EWMA of per-tick downtime fractions, 0 for a site that has been
/// healthy for a while, approaching 1 while the site stays dark.
#[derive(Debug, Clone)]
pub struct HealthEwma {
    tick_secs: f64,
    ewma: Ewma,
    /// Start of the current tick.
    win_start: Option<f64>,
    /// Last observation instant inside the current tick.
    last_t: f64,
    /// Whether the site was down at `last_t`.
    down: bool,
    /// Downtime accumulated inside the current tick, seconds.
    acc_down: f64,
}

impl HealthEwma {
    /// A tracker folding `tick_secs`-wide downtime fractions into an
    /// EWMA with weight `alpha`.
    pub fn new(tick_secs: f64, alpha: f64) -> Self {
        assert!(
            tick_secs.is_finite() && tick_secs > 0.0,
            "tick_secs must be positive, got {tick_secs}"
        );
        Self {
            tick_secs,
            ewma: Ewma::new(alpha),
            win_start: None,
            last_t: 0.0,
            down: false,
            acc_down: 0.0,
        }
    }

    /// Record that the site is `down` (or up) as of time `now`.
    /// Timestamps must be non-decreasing.
    pub fn observe(&mut self, now: f64, down: bool) {
        let Some(mut start) = self.win_start else {
            self.win_start = Some(now);
            self.last_t = now;
            self.down = down;
            return;
        };
        // Close every tick that ended before `now`, attributing the
        // previous state to the elapsed span.
        while now - start >= self.tick_secs {
            let tick_end = start + self.tick_secs;
            if self.down {
                self.acc_down += tick_end - self.last_t;
            }
            self.ewma
                .observe((self.acc_down / self.tick_secs).clamp(0.0, 1.0));
            self.acc_down = 0.0;
            self.last_t = tick_end;
            start = tick_end;
        }
        if self.down {
            self.acc_down += now - self.last_t;
        }
        self.win_start = Some(start);
        self.last_t = now;
        self.down = down;
    }

    /// Current flakiness in `[0, 1]` as of the last observation: the
    /// EWMA'd recent down fraction, biased by the current tick's
    /// in-progress state so a site that just went dark scores
    /// immediately.
    pub fn value(&self) -> f64 {
        let base = self.ewma.value().unwrap_or(0.0);
        if self.down {
            // While down, report at least the in-progress evidence.
            base.max(0.5)
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_predictor_forecasts_zero_wait() {
        let mut p = WaitPredictor::default();
        let f = p.forecast(10.0, 4);
        assert!(!f.has_model());
        assert_eq!(f.mean_wait(), 0.0);
        assert_eq!(f.wait_percentile(0.95), 0.0);
        assert_eq!(f.utilization(), 0.0);
    }

    #[test]
    fn constant_rate_is_recovered() {
        let mut p = WaitPredictor::default();
        // 8 arrivals/s, evenly spaced, for 60 s.
        let mut t = 0.0;
        while t < 60.0 {
            p.on_arrival(t);
            t += 0.125;
        }
        for _ in 0..50 {
            p.on_service(0.1);
        }
        let f = p.forecast(60.0, 2);
        assert!((f.lambda - 8.0).abs() < 0.5, "lambda={}", f.lambda);
        assert!((f.mu - 10.0).abs() < 1e-9, "mu={}", f.mu);
        // Against the closed form directly.
        let q = MmcQueue::new(f.lambda, f.mu, 2).unwrap();
        assert!((f.mean_wait() - q.mean_wait()).abs() < 1e-12);
        assert!((f.wait_percentile(0.95) - q.wait_percentile(0.95)).abs() < 1e-12);
    }

    #[test]
    fn idle_gap_decays_lambda() {
        let mut p = WaitPredictor::default();
        for i in 0..200 {
            p.on_arrival(f64::from(i) * 0.05); // 20/s for 10 s
        }
        let busy = p.forecast(10.0, 1).lambda;
        assert!(busy > 10.0, "busy lambda={busy}");
        // 30 quiet seconds: the estimate must collapse.
        let idle = p.forecast(40.0, 1).lambda;
        assert!(idle < 0.1, "idle lambda={idle}");
    }

    #[test]
    fn overload_forecast_is_infinite() {
        let mut p = WaitPredictor::new(PredictorConfig {
            tick_secs: 1.0,
            lambda_alpha: 1.0,
            service_alpha: 1.0,
        });
        for i in 0..40 {
            p.on_arrival(f64::from(i) * 0.05); // 20/s
        }
        p.on_service(0.5); // mu = 2/s per server
        let f = p.forecast(2.0, 4); // capacity 8/s < 20/s
        assert!(f.has_model());
        assert!(f.utilization() > 1.0);
        assert_eq!(f.mean_wait(), f64::INFINITY);
        assert_eq!(f.wait_percentile(0.95), f64::INFINITY);
    }

    #[test]
    fn service_ewma_tracks_mu() {
        let mut p = WaitPredictor::new(PredictorConfig {
            service_alpha: 0.5,
            ..PredictorConfig::default()
        });
        p.on_service(0.2);
        p.on_service(0.1);
        // EWMA: 0.5*0.1 + 0.5*0.2 = 0.15 => mu = 6.67.
        let f = p.forecast(0.0, 1);
        assert!((f.mu - 1.0 / 0.15).abs() < 1e-9, "mu={}", f.mu);
        // Bogus observations are ignored.
        p.on_service(f64::NAN);
        p.on_service(-1.0);
        assert!((p.forecast(0.0, 1).mu - 1.0 / 0.15).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "tick_secs must be positive")]
    fn rejects_bad_tick() {
        WaitPredictor::new(PredictorConfig {
            tick_secs: 0.0,
            ..PredictorConfig::default()
        });
    }

    #[test]
    fn health_ewma_scores_downtime() {
        let mut h = HealthEwma::new(5.0, 0.3);
        h.observe(0.0, false);
        h.observe(60.0, false);
        assert_eq!(h.value(), 0.0, "healthy site must score 0");
        // Down for 30 s: the score climbs.
        h.observe(60.0, true);
        assert!(h.value() >= 0.5, "freshly-down site must score high");
        h.observe(90.0, false);
        let after_crash = h.value();
        assert!(after_crash > 0.3, "after 30s down: {after_crash}");
        // 2 minutes of health: the score decays toward 0.
        h.observe(210.0, false);
        let healed = h.value();
        assert!(healed < 0.05, "healed score {healed}");
        assert!(healed < after_crash);
    }

    #[test]
    fn health_ewma_attributes_partial_ticks() {
        let mut h = HealthEwma::new(10.0, 1.0);
        h.observe(0.0, false);
        h.observe(5.0, true); // down at t=5
        h.observe(10.0, false); // up at t=10: tick 0-10 is 50% down
        h.observe(20.0, false); // close tick 10-20 (fully up)
                                // alpha=1 => value tracks the last closed tick exactly: 0.0,
                                // but the 50% tick was observed on the way.
        assert_eq!(h.value(), 0.0);
    }
}
