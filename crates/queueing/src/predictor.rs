//! Model-driven waiting-time prediction from live telemetry.
//!
//! The paper's validation hinges on one loop: measure a function's
//! arrival rate and service rate online, plug them into the M/M/c
//! closed forms, and let the *prediction* drive resource decisions. The
//! per-site scheduler already closes that loop for container counts
//! (Algorithm 1 via [`solver`](crate::solver)); [`WaitPredictor`]
//! closes it for *routing*: a front-end router maintains one predictor
//! per site, feeds it every routed arrival and every completion, and
//! asks for the site's forecast waiting time before committing the next
//! request.
//!
//! Estimation reuses the crate's [`Ewma`] machinery (§3.3): arrivals
//! are bucketed into fixed ticks and the per-tick rate is EWMA-smoothed
//! into λ̂; observed service times are EWMA-smoothed and inverted into
//! the per-server rate μ̂. A forecast is then just an
//! [`MmcQueue`](crate::MmcQueue) built from `(λ̂, μ̂, c)` — the same
//! mathematics the differential test harness pins against the
//! simulator, so the router and the oracle can check each other.
//!
//! Everything here is pure arithmetic on caller-supplied timestamps: no
//! clocks, no randomness, no simulation types — predictions are exactly
//! reproducible from the observation sequence.

use crate::estimator::Ewma;
use crate::mmc::{ErlangScratch, MmcQueue, MmcSnapshot};
use serde::{Deserialize, Serialize};

/// Number of whole zero-arrival (or constant-state) ticks beyond which
/// an idle gap is folded into an EWMA in closed form (`v·(1−α)ⁿ`)
/// instead of per-tick. Below the threshold the historical per-tick
/// loop runs unchanged — bit-for-bit with previous releases, which the
/// pinned goldens rely on; above it the fold is O(1), so a site quiet
/// for days (or a large `now` jump after recovery) costs constant work
/// instead of one EWMA fold per elapsed tick.
const GAP_FOLD_TICKS: u64 = 64;

/// Smoothing constants for a [`WaitPredictor`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[serde(default)]
pub struct PredictorConfig {
    /// Arrival-rate bucket width in seconds: arrivals are counted per
    /// tick and the per-tick rate is folded into the λ EWMA.
    pub tick_secs: f64,
    /// EWMA weight on the newest per-tick arrival rate.
    pub lambda_alpha: f64,
    /// EWMA weight on the newest observed service time.
    pub service_alpha: f64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self {
            tick_secs: 1.0,
            lambda_alpha: 0.3,
            service_alpha: 0.05,
        }
    }
}

impl PredictorConfig {
    /// Check the knobs before building a predictor.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.tick_secs.is_finite() && self.tick_secs > 0.0) {
            return Err(format!(
                "tick_secs must be positive, got {}",
                self.tick_secs
            ));
        }
        for (name, v) in [
            ("lambda_alpha", self.lambda_alpha),
            ("service_alpha", self.service_alpha),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(format!("{name} must be in (0, 1], got {v}"));
            }
        }
        Ok(())
    }
}

/// A point-in-time prediction input: the estimated arrival rate λ̂, the
/// estimated per-server service rate μ̂, and the server count `c` the
/// caller believes the site holds. Build one with
/// [`WaitPredictor::forecast`] and query the M/M/c closed forms.
#[derive(Debug, Clone, Copy, Default)]
pub struct WaitForecast {
    /// Estimated arrival rate (requests/second); 0 before any arrival.
    pub lambda: f64,
    /// Estimated per-server service rate (requests/second); 0 before
    /// any completion.
    pub mu: f64,
    /// Server count assumed for the forecast.
    pub servers: u32,
}

impl WaitForecast {
    /// Whether enough telemetry has accumulated to build a model.
    pub fn has_model(&self) -> bool {
        self.lambda > 0.0 && self.mu > 0.0 && self.servers > 0
    }

    /// Estimated utilization `λ̂ / (c μ̂)` (0 without a model).
    pub fn utilization(&self) -> f64 {
        if !self.has_model() {
            return 0.0;
        }
        self.lambda / (f64::from(self.servers) * self.mu)
    }

    fn model(&self) -> Option<MmcQueue> {
        if !self.has_model() {
            return None;
        }
        MmcQueue::new(self.lambda, self.mu, self.servers).ok()
    }

    /// Predicted mean waiting time, seconds. Zero without a model (an
    /// idle or unobserved site is optimistically free); infinite when
    /// the estimated load exceeds the estimated capacity.
    pub fn mean_wait(&self) -> f64 {
        self.model().map_or(0.0, |q| q.mean_wait())
    }

    /// Predicted waiting time at percentile `p ∈ [0, 1)`, seconds. Zero
    /// without a model; infinite when the forecast is unstable.
    pub fn wait_percentile(&self, p: f64) -> f64 {
        self.model().map_or(0.0, |q| q.wait_percentile(p))
    }
}

/// Online λ̂/μ̂ estimator feeding the M/M/c closed forms.
///
/// Feed it every arrival ([`WaitPredictor::on_arrival`]) and every
/// completed request's service time
/// ([`WaitPredictor::on_service`]); ask for a [`WaitForecast`] at any
/// instant. Timestamps must be non-decreasing.
#[derive(Debug, Clone)]
pub struct WaitPredictor {
    cfg: PredictorConfig,
    /// Start of the current arrival tick (set by the first observation).
    win_start: Option<f64>,
    /// Arrivals observed inside the current tick.
    win_count: u64,
    lambda: Ewma,
    service: Ewma,
    /// Bumped whenever the λ EWMA folds in a tick — the λ̂ estimate can
    /// only change when this does.
    lambda_epoch: u64,
    /// Bumped whenever a service-time observation is accepted — the μ̂
    /// estimate can only change when this does.
    mu_epoch: u64,
}

impl Default for WaitPredictor {
    fn default() -> Self {
        Self::new(PredictorConfig::default())
    }
}

impl WaitPredictor {
    /// A predictor with the given smoothing constants.
    pub fn new(cfg: PredictorConfig) -> Self {
        cfg.validate().expect("invalid PredictorConfig");
        Self {
            cfg,
            win_start: None,
            win_count: 0,
            lambda: Ewma::new(cfg.lambda_alpha),
            service: Ewma::new(cfg.service_alpha),
            lambda_epoch: 0,
            mu_epoch: 0,
        }
    }

    /// Close every arrival tick that ended before `now`, folding its
    /// rate into the λ EWMA (ticks with zero arrivals count too — an
    /// idle site must see its estimate decay). Gaps longer than
    /// [`GAP_FOLD_TICKS`] fold their zero-arrival run in O(1) via the
    /// closed-form EWMA decay, so a quiet stretch of any length costs
    /// constant work.
    fn advance(&mut self, now: f64) {
        let Some(mut start) = self.win_start else {
            self.win_start = Some(now);
            return;
        };
        if now - start >= self.cfg.tick_secs {
            // Close the tick holding the buffered arrivals.
            self.lambda
                .observe(self.win_count as f64 / self.cfg.tick_secs);
            self.lambda_epoch += 1;
            self.win_count = 0;
            start += self.cfg.tick_secs;
            // Every further elapsed tick saw zero arrivals. Fold long
            // runs in closed form, leaving the last tick to the exact
            // loop so the window phase is always advanced by the same
            // bookkeeping.
            let gap = (now - start) / self.cfg.tick_secs;
            if gap >= GAP_FOLD_TICKS as f64 {
                let n = (gap as u64).saturating_sub(1);
                self.lambda.fold_constant(0.0, n);
                self.lambda_epoch += 1;
                start += self.cfg.tick_secs * n as f64;
            }
            while now - start >= self.cfg.tick_secs {
                self.lambda.observe(0.0);
                self.lambda_epoch += 1;
                start += self.cfg.tick_secs;
            }
        }
        self.win_start = Some(start);
    }

    /// Record one arrival at time `now` (seconds).
    pub fn on_arrival(&mut self, now: f64) {
        self.advance(now);
        self.win_count += 1;
    }

    /// Record one completed request's service time (seconds).
    pub fn on_service(&mut self, service_secs: f64) {
        if service_secs.is_finite() && service_secs > 0.0 {
            self.service.observe(service_secs);
            self.mu_epoch += 1;
        }
    }

    /// The predictor's `(λ̂ epoch, μ̂ epoch)` — monotone counters that
    /// advance exactly when the respective estimate may have changed.
    /// [`ForecastCache`] keys on them (plus the server count) to skip
    /// re-evaluating the M/M/c model between ticks.
    pub fn epochs(&self) -> (u64, u64) {
        (self.lambda_epoch, self.mu_epoch)
    }

    /// Build the forecast as of `now`, assuming the site currently holds
    /// `servers` servers.
    pub fn forecast(&mut self, now: f64, servers: u32) -> WaitForecast {
        self.advance(now);
        let lambda = self.lambda.value().unwrap_or(0.0);
        let mu = match self.service.value() {
            Some(s) if s > 0.0 => 1.0 / s,
            _ => 0.0,
        };
        WaitForecast {
            lambda,
            mu,
            servers,
        }
    }
}

/// A [`WaitForecast`] with its M/M/c model already evaluated: the raw
/// λ̂/μ̂/c triple plus a precomputed [`MmcSnapshot`], so `mean_wait` and
/// `wait_percentile` are O(1) arithmetic instead of a model build.
///
/// This is what the federation hands the model-driven routers in each
/// `SiteState`: the routers' waiting-time queries return exactly the
/// same bits as the uncached [`WaitForecast`] methods (the snapshot is
/// a bit-identical stand-in for the [`MmcQueue`] those build), but the
/// per-decision cost collapses from one allocation-plus-O(c) model
/// construction per site to a handful of float operations.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvaluatedForecast {
    raw: WaitForecast,
    /// The evaluated model; `None` exactly when the uncached path would
    /// fail to build one (insufficient telemetry or parameters the
    /// model rejects).
    model: Option<MmcSnapshot>,
}

impl EvaluatedForecast {
    /// Evaluate `raw` through the caller's scratch buffers.
    pub fn evaluate(scratch: &mut ErlangScratch, raw: WaitForecast) -> Self {
        let model = if raw.has_model() {
            scratch.eval(raw.lambda, raw.mu, raw.servers).ok()
        } else {
            None
        };
        Self { raw, model }
    }

    /// The raw λ̂/μ̂/c triple.
    #[inline]
    pub fn raw(&self) -> WaitForecast {
        self.raw
    }

    /// Estimated arrival rate λ̂ (requests/second).
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.raw.lambda
    }

    /// Estimated per-server service rate μ̂ (requests/second).
    #[inline]
    pub fn mu(&self) -> f64 {
        self.raw.mu
    }

    /// Server count assumed for the forecast.
    #[inline]
    pub fn servers(&self) -> u32 {
        self.raw.servers
    }

    /// Whether enough telemetry has accumulated to build a model.
    #[inline]
    pub fn has_model(&self) -> bool {
        self.raw.has_model()
    }

    /// Estimated utilization `λ̂ / (c μ̂)` (0 without a model).
    pub fn utilization(&self) -> f64 {
        self.raw.utilization()
    }

    /// Predicted mean waiting time, seconds — bit-identical to
    /// [`WaitForecast::mean_wait`].
    pub fn mean_wait(&self) -> f64 {
        self.model.map_or(0.0, |m| m.mean_wait())
    }

    /// Predicted waiting time at percentile `p ∈ [0, 1)`, seconds —
    /// bit-identical to [`WaitForecast::wait_percentile`].
    pub fn wait_percentile(&self, p: f64) -> f64 {
        self.model.map_or(0.0, |m| m.wait_percentile(p))
    }
}

impl From<WaitForecast> for EvaluatedForecast {
    /// Evaluate through throw-away scratch buffers — convenient off the
    /// hot path (tests, benches); the routing loop goes through a
    /// [`ForecastCache`] instead.
    fn from(raw: WaitForecast) -> Self {
        Self::evaluate(&mut ErlangScratch::new(), raw)
    }
}

/// Per-site forecast cache keyed by `(λ̂ epoch, μ̂ epoch, c)`.
///
/// The federation refreshes every site's forecast at every routing
/// decision, but the underlying estimates only move when the predictor
/// closes an arrival tick, accepts a service observation, or the site's
/// server count changes. The cache compares the predictor's
/// [`epochs`](WaitPredictor::epochs) (after advancing it to `now`) and
/// the server count against the key of the last evaluation and returns
/// the retained [`EvaluatedForecast`] on a hit — making the steady-state
/// refresh path allocation-free and O(1) per site. Evaluations reuse one
/// [`ErlangScratch`], so even misses allocate nothing once the buffers
/// have grown to the fleet size.
#[derive(Debug, Clone, Default)]
pub struct ForecastCache {
    scratch: ErlangScratch,
    /// `(λ̂ epoch, μ̂ epoch, servers)` of the retained evaluation.
    key: Option<(u64, u64, u32)>,
    cached: EvaluatedForecast,
}

impl ForecastCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The site's forecast as of `now` with `servers` servers,
    /// re-evaluated only if the predictor advanced or the server count
    /// changed since the last call.
    pub fn refresh(
        &mut self,
        predictor: &mut WaitPredictor,
        now: f64,
        servers: u32,
    ) -> EvaluatedForecast {
        predictor.advance(now);
        let (le, me) = predictor.epochs();
        let key = (le, me, servers);
        if self.key != Some(key) {
            let raw = predictor.forecast(now, servers);
            self.cached = EvaluatedForecast::evaluate(&mut self.scratch, raw);
            self.key = Some(key);
        }
        self.cached
    }

    /// Drop the retained evaluation (the next refresh recomputes).
    pub fn invalidate(&mut self) {
        self.key = None;
    }
}

/// Value-keyed evaluation cache for *snapshotted* forecasts.
///
/// A [`ForecastCache`] keys on the live predictor's epoch counters, so
/// it only works next to the predictor that produced the forecast. A
/// telemetry snapshot travels away from its predictor (site → router,
/// over the network model), and after a site rebuild the replacement
/// predictor's epochs restart at zero — epoch keys would collide across
/// incarnations. This cache instead keys on the forecast's *value*
/// (`λ̂` bits, `μ̂` bits, server count): consecutive snapshots of a
/// quiet site carry identical estimates and hit without re-running the
/// Erlang-C recurrence, while any change in the reported triple — from
/// whichever predictor incarnation — re-evaluates through the retained
/// scratch buffers, allocation-free once they have grown to fleet size.
#[derive(Debug, Clone, Default)]
pub struct SnapshotCache {
    scratch: ErlangScratch,
    /// `(λ̂ bits, μ̂ bits, servers)` of the retained evaluation.
    key: Option<(u64, u64, u32)>,
    cached: EvaluatedForecast,
}

impl SnapshotCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate `raw` through the cache: a key compare and a copy when
    /// the reported triple is unchanged since the last call, a full
    /// [`EvaluatedForecast::evaluate`] otherwise. Bit-identical to the
    /// uncached path either way.
    pub fn evaluate(&mut self, raw: WaitForecast) -> EvaluatedForecast {
        let key = (raw.lambda.to_bits(), raw.mu.to_bits(), raw.servers);
        if self.key != Some(key) {
            self.cached = EvaluatedForecast::evaluate(&mut self.scratch, raw);
            self.key = Some(key);
        }
        self.cached
    }

    /// Drop the retained evaluation (the next call recomputes).
    pub fn invalidate(&mut self) {
        self.key = None;
    }
}

/// EWMA of a site's *down* fraction over fixed ticks — the
/// failure-aware router's memory of recent crashes and partitions.
///
/// Feed it the site's up/down state whenever the state is observed or
/// changes ([`HealthEwma::observe`]); the current flakiness score is
/// the EWMA of per-tick downtime fractions, 0 for a site that has been
/// healthy for a while, approaching 1 while the site stays dark.
#[derive(Debug, Clone)]
pub struct HealthEwma {
    tick_secs: f64,
    ewma: Ewma,
    /// Start of the current tick.
    win_start: Option<f64>,
    /// Last observation instant inside the current tick.
    last_t: f64,
    /// Whether the site was down at `last_t`.
    down: bool,
    /// Downtime accumulated inside the current tick, seconds.
    acc_down: f64,
}

impl HealthEwma {
    /// A tracker folding `tick_secs`-wide downtime fractions into an
    /// EWMA with weight `alpha`.
    pub fn new(tick_secs: f64, alpha: f64) -> Self {
        assert!(
            tick_secs.is_finite() && tick_secs > 0.0,
            "tick_secs must be positive, got {tick_secs}"
        );
        Self {
            tick_secs,
            ewma: Ewma::new(alpha),
            win_start: None,
            last_t: 0.0,
            down: false,
            acc_down: 0.0,
        }
    }

    /// Record that the site is `down` (or up) as of time `now`.
    /// Timestamps must be non-decreasing.
    ///
    /// A gap spanning more than [`GAP_FOLD_TICKS`] ticks is folded in
    /// O(1): after the first closed tick the state is constant across
    /// every whole tick of the gap (fully down ⇒ 1.0, fully up ⇒ 0.0),
    /// so the run collapses to one closed-form EWMA decay instead of a
    /// per-tick loop — a site observed again after a long outage (or a
    /// long healthy stretch) costs constant work.
    pub fn observe(&mut self, now: f64, down: bool) {
        let Some(mut start) = self.win_start else {
            self.win_start = Some(now);
            self.last_t = now;
            self.down = down;
            return;
        };
        if now - start >= self.tick_secs {
            // Close the first elapsed tick exactly — it may hold a
            // partial span of accumulated downtime.
            let tick_end = start + self.tick_secs;
            if self.down {
                self.acc_down += tick_end - self.last_t;
            }
            self.ewma
                .observe((self.acc_down / self.tick_secs).clamp(0.0, 1.0));
            self.acc_down = 0.0;
            self.last_t = tick_end;
            start = tick_end;
            // The remaining whole ticks all carry the same state.
            let gap = (now - start) / self.tick_secs;
            if gap >= GAP_FOLD_TICKS as f64 {
                let n = (gap as u64).saturating_sub(1);
                self.ewma
                    .fold_constant(if self.down { 1.0 } else { 0.0 }, n);
                start += self.tick_secs * n as f64;
                self.last_t = start;
            }
            while now - start >= self.tick_secs {
                let tick_end = start + self.tick_secs;
                if self.down {
                    self.acc_down += tick_end - self.last_t;
                }
                self.ewma
                    .observe((self.acc_down / self.tick_secs).clamp(0.0, 1.0));
                self.acc_down = 0.0;
                self.last_t = tick_end;
                start = tick_end;
            }
        }
        if self.down {
            self.acc_down += now - self.last_t;
        }
        self.win_start = Some(start);
        self.last_t = now;
        self.down = down;
    }

    /// Current flakiness in `[0, 1]` as of the last observation: the
    /// EWMA'd recent down fraction, biased by the current tick's
    /// in-progress state so a site that just went dark scores
    /// immediately.
    pub fn value(&self) -> f64 {
        let base = self.ewma.value().unwrap_or(0.0);
        if self.down {
            // While down, report at least the in-progress evidence.
            base.max(0.5)
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_predictor_forecasts_zero_wait() {
        let mut p = WaitPredictor::default();
        let f = p.forecast(10.0, 4);
        assert!(!f.has_model());
        assert_eq!(f.mean_wait(), 0.0);
        assert_eq!(f.wait_percentile(0.95), 0.0);
        assert_eq!(f.utilization(), 0.0);
    }

    #[test]
    fn constant_rate_is_recovered() {
        let mut p = WaitPredictor::default();
        // 8 arrivals/s, evenly spaced, for 60 s.
        let mut t = 0.0;
        while t < 60.0 {
            p.on_arrival(t);
            t += 0.125;
        }
        for _ in 0..50 {
            p.on_service(0.1);
        }
        let f = p.forecast(60.0, 2);
        assert!((f.lambda - 8.0).abs() < 0.5, "lambda={}", f.lambda);
        assert!((f.mu - 10.0).abs() < 1e-9, "mu={}", f.mu);
        // Against the closed form directly.
        let q = MmcQueue::new(f.lambda, f.mu, 2).unwrap();
        assert!((f.mean_wait() - q.mean_wait()).abs() < 1e-12);
        assert!((f.wait_percentile(0.95) - q.wait_percentile(0.95)).abs() < 1e-12);
    }

    #[test]
    fn idle_gap_decays_lambda() {
        let mut p = WaitPredictor::default();
        for i in 0..200 {
            p.on_arrival(f64::from(i) * 0.05); // 20/s for 10 s
        }
        let busy = p.forecast(10.0, 1).lambda;
        assert!(busy > 10.0, "busy lambda={busy}");
        // 30 quiet seconds: the estimate must collapse.
        let idle = p.forecast(40.0, 1).lambda;
        assert!(idle < 0.1, "idle lambda={idle}");
    }

    #[test]
    fn overload_forecast_is_infinite() {
        let mut p = WaitPredictor::new(PredictorConfig {
            tick_secs: 1.0,
            lambda_alpha: 1.0,
            service_alpha: 1.0,
        });
        for i in 0..40 {
            p.on_arrival(f64::from(i) * 0.05); // 20/s
        }
        p.on_service(0.5); // mu = 2/s per server
        let f = p.forecast(2.0, 4); // capacity 8/s < 20/s
        assert!(f.has_model());
        assert!(f.utilization() > 1.0);
        assert_eq!(f.mean_wait(), f64::INFINITY);
        assert_eq!(f.wait_percentile(0.95), f64::INFINITY);
    }

    #[test]
    fn service_ewma_tracks_mu() {
        let mut p = WaitPredictor::new(PredictorConfig {
            service_alpha: 0.5,
            ..PredictorConfig::default()
        });
        p.on_service(0.2);
        p.on_service(0.1);
        // EWMA: 0.5*0.1 + 0.5*0.2 = 0.15 => mu = 6.67.
        let f = p.forecast(0.0, 1);
        assert!((f.mu - 1.0 / 0.15).abs() < 1e-9, "mu={}", f.mu);
        // Bogus observations are ignored.
        p.on_service(f64::NAN);
        p.on_service(-1.0);
        assert!((p.forecast(0.0, 1).mu - 1.0 / 0.15).abs() < 1e-9);
    }

    /// Regression: a million-tick idle gap (or an equally large `now`
    /// jump after site recovery) must fold in O(1), not iterate one
    /// EWMA observation per elapsed tick. Finishing this test at all is
    /// the check — the pre-fix loop ran 10⁶ folds per call here.
    #[test]
    fn million_tick_gap_folds_in_constant_time() {
        let mut p = WaitPredictor::default();
        for i in 0..100 {
            p.on_arrival(f64::from(i) * 0.1); // 10/s for 10 s
        }
        assert!(p.forecast(10.0, 1).lambda > 5.0);
        // 10⁶ quiet seconds (tick_secs = 1): the estimate collapses.
        let f = p.forecast(1.0e6 + 10.0, 1);
        assert_eq!(f.lambda, 0.0, "lambda must fully decay: {}", f.lambda);
        // The short-gap path is unaffected: folding 10 quiet ticks by
        // loop (under the threshold) matches a fresh predictor fed the
        // same history.
        let mut a = WaitPredictor::default();
        let mut b = WaitPredictor::default();
        for i in 0..50 {
            a.on_arrival(f64::from(i) * 0.2);
            b.on_arrival(f64::from(i) * 0.2);
        }
        let fa = a.forecast(20.0, 2);
        let fb = b.forecast(20.0, 2);
        assert_eq!(fa.lambda.to_bits(), fb.lambda.to_bits());

        // Same bound for the health tracker: a huge observation gap.
        let mut h = HealthEwma::new(5.0, 0.3);
        h.observe(0.0, true);
        h.observe(30.0, false); // 30 s down, then up
        h.observe(5.0e6, false); // ~10⁶ healthy ticks later
        assert!(h.value() < 1e-12, "healed score {}", h.value());
        let mut h = HealthEwma::new(5.0, 0.3);
        h.observe(0.0, false);
        h.observe(5.0e6, true); // down after a huge healthy stretch
        assert!(h.value() >= 0.5);
        h.observe(5.0e6 + 1.0e7, true); // down for 10⁷ s: score saturates
        assert!(h.value() > 0.99, "saturated score {}", h.value());
    }

    #[test]
    fn epochs_move_exactly_with_the_estimates() {
        let mut p = WaitPredictor::default();
        assert_eq!(p.epochs(), (0, 0));
        p.on_arrival(0.1); // first observation only opens the window
        assert_eq!(p.epochs(), (0, 0));
        p.on_arrival(0.2); // same tick: no fold
        assert_eq!(p.epochs(), (0, 0));
        let _ = p.forecast(1.5, 2); // closes tick [0.1, 1.1)
        assert_eq!(p.epochs(), (1, 0));
        let _ = p.forecast(1.6, 2); // same tick: cacheable
        assert_eq!(p.epochs(), (1, 0));
        p.on_service(0.2);
        assert_eq!(p.epochs(), (1, 1));
        p.on_service(f64::NAN); // rejected: estimate unchanged
        p.on_service(-1.0);
        assert_eq!(p.epochs(), (1, 1));
    }

    /// The cache returns bit-identical forecasts to the uncached
    /// WaitForecast + MmcQueue path across a telemetry stream, while
    /// only re-evaluating when an epoch or the server count moves.
    #[test]
    fn forecast_cache_is_bit_identical_to_uncached_path() {
        let mut pred = WaitPredictor::default();
        let mut cache = ForecastCache::new();
        let mut t = 0.0;
        for step in 0..400 {
            t += 0.05 + f64::from(step % 7) * 0.03;
            if step % 3 == 0 {
                pred.on_arrival(t);
            }
            if step % 5 == 0 {
                pred.on_service(0.05 + f64::from(step % 11) * 0.01);
            }
            let servers = 1 + (step % 4) as u32;
            let cached = cache.refresh(&mut pred, t, servers);
            let raw = pred.forecast(t, servers);
            assert_eq!(cached.lambda().to_bits(), raw.lambda.to_bits());
            assert_eq!(cached.mu().to_bits(), raw.mu.to_bits());
            assert_eq!(cached.servers(), raw.servers);
            assert_eq!(
                cached.mean_wait().to_bits(),
                raw.mean_wait().to_bits(),
                "step {step}"
            );
            for &p in &[0.5, 0.95, 0.99] {
                assert_eq!(
                    cached.wait_percentile(p).to_bits(),
                    raw.wait_percentile(p).to_bits(),
                    "step {step} p={p}"
                );
            }
        }
    }

    #[test]
    fn forecast_cache_hits_between_ticks() {
        let mut pred = WaitPredictor::default();
        let mut cache = ForecastCache::new();
        for i in 0..40 {
            pred.on_arrival(f64::from(i) * 0.05);
        }
        pred.on_service(0.1);
        let a = cache.refresh(&mut pred, 2.0, 3);
        let key_after_first = cache.key;
        // Queries inside the same tick with the same server count must
        // not re-evaluate (the key is unchanged)…
        let b = cache.refresh(&mut pred, 2.4, 3);
        assert_eq!(cache.key, key_after_first);
        assert_eq!(a.mean_wait().to_bits(), b.mean_wait().to_bits());
        // …while a server-count change or a closed tick invalidates.
        let _ = cache.refresh(&mut pred, 2.4, 4);
        assert_ne!(cache.key, key_after_first);
        let key_after_resize = cache.key;
        let _ = cache.refresh(&mut pred, 3.4, 4); // next tick closed
        assert_ne!(cache.key, key_after_resize);
    }

    /// The value-keyed snapshot cache is bit-identical to the uncached
    /// evaluation, hits on repeated triples, and — unlike the
    /// epoch-keyed [`ForecastCache`] — distinguishes forecasts from
    /// different predictor incarnations by value rather than colliding
    /// on restarted epoch counters.
    #[test]
    fn snapshot_cache_is_bit_identical_and_value_keyed() {
        let mut cache = SnapshotCache::new();
        let mut pred = WaitPredictor::default();
        for i in 0..60 {
            pred.on_arrival(f64::from(i) * 0.04);
        }
        pred.on_service(0.08);
        let raw = pred.forecast(3.0, 3);
        let uncached = EvaluatedForecast::from(raw);
        let a = cache.evaluate(raw);
        let key_after_first = cache.key;
        assert_eq!(a.mean_wait().to_bits(), uncached.mean_wait().to_bits());
        assert_eq!(
            a.wait_percentile(0.95).to_bits(),
            uncached.wait_percentile(0.95).to_bits()
        );
        // Identical triple — even via a *rebuilt* predictor whose epochs
        // restarted — must hit without re-keying.
        let _ = cache.evaluate(raw);
        assert_eq!(cache.key, key_after_first);
        // A changed server count re-evaluates…
        let resized = cache.evaluate(pred.forecast(3.0, 4));
        assert_ne!(cache.key, key_after_first);
        assert_ne!(a.mean_wait().to_bits(), resized.mean_wait().to_bits());
        // …and a fresh (cold) predictor's no-model forecast is its own key.
        let cold = WaitPredictor::default().forecast(0.0, 3);
        let c = cache.evaluate(cold);
        assert!(!c.has_model());
        assert_eq!(c.mean_wait(), 0.0);
        cache.invalidate();
        assert_eq!(cache.key, None);
    }

    #[test]
    #[should_panic(expected = "tick_secs must be positive")]
    fn rejects_bad_tick() {
        WaitPredictor::new(PredictorConfig {
            tick_secs: 0.0,
            ..PredictorConfig::default()
        });
    }

    #[test]
    fn health_ewma_scores_downtime() {
        let mut h = HealthEwma::new(5.0, 0.3);
        h.observe(0.0, false);
        h.observe(60.0, false);
        assert_eq!(h.value(), 0.0, "healthy site must score 0");
        // Down for 30 s: the score climbs.
        h.observe(60.0, true);
        assert!(h.value() >= 0.5, "freshly-down site must score high");
        h.observe(90.0, false);
        let after_crash = h.value();
        assert!(after_crash > 0.3, "after 30s down: {after_crash}");
        // 2 minutes of health: the score decays toward 0.
        h.observe(210.0, false);
        let healed = h.value();
        assert!(healed < 0.05, "healed score {healed}");
        assert!(healed < after_crash);
    }

    #[test]
    fn health_ewma_attributes_partial_ticks() {
        let mut h = HealthEwma::new(10.0, 1.0);
        h.observe(0.0, false);
        h.observe(5.0, true); // down at t=5
        h.observe(10.0, false); // up at t=10: tick 0-10 is 50% down
        h.observe(20.0, false); // close tick 10-20 (fully up)
                                // alpha=1 => value tracks the last closed tick exactly: 0.0,
                                // but the 50% tick was observed on the way.
        assert_eq!(h.value(), 0.0);
    }
}
