//! Property-based tests for the queueing models.

use lass_queueing::{
    hetero::{required_additional_containers, HeteroMmc},
    mmc::MmcQueue,
    solver::{required_containers_exact, SolverConfig},
    ExactPercentiles, P2Quantile,
};
use proptest::prelude::*;

fn stable_mmc() -> impl Strategy<Value = (f64, f64, u32)> {
    // lambda, mu, c with rho < 0.98 to stay clearly stable.
    (0.5f64..200.0, 0.5f64..50.0, 1u32..200)
        .prop_filter("stable", |(l, m, c)| l / (m * f64::from(*c)) < 0.98)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mmc_probabilities_are_a_distribution((l, m, c) in stable_mmc()) {
        let q = MmcQueue::new(l, m, c).unwrap();
        let mut sum = 0.0;
        for n in 0..500_000u64 {
            let p = q.p_n(n);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
            sum += p;
            if sum > 1.0 - 1e-10 { break; }
        }
        prop_assert!(sum > 1.0 - 1e-6, "sum={sum} for λ={l} μ={m} c={c}");
    }

    #[test]
    fn mmc_cumulative_is_monotone((l, m, c) in stable_mmc()) {
        let q = MmcQueue::new(l, m, c).unwrap();
        let mut last = 0.0;
        for n in 0..200u64 {
            let cum = q.cumulative_p(n);
            prop_assert!(cum + 1e-12 >= last);
            last = cum;
        }
    }

    #[test]
    fn paper_bound_never_exceeds_exact_cdf_by_much(
        (l, m, c) in stable_mmc(),
        t in 0.0f64..2.0,
    ) {
        // The paper's Eq. 3-4 discretized bound and the exact M/M/c wait CDF
        // must be close; the bound is based on *expected* drain so it may
        // slightly exceed the exact tail, but both live in [0,1] and agree
        // at t -> infinity.
        let q = MmcQueue::new(l, m, c).unwrap();
        let b = q.wait_probability_bound(t);
        let e = q.wait_cdf(t);
        prop_assert!((0.0..=1.0).contains(&b));
        prop_assert!((0.0..=1.0).contains(&e));
        // At generous budgets both approach 1.
        let big = q.wait_probability_bound(50.0 / (m * f64::from(c)) + 5.0);
        prop_assert!(big > 0.99, "big-budget bound={big}");
    }

    #[test]
    fn solver_is_minimal_and_feasible(
        lambda in 1.0f64..100.0,
        mu in 1.0f64..20.0,
        t in 0.01f64..1.0,
    ) {
        let cfg = SolverConfig::default();
        let res = required_containers_exact(lambda, mu, t, &cfg).unwrap();
        let q = MmcQueue::new(lambda, mu, res.containers).unwrap();
        prop_assert!(q.wait_probability_bound(t) >= cfg.target_percentile);
        if res.containers > 1 {
            let q1 = MmcQueue::new(lambda, mu, res.containers - 1).unwrap();
            prop_assert!(q1.wait_probability_bound(t) < cfg.target_percentile);
        }
    }

    #[test]
    fn solver_monotone_in_lambda(
        mu in 1.0f64..20.0,
        t in 0.02f64..0.5,
        base in 1.0f64..50.0,
        bump in 0.1f64..50.0,
    ) {
        let cfg = SolverConfig::default();
        let lo = required_containers_exact(base, mu, t, &cfg).unwrap();
        let hi = required_containers_exact(base + bump, mu, t, &cfg).unwrap();
        prop_assert!(hi.containers >= lo.containers);
    }

    #[test]
    fn hetero_equals_homogeneous_when_uniform(
        lambda in 1.0f64..50.0,
        mu in 1.0f64..10.0,
        c in 1usize..40,
    ) {
        prop_assume!(lambda / (mu * c as f64) < 0.98);
        let het = HeteroMmc::new(lambda, vec![mu; c]).unwrap();
        let hom = MmcQueue::new(lambda, mu, c as u32).unwrap();
        for n in 0..20u64 {
            prop_assert!((het.p_n(n) - hom.p_n(n)).abs() < 1e-8);
        }
        prop_assert!((het.wait_probability_bound(0.1) - hom.wait_probability_bound(0.1)).abs() < 1e-8);
    }

    #[test]
    fn hetero_bound_is_conservative_under_spread(
        lambda in 1.0f64..30.0,
        mu in 2.0f64..10.0,
        c in 2usize..20,
        spread in 0.05f64..0.9,
        t in 0.01f64..0.5,
    ) {
        prop_assume!(lambda / (mu * c as f64) < 0.9);
        // Same aggregate capacity, one slow + one fast container.
        let mut mus = vec![mu; c];
        mus[0] = mu * (1.0 - spread);
        mus[c - 1] = mu * (1.0 + spread);
        let het = HeteroMmc::new(lambda, mus).unwrap();
        let hom = MmcQueue::new(lambda, mu, c as u32).unwrap();
        prop_assert!(het.wait_probability_bound(t) <= hom.wait_probability_bound(t) + 1e-9);
    }

    #[test]
    fn hetero_solver_achieves_target(
        lambda in 5.0f64..80.0,
        slow_frac in 0.3f64..1.0,
        n_existing in 0usize..6,
        t in 0.02f64..0.5,
    ) {
        let cfg = SolverConfig::default();
        let standard = 10.0;
        let existing = vec![standard * slow_frac; n_existing];
        let res = required_additional_containers(lambda, &existing, standard, t, &cfg).unwrap();
        prop_assert!(res.achieved >= cfg.target_percentile);
        // Verify independently with a fresh model.
        let mut mus = existing.clone();
        mus.extend(std::iter::repeat_n(standard, res.containers as usize));
        if !mus.is_empty() {
            let model = HeteroMmc::new(lambda, mus).unwrap();
            prop_assert!(model.wait_probability_bound(t) >= cfg.target_percentile - 1e-12);
        }
    }

    /// Differential: a reused `ErlangScratch` walked through an
    /// arbitrary `(λ, μ, c)` sequence — rate changes, fleet
    /// growth/shrink, stable and unstable regimes interleaved — must
    /// agree with a fresh `MmcQueue` per step to the last ULP on every
    /// waiting-time query.
    #[test]
    fn erlang_scratch_walk_is_bit_identical_to_fresh_models(
        params in prop::collection::vec(
            (0.1f64..300.0, 0.1f64..50.0, 1u32..300),
            1..40,
        ),
        p in 0.01f64..0.999,
        t in 0.0f64..2.0,
    ) {
        let mut scratch = lass_queueing::ErlangScratch::new();
        for (l, m, c) in params {
            let q = MmcQueue::new(l, m, c).unwrap();
            let s = scratch.eval(l, m, c).unwrap();
            prop_assert_eq!(
                s.erlang_c().to_bits(), q.erlang_c().to_bits(),
                "erlang_c λ={} μ={} c={}", l, m, c
            );
            prop_assert_eq!(
                s.mean_wait().to_bits(), q.mean_wait().to_bits(),
                "mean_wait λ={} μ={} c={}", l, m, c
            );
            prop_assert_eq!(
                s.wait_percentile(p).to_bits(), q.wait_percentile(p).to_bits(),
                "wait_percentile({}) λ={} μ={} c={}", p, l, m, c
            );
            prop_assert_eq!(
                s.wait_cdf(t).to_bits(), q.wait_cdf(t).to_bits(),
                "wait_cdf({}) λ={} μ={} c={}", t, l, m, c
            );
        }
    }

    /// Differential: driving one predictor through a `ForecastCache`
    /// and a clone of it through the uncached
    /// `WaitForecast` → `MmcQueue` path over the same arbitrary
    /// arrival/service/query stream yields the same `mean_wait` and
    /// `wait_percentile` bits at every query instant.
    #[test]
    fn forecast_cache_walk_is_bit_identical_to_uncached(
        steps in prop::collection::vec(
            (0.001f64..3.0, 0u8..3, 0.001f64..2.0, 1u32..40),
            1..120,
        ),
        p in 0.01f64..0.999,
    ) {
        let mut cached_pred = lass_queueing::WaitPredictor::default();
        let mut uncached_pred = lass_queueing::WaitPredictor::default();
        let mut cache = lass_queueing::ForecastCache::new();
        let mut now = 0.0;
        for (dt, kind, service, servers) in steps {
            now += dt;
            match kind {
                0 => {
                    cached_pred.on_arrival(now);
                    uncached_pred.on_arrival(now);
                }
                1 => {
                    cached_pred.on_service(service);
                    uncached_pred.on_service(service);
                }
                _ => {}
            }
            let cached = cache.refresh(&mut cached_pred, now, servers);
            let raw = uncached_pred.forecast(now, servers);
            prop_assert_eq!(cached.lambda().to_bits(), raw.lambda.to_bits());
            prop_assert_eq!(cached.mu().to_bits(), raw.mu.to_bits());
            prop_assert_eq!(
                cached.mean_wait().to_bits(),
                raw.mean_wait().to_bits(),
                "mean_wait at t={}", now
            );
            prop_assert_eq!(
                cached.wait_percentile(p).to_bits(),
                raw.wait_percentile(p).to_bits(),
                "wait_percentile({}) at t={}", p, now
            );
        }
    }

    #[test]
    fn p2_tracks_exact_quantile(seed in 0u64..1000, p in 0.05f64..0.95) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p2 = P2Quantile::new(p);
        let mut exact = ExactPercentiles::new();
        for _ in 0..5_000 {
            let x: f64 = rng.gen();
            p2.observe(x);
            exact.add(x);
        }
        let a = p2.estimate().unwrap();
        let b = exact.percentile(p).unwrap();
        prop_assert!((a - b).abs() < 0.05, "p={p} p2={a} exact={b}");
    }
}
