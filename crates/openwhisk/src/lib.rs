//! Vanilla-OpenWhisk baseline scheduler (§6.6 of the LaSS paper).
//!
//! The paper compares LaSS against off-the-shelf Apache OpenWhisk and
//! observes a **cascading invoker failure**: OpenWhisk's sharding-pool load
//! balancer (a) pins each function to a "home" invoker to maximize
//! container reuse and (b) admits containers based on *memory only*,
//! ignoring CPU. A CPU-heavy function (MobileNet: 2 vCPU, 1 GB) therefore
//! over-packs a 4-core/16 GB node long before memory runs out; the node
//! thrashes and its invoker goes unresponsive; the controller shifts the
//! whole workload to the next invoker, which then fails the same way,
//! until every invoker is down.
//!
//! This crate reproduces that mechanism with an invoker-level simulation:
//! memory-slot admission, home-invoker sharding with ring probing,
//! proportional-share CPU slowdown under oversubscription, and a
//! thrash-to-unresponsive transition after sustained CPU overload.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;

pub use baseline::{OwConfig, OwFunctionSetup, OwReport, OwSimulation};
