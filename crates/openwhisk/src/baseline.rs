//! The OpenWhisk sharding-pool simulation, as a [`SchedulerPolicy`] on
//! the shared discrete-event engine.

use lass_cluster::{CpuMilli, FnId, MemMib, RequestId};
use lass_functions::{FunctionSpec, WorkloadSpec};
use lass_simcore::{
    run_simulation, EngineConfig, EngineOutcome, FunctionEntry, PolicyCtx, ReqId, SampleStats,
    SchedulerPolicy, SimDuration, SimTime, TimeSeries,
};
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};

/// Baseline configuration (defaults mirror the paper's 3-node testbed and
/// stock OpenWhisk behaviour).
#[derive(Debug, Clone)]
pub struct OwConfig {
    /// Number of invoker (worker) nodes.
    pub invokers: u32,
    /// Memory per invoker (admission is memory-only, like OpenWhisk).
    pub mem_per_invoker: MemMib,
    /// CPU per invoker (not consulted at admission; drives slowdown).
    pub cpu_per_invoker: CpuMilli,
    /// CPU demand / capacity ratio beyond which a node starts thrashing.
    pub thrash_factor: f64,
    /// Sustained thrashing for this long makes the invoker unresponsive.
    pub thrash_grace_secs: f64,
    /// The controller notices an unresponsive invoker after this long and
    /// stops scheduling to it (meanwhile requests are sent into the void).
    pub health_timeout_secs: f64,
    /// Idle warm containers are reclaimed after this timeout (OpenWhisk's
    /// pause-grace/idle eviction).
    pub idle_timeout_secs: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OwConfig {
    fn default() -> Self {
        Self {
            invokers: 3,
            mem_per_invoker: MemMib(16 * 1024),
            cpu_per_invoker: CpuMilli::from_cores(4.0),
            thrash_factor: 2.0,
            thrash_grace_secs: 10.0,
            health_timeout_secs: 10.0,
            idle_timeout_secs: 60.0,
            seed: 42,
        }
    }
}

/// One function deployed on the baseline.
#[derive(Debug, Clone)]
pub struct OwFunctionSetup {
    /// Runtime characteristics.
    pub spec: FunctionSpec,
    /// Workload driving the function.
    pub workload: WorkloadSpec,
    /// SLO deadline (seconds) for reporting parity with LaSS runs.
    pub slo_deadline: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CtrState {
    Starting,
    Idle,
    Busy,
}

#[derive(Debug)]
struct OwContainer {
    fn_id: FnId,
    cpu_demand: CpuMilli,
    mem: MemMib,
    state: CtrState,
    queue: VecDeque<RequestId>,
    in_service: Option<(RequestId, u64, SimTime)>,
    idle_since: Option<SimTime>,
}

#[derive(Debug)]
struct Invoker {
    mem_capacity: MemMib,
    mem_used: MemMib,
    containers: BTreeMap<u64, OwContainer>,
    /// When sustained CPU overload began.
    overload_since: Option<SimTime>,
    /// The instant the invoker went unresponsive (never recovers, §6.6).
    unresponsive_at: Option<SimTime>,
    /// When the controller noticed.
    marked_down_at: Option<SimTime>,
}

impl Invoker {
    fn cpu_demand(&self) -> CpuMilli {
        self.containers
            .values()
            .filter(|c| c.state == CtrState::Busy)
            .map(|c| c.cpu_demand)
            .sum()
    }

    fn is_unresponsive(&self) -> bool {
        self.unresponsive_at.is_some()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Ready { invoker: u32, ctr: u64 },
    Complete { invoker: u32, ctr: u64, seq: u64 },
    ThrashCheck { invoker: u32 },
    IdleSweep,
}

/// Per-function results of a baseline run.
#[derive(Debug, Serialize)]
pub struct OwFnReport {
    /// Function name.
    pub name: String,
    /// Total arrivals.
    pub arrivals: usize,
    /// Completed requests.
    pub completed: usize,
    /// Requests sent to invokers that never answered (stalled or dropped).
    pub lost: usize,
    /// Waiting times of completed requests.
    pub wait: SampleStats,
    /// SLO violations among completed requests.
    pub slo_violations: usize,
}

/// Results of a baseline run.
#[derive(Debug, Serialize)]
pub struct OwReport {
    /// Per-function outcomes.
    pub per_fn: BTreeMap<u32, OwFnReport>,
    /// `(invoker, seconds)` when each invoker went unresponsive.
    pub failures: Vec<(u32, f64)>,
    /// The instant the last invoker died (the completed cascade), if all
    /// did.
    pub cascade_complete_at: Option<f64>,
    /// Requests still unanswered at the end of the run.
    pub outstanding: usize,
    /// Healthy-invoker count over time.
    pub healthy_timeline: TimeSeries,
}

/// The baseline simulation.
pub struct OwSimulation {
    cfg: OwConfig,
    setups: Vec<OwFunctionSetup>,
}

impl OwSimulation {
    /// Create a baseline simulation.
    pub fn new(cfg: OwConfig) -> Self {
        Self {
            cfg,
            setups: Vec::new(),
        }
    }

    /// Deploy a function; ids are assigned in order.
    pub fn add_function(&mut self, setup: OwFunctionSetup) -> FnId {
        let id = FnId(self.setups.len() as u32);
        self.setups.push(setup);
        id
    }

    /// Run for `duration` seconds (defaults to the longest workload).
    pub fn run(self, duration_override: Option<f64>) -> OwReport {
        let duration = duration_override.unwrap_or_else(|| {
            self.setups
                .iter()
                .map(|s| s.workload.duration())
                .fold(0.0f64, f64::max)
        });
        assert!(duration > 0.0);
        let cfg = self.cfg;
        let entries: Vec<FunctionEntry> = self
            .setups
            .iter()
            .map(|s| FunctionEntry {
                name: s.spec.name.clone(),
                slo_deadline: s.slo_deadline,
                process: s.workload.build(),
            })
            .collect();
        let engine_cfg = EngineConfig {
            seed: cfg.seed,
            rng_label_prefix: "ow-".into(),
            duration_secs: duration,
            drain_secs: 60.0,
            stream_stats: false,
            parallel_sites: None,
        };
        let invokers: Vec<Invoker> = (0..cfg.invokers)
            .map(|_| Invoker {
                mem_capacity: cfg.mem_per_invoker,
                mem_used: MemMib::ZERO,
                containers: BTreeMap::new(),
                overload_since: None,
                unresponsive_at: None,
                marked_down_at: None,
            })
            .collect();
        let policy = OwPolicy {
            cfg,
            setups: self.setups,
            invokers,
            next_ctr: 0,
            next_seq: 0,
            failures: Vec::new(),
            healthy_timeline: TimeSeries::new(),
        };
        run_simulation(engine_cfg, entries, policy)
    }
}

/// The stock-OpenWhisk scheduling policy: home-invoker sharding with
/// ring probing, memory-only admission, proportional-share slowdown, and
/// the thrash-to-unresponsive transition.
struct OwPolicy {
    cfg: OwConfig,
    setups: Vec<OwFunctionSetup>,
    invokers: Vec<Invoker>,
    next_ctr: u64,
    next_seq: u64,
    failures: Vec<(u32, f64)>,
    healthy_timeline: TimeSeries,
}

impl OwPolicy {
    fn update_overload(&mut self, ctx: &mut impl PolicyCtx<Ev>, inv_idx: u32, now: SimTime) {
        let inv = &mut self.invokers[inv_idx as usize];
        if inv.is_unresponsive() {
            return;
        }
        let demand = inv.cpu_demand();
        let limit = f64::from(self.cfg.cpu_per_invoker.0) * self.cfg.thrash_factor;
        if f64::from(demand.0) > limit {
            if inv.overload_since.is_none() {
                inv.overload_since = Some(now);
                ctx.schedule(
                    now + SimDuration::from_secs_f64(self.cfg.thrash_grace_secs),
                    Ev::ThrashCheck { invoker: inv_idx },
                );
            }
        } else {
            inv.overload_since = None;
        }
    }

    fn try_start(&mut self, ctx: &mut impl PolicyCtx<Ev>, inv_idx: u32, cid: u64, now: SimTime) {
        let inv = &mut self.invokers[inv_idx as usize];
        if !inv.is_unresponsive() {
            // Proportional-share slowdown once CPU is oversubscribed.
            let cap = f64::from(self.cfg.cpu_per_invoker.0);
            if let Some(c) = inv.containers.get_mut(&cid) {
                if c.state == CtrState::Idle {
                    if let Some(rid) = c.queue.pop_front() {
                        c.state = CtrState::Busy;
                        c.idle_since = None;
                        let fn_id = c.fn_id;
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        c.in_service = Some((rid, seq, now));
                        let demand = f64::from(inv.cpu_demand().0);
                        let slowdown = (demand / cap).max(1.0);
                        let dur = self.setups[fn_id.0 as usize]
                            .spec
                            .service
                            .sample(0.0, ctx.service_rng(fn_id.0))
                            * slowdown;
                        ctx.schedule(
                            now + SimDuration::from_secs_f64(dur),
                            Ev::Complete {
                                invoker: inv_idx,
                                ctr: cid,
                                seq,
                            },
                        );
                    }
                }
            }
        }
        self.update_overload(ctx, inv_idx, now);
    }

    fn place_arrival(
        &mut self,
        ctx: &mut impl PolicyCtx<Ev>,
        rid: RequestId,
        f: FnId,
        now: SimTime,
    ) {
        // Sharding-pool: home invoker + ring probing over invokers the
        // controller believes healthy.
        let cfg_invokers = self.cfg.invokers;
        // Copy the handful of Copy-able spec fields used below; cloning the
        // whole FunctionSpec here would allocate on every arrival.
        let spec = &self.setups[f.0 as usize].spec;
        let (std_mem, cold_start) = (spec.standard_mem, spec.cold_start);
        let cpu_demand = spec.standard_cpu.scale(spec.service.demand_fraction);
        let home = (u64::from(f.0).wrapping_mul(2_654_435_761) % u64::from(cfg_invokers)) as u32;
        let mut placed = false;
        for probe in 0..cfg_invokers {
            let idx = (home + probe) % cfg_invokers;
            let believed_down = self.invokers[idx as usize]
                .marked_down_at
                .is_some_and(|t| t <= now);
            if believed_down {
                continue;
            }
            // Warm idle container?
            let warm = self.invokers[idx as usize]
                .containers
                .iter()
                .find(|(_, c)| c.fn_id == f && c.state == CtrState::Idle)
                .map(|(id, _)| *id);
            if let Some(cid) = warm {
                self.invokers[idx as usize]
                    .containers
                    .get_mut(&cid)
                    .expect("warm exists")
                    .queue
                    .push_back(rid);
                self.try_start(ctx, idx, cid, now);
                placed = true;
                break;
            }
            // Busy container of the same function? queue on the
            // least-loaded one (container reuse).
            let busy = self.invokers[idx as usize]
                .containers
                .iter()
                .filter(|(_, c)| c.fn_id == f && c.state != CtrState::Starting)
                .min_by_key(|(id, c)| (c.queue.len(), **id))
                .map(|(id, _)| *id);
            // Memory-only admission for a new container.
            let fits = {
                let inv = &self.invokers[idx as usize];
                std_mem <= inv.mem_capacity.saturating_sub(inv.mem_used)
            };
            if fits {
                let inv = &mut self.invokers[idx as usize];
                inv.mem_used += std_mem;
                let cid = self.next_ctr;
                self.next_ctr += 1;
                let mut q = VecDeque::new();
                q.push_back(rid);
                inv.containers.insert(
                    cid,
                    OwContainer {
                        fn_id: f,
                        cpu_demand,
                        mem: std_mem,
                        state: CtrState::Starting,
                        queue: q,
                        in_service: None,
                        idle_since: None,
                    },
                );
                ctx.schedule(
                    now + cold_start,
                    Ev::Ready {
                        invoker: idx,
                        ctr: cid,
                    },
                );
                placed = true;
                break;
            }
            if let Some(cid) = busy {
                self.invokers[idx as usize]
                    .containers
                    .get_mut(&cid)
                    .expect("busy exists")
                    .queue
                    .push_back(rid);
                placed = true;
                break;
            }
        }
        if !placed {
            ctx.lose(ReqId(rid.0));
        }
    }
}

impl SchedulerPolicy for OwPolicy {
    type Event = Ev;
    type Report = OwReport;

    fn on_start(&mut self, ctx: &mut impl PolicyCtx<Ev>) {
        self.healthy_timeline
            .push(SimTime::ZERO, f64::from(self.cfg.invokers));
        ctx.schedule(
            SimTime::from_secs_f64(self.cfg.idle_timeout_secs),
            Ev::IdleSweep,
        );
    }

    fn on_arrival(&mut self, ctx: &mut impl PolicyCtx<Ev>, rid: ReqId, fn_idx: u32, now: SimTime) {
        self.place_arrival(ctx, RequestId(rid.0), FnId(fn_idx), now);
    }

    fn on_event(&mut self, ctx: &mut impl PolicyCtx<Ev>, ev: Ev, now: SimTime) {
        match ev {
            Ev::Ready { invoker, ctr } => {
                let inv = &mut self.invokers[invoker as usize];
                if inv.is_unresponsive() {
                    return;
                }
                if let Some(c) = inv.containers.get_mut(&ctr) {
                    if c.state == CtrState::Starting {
                        c.state = CtrState::Idle;
                        c.idle_since = Some(now);
                    }
                }
                self.try_start(ctx, invoker, ctr, now);
            }
            Ev::Complete { invoker, ctr, seq } => {
                if self.invokers[invoker as usize].is_unresponsive() {
                    return; // stalled forever
                }
                let Some(c) = self.invokers[invoker as usize].containers.get_mut(&ctr) else {
                    return;
                };
                let valid = matches!(c.in_service, Some((_, s, _)) if s == seq);
                if !valid {
                    return;
                }
                let (rid, _, started) = c.in_service.take().expect("validated");
                c.state = CtrState::Idle;
                c.idle_since = Some(now);
                ctx.complete(ReqId(rid.0), started, now);
                self.try_start(ctx, invoker, ctr, now);
            }
            Ev::ThrashCheck { invoker } => {
                let trip = {
                    let inv = &self.invokers[invoker as usize];
                    !inv.is_unresponsive()
                        && inv.overload_since.is_some_and(|s| {
                            now.saturating_since(s).as_secs_f64()
                                >= self.cfg.thrash_grace_secs - 1e-9
                        })
                };
                if trip {
                    let inv = &mut self.invokers[invoker as usize];
                    inv.unresponsive_at = Some(now);
                    inv.marked_down_at =
                        Some(now + SimDuration::from_secs_f64(self.cfg.health_timeout_secs));
                    self.failures.push((invoker, now.as_secs_f64()));
                    let healthy = self
                        .invokers
                        .iter()
                        .filter(|i| !i.is_unresponsive())
                        .count();
                    self.healthy_timeline.push(now, healthy as f64);
                }
            }
            Ev::IdleSweep => {
                for inv in self.invokers.iter_mut() {
                    if inv.is_unresponsive() {
                        continue;
                    }
                    let expired: Vec<u64> = inv
                        .containers
                        .iter()
                        .filter(|(_, c)| {
                            c.state == CtrState::Idle
                                && c.queue.is_empty()
                                && c.idle_since.is_some_and(|t| {
                                    now.saturating_since(t).as_secs_f64()
                                        >= self.cfg.idle_timeout_secs
                                })
                        })
                        .map(|(id, _)| *id)
                        .collect();
                    for cid in expired {
                        let c = inv.containers.remove(&cid).expect("listed");
                        inv.mem_used -= c.mem;
                    }
                }
                if now < ctx.end_time() {
                    ctx.schedule(
                        now + SimDuration::from_secs_f64(self.cfg.idle_timeout_secs),
                        Ev::IdleSweep,
                    );
                }
            }
        }
    }

    fn finish(self, outcome: EngineOutcome) -> OwReport {
        let cascade_complete_at = if self.failures.len() == self.cfg.invokers as usize {
            self.failures
                .iter()
                .map(|&(_, t)| t)
                .fold(None, |acc: Option<f64>, t| {
                    Some(acc.map_or(t, |a| a.max(t)))
                })
        } else {
            None
        };
        OwReport {
            per_fn: outcome
                .per_fn
                .into_iter()
                .enumerate()
                .map(|(i, stats)| {
                    (
                        i as u32,
                        OwFnReport {
                            name: self.setups[i].spec.name.clone(),
                            arrivals: stats.arrivals,
                            completed: stats.completed,
                            lost: stats.lost,
                            wait: stats.wait,
                            slo_violations: stats.slo_violations,
                        },
                    )
                })
                .collect(),
            failures: self.failures,
            cascade_complete_at,
            outstanding: outcome.outstanding,
            healthy_timeline: self.healthy_timeline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lass_functions::{binary_alert, mobilenet_v2};

    fn light_setup() -> OwFunctionSetup {
        OwFunctionSetup {
            spec: binary_alert(),
            workload: WorkloadSpec::Static {
                rate: 10.0,
                duration: 120.0,
            },
            slo_deadline: 0.1,
        }
    }

    #[test]
    fn light_load_completes_without_failures() {
        let mut sim = OwSimulation::new(OwConfig::default());
        sim.add_function(light_setup());
        let report = sim.run(Some(120.0));
        assert!(
            report.failures.is_empty(),
            "failures: {:?}",
            report.failures
        );
        let f = &report.per_fn[&0];
        assert!(f.completed as f64 >= f.arrivals as f64 * 0.95);
        assert_eq!(f.lost, 0);
    }

    #[test]
    fn cpu_heavy_burst_causes_cascading_failure() {
        // The §6.6 scenario: MobileNet (2 vCPU demand, 1 GB) at a rate that
        // needs far more CPU than one node has. Memory admits ~16
        // containers per node => massive CPU oversubscription => thrash.
        let mut sim = OwSimulation::new(OwConfig::default());
        sim.add_function(light_setup());
        sim.add_function(OwFunctionSetup {
            spec: mobilenet_v2(),
            workload: WorkloadSpec::Steps {
                steps: vec![(0.0, 0.0), (30.0, 40.0)],
                duration: 600.0,
            },
            slo_deadline: 0.1,
        });
        let report = sim.run(Some(600.0));
        assert!(
            !report.failures.is_empty(),
            "expected at least one invoker failure"
        );
        assert!(
            report.failures.len() >= 2,
            "cascade should spread: {:?}",
            report.failures
        );
        // Failures happen in sequence, not simultaneously.
        if report.failures.len() >= 2 {
            assert!(report.failures[0].1 < report.failures[1].1);
        }
        // Requests are lost/stalled.
        assert!(report.outstanding > 0 || report.per_fn[&1].lost > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut sim = OwSimulation::new(OwConfig::default());
            sim.add_function(light_setup());
            sim.run(Some(60.0))
        };
        let (a, b) = (run(), run());
        assert_eq!(a.per_fn[&0].arrivals, b.per_fn[&0].arrivals);
        assert_eq!(a.per_fn[&0].completed, b.per_fn[&0].completed);
    }

    #[test]
    fn memory_only_admission_overpacks_cpu() {
        // 16 GB / 1 GB admits ~16 MobileNet containers per node even though
        // CPU supports only 2 — the §6.6 root cause. Verify the baseline
        // actually over-packs (slowdowns + eventual thrash) instead of
        // rejecting on CPU.
        let mut sim = OwSimulation::new(OwConfig {
            thrash_grace_secs: 1e9, // never trip: observe pure over-packing
            ..OwConfig::default()
        });
        sim.add_function(OwFunctionSetup {
            spec: mobilenet_v2(),
            workload: WorkloadSpec::Static {
                rate: 30.0,
                duration: 120.0,
            },
            slo_deadline: 0.1,
        });
        let report = sim.run(Some(120.0));
        let f = &report.per_fn[&0];
        // Requests are admitted (not lost) far beyond CPU capacity...
        assert_eq!(f.lost, 0, "memory admits everything");
        // ...but completions lag badly because of the CPU slowdown.
        assert!(
            (f.completed as f64) < f.arrivals as f64 * 0.9,
            "over-packing should visibly degrade throughput: {}/{}",
            f.completed,
            f.arrivals
        );
    }

    #[test]
    fn functions_shard_to_different_home_invokers() {
        // Light load on two functions: both complete fine and no failures —
        // the sharding hash sends them to their own invokers.
        let mut sim = OwSimulation::new(OwConfig::default());
        sim.add_function(light_setup());
        sim.add_function(OwFunctionSetup {
            spec: lass_functions::geofence(),
            workload: WorkloadSpec::Static {
                rate: 20.0,
                duration: 120.0,
            },
            slo_deadline: 0.1,
        });
        let report = sim.run(Some(120.0));
        assert!(report.failures.is_empty());
        for f in report.per_fn.values() {
            assert!(f.completed as f64 >= f.arrivals as f64 * 0.95);
        }
    }

    #[test]
    fn idle_containers_are_swept() {
        let mut sim = OwSimulation::new(OwConfig::default());
        // Short burst then silence.
        sim.add_function(OwFunctionSetup {
            spec: binary_alert(),
            workload: WorkloadSpec::Static {
                rate: 20.0,
                duration: 30.0,
            },
            slo_deadline: 0.1,
        });
        let report = sim.run(Some(300.0));
        let f = &report.per_fn[&0];
        assert!(f.completed > 400);
        assert!(report.failures.is_empty());
    }
}
