//! Ablation A2 — solver numerics: the naive direct-float evaluation of the
//! heterogeneous bound vs the incremental log-space solver (the "Scala vs
//! Julia" comparison of §6.3), plus the homogeneous Algorithm 1 and the
//! core M/M/c primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lass_queueing::{
    required_additional_containers, required_additional_containers_naive,
    required_containers_exact, MmcQueue, SolverConfig,
};
use lass_simcore::SimRng;

fn bench_solvers(c: &mut Criterion) {
    let cfg = SolverConfig {
        target_percentile: 0.99,
        max_containers: 100_000,
    };
    let mut group = c.benchmark_group("solver_ablation");
    // Fleet sizes where the naive implementation still functions.
    for &size in &[10usize, 50, 100, 200] {
        let mut rng = SimRng::from_seed_label(7, &format!("ablation:{size}"));
        let mus: Vec<f64> = (0..size)
            .map(|_| 10.0 * (1.0 - 0.3 * rng.uniform()))
            .collect();
        let lambda = 0.8 * mus.iter().sum::<f64>();
        group.bench_with_input(
            BenchmarkId::new("logspace", size),
            &(&mus, lambda),
            |b, (mus, lambda)| {
                b.iter(|| {
                    required_additional_containers(*lambda, mus, 10.0, 0.1, &cfg).expect("feasible")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive", size),
            &(&mus, lambda),
            |b, (mus, lambda)| {
                b.iter(|| required_additional_containers_naive(*lambda, mus, 10.0, 0.1, &cfg))
            },
        );
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("queueing_primitives");
    group.bench_function("mmc_build_c100", |b| {
        b.iter(|| MmcQueue::new(80.0, 1.0, 100).expect("valid"))
    });
    let q = MmcQueue::new(80.0, 1.0, 100).expect("valid");
    group.bench_function("mmc_wait_bound", |b| {
        b.iter(|| q.wait_probability_bound(0.1))
    });
    group.bench_function("algorithm1_hom_lambda200", |b| {
        b.iter(|| {
            required_containers_exact(200.0, 10.0, 0.1, &SolverConfig::default()).expect("feasible")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_primitives);
criterion_main!(benches);
