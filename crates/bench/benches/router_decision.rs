//! Criterion microbenchmark for the route-decision hot path: every
//! arrival in a federated run pays one `RouterPolicy::route` call, so
//! the decision cost bounds front-end throughput. All six routers are
//! measured over 2 / 8 / 64-site views with realistic telemetry (the
//! model-driven routers evaluate one M/M/c forecast per site per
//! decision — the expensive part).
//!
//! Besides the criterion output, the run writes `BENCH_routing.json`
//! (cwd) with ns-per-decision per router × fleet size, seeding the perf
//! trajectory for future optimization PRs.
//!
//! With `ROUTER_BENCH_SMOKE` set, the run instead times a short burst
//! per router and **fails** (non-zero exit) if any router exceeds a
//! generous per-decision ceiling — the CI tripwire against
//! re-introducing per-decision model construction on the routing hot
//! path (the pre-cache model-driven routers paid ~20 µs/decision at 64
//! sites; the cached path is 2–3 orders of magnitude below the
//! ceiling).

use criterion::{BenchmarkId, Criterion, Throughput};
use lass_simcore::{RouterKind, SimDuration, SimRng, SimTime, SiteState, WaitForecast};
use std::time::Instant;

/// A deterministic pseudo-random site view: mixed latencies, loads, and
/// live telemetry, with one down site per 16 to exercise the skip path.
fn make_sites(n: usize) -> Vec<SiteState> {
    let mut rng = SimRng::from_seed_label(42, &format!("router-bench:{n}"));
    (0..n)
        .map(|i| {
            let cap = 4.0 + (rng.uniform() * 28.0).floor();
            let mu = 5.0 + rng.uniform() * 15.0;
            let servers = cap as u32;
            SiteState {
                name: format!("s{i}"),
                latency: SimDuration::from_secs_f64(0.001 + rng.uniform() * 0.05),
                capacity_hint: cap,
                in_flight: (rng.uniform() * cap * 1.5) as u64,
                up: i % 16 != 15,
                forecast: WaitForecast {
                    lambda: rng.uniform() * f64::from(servers) * mu * 1.1,
                    mu,
                    servers,
                }
                .into(),
                flakiness: if i % 5 == 0 { rng.uniform() * 0.5 } else { 0.0 },
                warm: (rng.uniform() * 4.0) as u64,
                resources: lass_simcore::ResourceSnapshot::default(),
                fits: f64::INFINITY,
            }
        })
        .collect()
}

/// Measure one router over `sites`, returning ns/decision.
fn measure(kind: RouterKind, sites: &mut [SiteState], decisions: u64) -> f64 {
    let mut router = kind.build();
    // Warm-up (stateful routers settle their anchors).
    for k in 0..64u64 {
        router.route(0, SimTime::from_secs(k), sites);
    }
    let start = Instant::now();
    let mut sink = 0usize;
    for k in 0..decisions {
        let i = router.route((k % 4) as u32, SimTime::from_secs(k), sites);
        sink = sink.wrapping_add(i);
        // Feed load back so decisions do not degenerate to one site.
        sites[i].in_flight = sites[i].in_flight.wrapping_add(1) % 64;
    }
    std::hint::black_box(sink);
    start.elapsed().as_secs_f64() * 1e9 / decisions as f64
}

/// Smoke-mode ceiling, ns/decision. Generous (CI machines are noisy and
/// slow), yet half the pre-optimization cost of the model-driven family
/// at 64 sites — an accidental return of per-decision `MmcQueue`
/// construction blows straight through it.
const SMOKE_CEILING_NS: f64 = 10_000.0;

fn main() {
    if std::env::var_os("ROUTER_BENCH_SMOKE").is_some() {
        let mut failed = false;
        for &n in &[2usize, 64] {
            for kind in RouterKind::ALL {
                let mut sites = make_sites(n);
                let ns = measure(kind, &mut sites, 20_000);
                let verdict = if ns > SMOKE_CEILING_NS {
                    failed = true;
                    "FAIL"
                } else {
                    "ok"
                };
                println!(
                    "smoke route/{}/{}: {:.1} ns/decision [{}]",
                    kind.as_str(),
                    n,
                    ns,
                    verdict
                );
            }
        }
        assert!(
            !failed,
            "a router exceeded the {SMOKE_CEILING_NS} ns/decision smoke ceiling — \
             was per-decision allocation reintroduced on the route hot path?"
        );
        return;
    }
    let mut c = Criterion::default();
    let mut rows = Vec::new();
    let decisions = 100_000u64;
    for &n in &[2usize, 8, 64] {
        let mut group = c.benchmark_group(format!("route_decision/{n}_sites"));
        group.throughput(Throughput::Elements(decisions));
        for kind in RouterKind::ALL {
            let mut sites = make_sites(n);
            let ns = measure(kind, &mut sites, decisions);
            rows.push(format!(
                "    {{ \"bench\": \"route/{}/{}\", \"ns_per_decision\": {:.1}, \
                 \"decisions\": {} }}",
                kind.as_str(),
                n,
                ns,
                decisions
            ));
            // Criterion-visible timing of the same routine (smaller
            // sample so the shim's wall-clock loop stays fast).
            let mut sites = make_sites(n);
            group.sample_size(3).bench_with_input(
                BenchmarkId::new(kind.as_str(), n),
                &n,
                |b, _| b.iter(|| measure(kind, &mut sites, 10_000)),
            );
        }
        group.finish();
    }
    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    // Land the table at the workspace root whatever cwd cargo gave us.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_routing.json");
    std::fs::write(path, &json).expect("write BENCH_routing.json");
    println!("(wrote BENCH_routing.json: {} rows)", rows.len());
}
