//! Parallel-federation speedup: replay the same Zipf workload through
//! the conservative-synchronization executor at 1/2/4/8 worker threads
//! over 8/64/256-site topologies and record speedup versus the
//! single-thread run of the same configuration.
//!
//! The determinism contract makes this an apples-to-apples measurement:
//! every thread count produces byte-identical reports, so the rows
//! differ only in wall-clock time. Rows are **merged** into
//! `BENCH_engine.json` alongside the `engine_throughput` rows (each
//! harness owns the rows whose `bench` name carries its prefix and
//! preserves the other's).
//!
//! With `ENGINE_BENCH_SMOKE` set, the run shrinks to one 64-site
//! configuration and **fails** (non-zero exit) unless 4 worker threads
//! beat 1 by ≥1.5× — the CI tripwire against serializing the worker
//! phase (an accidental global lock, a barrier per event instead of per
//! window). The tripwire needs real cores: on machines with fewer than
//! 4 it prints a loud skip and exits green, because a speedup target on
//! an oversubscribed core measures the scheduler, not the executor.

use lass::replay::{run_replay, ReplayConfig, ReplaySummary};

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// One parallel replay: `sites` sites, uniform 5 ms inbound hop (the
/// conservative lookahead), load scaled with the site count so every
/// topology keeps its sites busy.
fn replay(sites: usize, threads: usize, minutes: usize) -> ReplaySummary {
    let summary = run_replay(&ReplayConfig {
        functions: 1_000,
        minutes,
        seed: 42,
        total_rps: 40.0 * sites as f64,
        sites,
        parallel: Some(threads),
        site_latency_ms: Some(5.0),
        ..ReplayConfig::default()
    })
    .expect("replay runs");
    assert!(summary.conserved, "request conservation violated");
    assert_eq!(summary.threads, threads, "parallel run fell back");
    summary
}

/// Load `BENCH_engine.json` and keep every row this harness does not
/// own, so the two engine benches can regenerate independently.
fn foreign_rows(path: &str) -> Vec<String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(rows) = serde_json::parse(&text) else {
        return Vec::new();
    };
    let Some(rows) = rows.as_array() else {
        return Vec::new();
    };
    rows.iter()
        .filter(|row| {
            !row.as_object()
                .and_then(|o| o.get("bench"))
                .and_then(|b| b.as_str())
                .is_some_and(|name| name.starts_with("engine_parallel/"))
        })
        .map(|row| {
            format!(
                "    {}",
                serde_json::to_string(row).expect("row serializes")
            )
        })
        .collect()
}

const SMOKE_SPEEDUP_FLOOR: f64 = 1.5;

fn main() {
    let cores = cores();
    if std::env::var_os("ENGINE_BENCH_SMOKE").is_some() {
        if cores < 4 {
            eprintln!(
                "SKIPPING engine_parallel smoke tripwire: {cores} core(s) available, \
                 need >= 4 to measure a speedup target honestly"
            );
            return;
        }
        let base = replay(64, 1, 2);
        let wide = replay(64, 4, 2);
        let speedup = base.wall_secs / wide.wall_secs;
        println!(
            "smoke engine_parallel/64sites: 1thr {:.2}s, 4thr {:.2}s -> {speedup:.2}x",
            base.wall_secs, wide.wall_secs
        );
        assert!(
            speedup >= SMOKE_SPEEDUP_FLOOR,
            "4-thread/64-site speedup {speedup:.2}x fell below the {SMOKE_SPEEDUP_FLOOR}x \
             tripwire — did the worker phase pick up a global lock or a per-event barrier?"
        );
        return;
    }

    let mut rows = Vec::new();
    for &sites in &[8usize, 64, 256] {
        let minutes = if sites >= 256 { 2 } else { 5 };
        // Unmeasured warm-up: the first replay at a new scale pays the
        // allocator's page faults for everyone after it.
        replay(sites, 1, 1);
        let mut base_wall = None;
        for &threads in &[1usize, 2, 4, 8] {
            // Best-of-2 to damp scheduler noise (this often runs on
            // shared or single-core CI hosts — see the cores field).
            let first = replay(sites, threads, minutes);
            let second = replay(sites, threads, minutes);
            let summary = if second.wall_secs < first.wall_secs {
                second
            } else {
                first
            };
            let base = *base_wall.get_or_insert(summary.wall_secs);
            let speedup = base / summary.wall_secs;
            println!(
                "engine_parallel/{sites}sites/{threads}thr: {:.2}s wall, {speedup:.2}x, \
                 {:.2}M sim req/wall-min",
                summary.wall_secs,
                summary.sim_req_per_wall_min / 1e6
            );
            rows.push(format!(
                "    {{ \"bench\": \"engine_parallel/{sites}sites/{threads}thr\", \
                 \"sim_req_per_wall_min\": {:.0}, \"arrivals\": {}, \"wall_secs\": {:.3}, \
                 \"speedup_vs_1thr\": {speedup:.2}, \"cores\": {cores} }}",
                summary.sim_req_per_wall_min, summary.arrivals, summary.wall_secs,
            ));
        }
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let mut all = foreign_rows(path);
    all.extend(rows);
    let json = format!("[\n{}\n]\n", all.join(",\n"));
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("(merged BENCH_engine.json: {} rows)", all.len());
}
