//! Simulator throughput: events processed per wall-clock second for an
//! end-to-end LaSS run (controller in the loop). Useful for sizing longer
//! trace-replay experiments.

use criterion::{criterion_group, criterion_main, Criterion};
use lass_cluster::Cluster;
use lass_core::{FunctionSetup, LassConfig, Simulation};
use lass_functions::{micro_benchmark, WorkloadSpec};

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    group.bench_function("lass_60s_20rps", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(LassConfig::default(), Cluster::paper_testbed(), 42);
            let mut setup = FunctionSetup::new(
                micro_benchmark(0.1),
                0.1,
                WorkloadSpec::Static {
                    rate: 20.0,
                    duration: 60.0,
                },
            );
            setup.initial_containers = 3;
            sim.add_function(setup);
            sim.run(Some(60.0))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
