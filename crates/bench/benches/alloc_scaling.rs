//! Criterion microbenchmark behind Fig. 5: wall-clock cost of one
//! allocation decision as the heterogeneous fleet grows, for +10% and ×2
//! rate spikes (log-space solver).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lass_queueing::{required_additional_containers, SolverConfig};
use lass_simcore::SimRng;

fn fleet(c: usize, mu_std: f64, seed: u64) -> (Vec<f64>, f64) {
    let mut rng = SimRng::from_seed_label(seed, &format!("bench-fleet:{c}"));
    let mus: Vec<f64> = (0..c)
        .map(|_| mu_std * (1.0 - 0.3 * rng.uniform()))
        .collect();
    let agg: f64 = mus.iter().sum();
    (mus, 0.72 * agg)
}

fn bench_alloc(c: &mut Criterion) {
    let cfg = SolverConfig {
        target_percentile: 0.99,
        max_containers: 100_000,
    };
    let mut group = c.benchmark_group("alloc_decision");
    for &size in &[10usize, 100, 500, 1000] {
        let (mus, base) = fleet(size, 10.0, 42);
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(
            BenchmarkId::new("spike_10pct", size),
            &(&mus, base),
            |b, (mus, base)| {
                b.iter(|| {
                    required_additional_containers(base * 1.1, mus, 10.0, 0.1, &cfg)
                        .expect("feasible")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("spike_2x", size),
            &(&mus, base),
            |b, (mus, base)| {
                b.iter(|| {
                    required_additional_containers(base * 2.0, mus, 10.0, 0.1, &cfg)
                        .expect("feasible")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_alloc);
criterion_main!(benches);
