//! End-to-end engine throughput: replay a synthesized Zipf workload for
//! 10³ / 10⁴ / 10⁵ distinct functions through the federated engine
//! (timer-wheel calendar, arena request table, streaming per-function
//! statistics) and measure simulated requests processed per wall-clock
//! minute.
//!
//! Besides the criterion output, the run writes `BENCH_engine.json`
//! (workspace root) with one row per scale, seeding the perf trajectory
//! for future engine PRs. The acceptance bar for the timer-wheel +
//! arena + interning + streaming-stats stack is ≥10⁷ simulated
//! requests per wall-clock minute at the 10⁴-function scale.
//!
//! With `ENGINE_BENCH_SMOKE` set, the run instead replays a short burst
//! at the 10³ scale and **fails** (non-zero exit) if throughput drops
//! below a deliberately generous floor — the CI tripwire against
//! re-introducing per-event allocation or O(total-events) calendar
//! operations on the hot loop.

use criterion::{BenchmarkId, Criterion, Throughput};
use lass::replay::{run_replay, ReplayConfig};

/// One replay at `functions` scale; rates scale with the function count
/// so every scale keeps meaningful per-function traffic.
fn replay_at(functions: usize, minutes: usize) -> lass::replay::ReplaySummary {
    let cfg = ReplayConfig {
        functions,
        minutes,
        seed: 42,
        total_rps: functions as f64 / 2.0,
        ..ReplayConfig::default()
    };
    let summary = run_replay(&cfg).expect("replay runs");
    assert!(summary.conserved, "request conservation violated");
    summary
}

/// Smoke-mode floor, simulated requests per wall-clock minute at the
/// 10³-function scale. Debug builds on noisy CI machines run ~50×
/// slower than release, so the floor sits far below the release-mode
/// acceptance number (≥10⁷ at 10⁴ functions) — it only trips on
/// complexity regressions (per-event allocation, linear calendar
/// scans), not machine jitter.
const SMOKE_FLOOR_REQ_PER_MIN: f64 = 20_000.0;

fn main() {
    if std::env::var_os("ENGINE_BENCH_SMOKE").is_some() {
        let summary = replay_at(1_000, 5);
        println!(
            "smoke engine/1000 fns: {:.0} sim req/wall-min ({} arrivals in {:.2}s)",
            summary.sim_req_per_wall_min, summary.arrivals, summary.wall_secs
        );
        assert!(
            summary.sim_req_per_wall_min >= SMOKE_FLOOR_REQ_PER_MIN,
            "engine throughput fell below the {SMOKE_FLOOR_REQ_PER_MIN} req/min smoke floor — \
             was per-event allocation or a linear calendar scan reintroduced on the hot loop?"
        );
        return;
    }
    let mut c = Criterion::default();
    let mut rows = Vec::new();
    let mut group = c.benchmark_group("engine_throughput");
    for &(functions, minutes) in &[(1_000usize, 10usize), (10_000, 10), (100_000, 5)] {
        let summary = replay_at(functions, minutes);
        rows.push(format!(
            "    {{ \"bench\": \"engine/{}fns/{}min\", \"sim_req_per_wall_min\": {:.0}, \
             \"arrivals\": {}, \"wall_secs\": {:.3}, \"servers_per_site\": {} }}",
            functions,
            minutes,
            summary.sim_req_per_wall_min,
            summary.arrivals,
            summary.wall_secs,
            summary.servers_per_site
        ));
        println!(
            "engine/{functions} fns: {:.2}M sim req/wall-min",
            summary.sim_req_per_wall_min / 1e6
        );
        // Criterion-visible timing of a shortened replay at the same
        // scale (1 minute, single sample: each iteration is seconds).
        group.throughput(Throughput::Elements(summary.arrivals as u64));
        group.sample_size(2).bench_with_input(
            BenchmarkId::new("replay", functions),
            &functions,
            |b, &n| b.iter(|| replay_at(n, 1)),
        );
    }
    group.finish();
    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    // Land the table at the workspace root whatever cwd cargo gave us.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, &json).expect("write BENCH_engine.json");
    println!("(wrote BENCH_engine.json: {} rows)", rows.len());
}
