//! Ablation A1 — dispatch discipline.
//!
//! The queueing models assume the M/M/c discipline (one shared queue,
//! service begins when any container frees). The prototype's load balancer
//! does weighted round robin; a literal WRR that binds each request to a
//! container at arrival behaves like `c` independent M/M/1 queues and
//! wastes capacity whenever the chosen container is busy while another is
//! idle. This ablation quantifies the gap between the three disciplines at
//! identical allocations.

use lass_bench::{header, row, HarnessOpts};
use lass_cluster::Cluster;
use lass_core::{DispatchPolicy, FunctionSetup, LassConfig, Simulation};
use lass_functions::{micro_benchmark, WorkloadSpec};
use lass_queueing::{required_containers_exact, SolverConfig};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    policy: String,
    lambda: f64,
    containers: u32,
    p95_wait_ms: f64,
    mean_wait_ms: f64,
    attainment: f64,
}

fn run_one(policy: DispatchPolicy, lambda: f64, duration: f64, seed: u64) -> Point {
    let mu = 10.0;
    let slo = 0.1;
    let c = required_containers_exact(
        lambda,
        mu,
        slo,
        &SolverConfig {
            target_percentile: 0.99,
            max_containers: 10_000,
        },
    )
    .expect("feasible")
    .containers;
    let mut cfg = LassConfig::default();
    cfg.autoscale = false;
    cfg.dispatch = policy;
    let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), seed);
    let mut setup = FunctionSetup::new(
        micro_benchmark(1.0 / mu),
        slo,
        WorkloadSpec::Static {
            rate: lambda,
            duration,
        },
    );
    setup.initial_containers = c;
    sim.add_function(setup);
    let mut report = sim.run(Some(duration));
    let f = report.per_fn.get_mut(&0).expect("one function");
    Point {
        policy: format!("{policy:?}"),
        lambda,
        containers: c,
        p95_wait_ms: f.wait.percentile(0.95).unwrap_or(0.0) * 1e3,
        mean_wait_ms: f.wait.mean().unwrap_or(0.0) * 1e3,
        attainment: f.slo_attainment(),
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let duration = opts.pick(1200.0, 120.0);
    let cases: Vec<(DispatchPolicy, f64)> = [
        DispatchPolicy::SharedQueue,
        DispatchPolicy::IdleFirstWrr,
        DispatchPolicy::Wrr,
    ]
    .into_iter()
    .flat_map(|p| [10.0, 30.0, 50.0].map(|l| (p, l)))
    .collect();
    let points: Vec<Point> = cases
        .par_iter()
        .map(|&(p, l)| run_one(p, l, duration, opts.seed))
        .collect();

    println!("Ablation A1 — dispatch discipline at model-chosen allocations (mu=10, SLO=100ms)\n");
    let widths = [14, 8, 5, 12, 12, 10];
    header(
        &["policy", "lambda", "c", "meanW(ms)", "p95W(ms)", "attain"],
        &widths,
    );
    for p in &points {
        row(
            &[
                &p.policy,
                &p.lambda,
                &p.containers,
                &format!("{:.2}", p.mean_wait_ms),
                &format!("{:.2}", p.p95_wait_ms),
                &format!("{:.3}", p.attainment),
            ],
            &widths,
        );
    }
    println!(
        "\nExpected ordering: SharedQueue (M/M/c, what the model assumes) ≤ IdleFirstWrr\n\
         ≤ pure Wrr (c × M/M/1-like). The default is SharedQueue; IdleFirstWrr stays\n\
         close, pure WRR shows why binding at arrival needs extra headroom."
    );
    opts.maybe_write_json(&points);
}
