//! Experiment E7 — Figure 8: resource reclamation under overload
//! (two functions, synthetic workloads).
//!
//! §6.6 staging on the 3-node (12 vCPU) testbed, equal weights:
//!
//! * t < 5 min — only BinaryAlert (malware detection) serves requests.
//! * t = 5 min — MobileNet starts; it needs more than its fair share
//!   (6 vCPU) while BinaryAlert needs less.
//! * t = 10 min — BinaryAlert's load grows (still below fair share); the
//!   combined demand overloads the cluster.
//! * t = 15 min — BinaryAlert's load grows again; both functions now want
//!   more than their fair share and are capped at 50 % each.
//! * t = 20 min — MobileNet's burst ceases; BinaryAlert may exceed its
//!   fair share again.
//!
//! The harness runs the same staging under the termination and deflation
//! policies and prints each function's CPU allocation over time plus the
//! system utilization of both policies (paper: 78.2 % → 83.2 %, a ~6 %
//! improvement from deflation).

use lass_bench::{header, row, HarnessOpts};
use lass_cluster::{Cluster, UserId};
use lass_core::{FunctionSetup, LassConfig, ReclamationPolicy, SimReport, Simulation};
use lass_functions::{binary_alert, mobilenet_v2, WorkloadSpec};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct PolicyResult {
    policy: String,
    utilization_overall: f64,
    utilization_overload_window: f64,
    ba_attainment: f64,
    mn_attainment: f64,
    ba_timeline: Vec<(f64, f64)>,
    mn_timeline: Vec<(f64, f64)>,
    free_timeline: Vec<(f64, f64)>,
}

fn staging(minute: f64) -> (WorkloadSpec, WorkloadSpec) {
    let m = minute;
    let ba = WorkloadSpec::Steps {
        steps: vec![(0.0, 40.0), (10.0 * m, 90.0), (15.0 * m, 230.0)],
        duration: 25.0 * m,
    };
    let mn = WorkloadSpec::Steps {
        steps: vec![(0.0, 0.0), (5.0 * m, 6.0), (20.0 * m, 0.0)],
        duration: 25.0 * m,
    };
    (ba, mn)
}

fn run(policy: ReclamationPolicy, minute: f64, seed: u64) -> PolicyResult {
    let (ba_wl, mn_wl) = staging(minute);
    let duration = 25.0 * minute;
    let mut cfg = LassConfig::default();
    cfg.reclamation = policy;
    // Scale the controller's clocks with the (possibly compressed) minute
    // so --quick preserves the full run's dynamics.
    cfg.monitor_interval_secs = minute / 12.0;
    cfg.epoch_secs = minute / 6.0;
    cfg.short_window_secs = minute / 6.0;
    cfg.long_window_secs = 2.0 * minute;
    let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), seed);
    let mut ba = FunctionSetup::new(binary_alert(), 0.1, ba_wl);
    ba.user = UserId(0);
    ba.initial_containers = 2;
    sim.add_function(ba);
    let mut mn = FunctionSetup::new(mobilenet_v2(), 0.1, mn_wl);
    mn.user = UserId(1);
    sim.add_function(mn);
    let report: SimReport = sim.run(Some(duration));

    let overload_window = (10.0 * minute, 20.0 * minute);
    let util_window = report
        .free_timeline
        .mean_between(overload_window.0, overload_window.1)
        .map_or(0.0, |free| 1.0 - free);
    PolicyResult {
        policy: format!("{policy:?}"),
        utilization_overall: report.allocated_utilization,
        utilization_overload_window: util_window,
        ba_attainment: report.per_fn[&0].slo_attainment(),
        mn_attainment: report.per_fn[&1].slo_attainment(),
        ba_timeline: report.per_fn[&0].cpu_timeline.points().to_vec(),
        mn_timeline: report.per_fn[&1].cpu_timeline.points().to_vec(),
        free_timeline: report.free_timeline.points().to_vec(),
    }
}

fn sample_at(series: &[(f64, f64)], t: f64) -> f64 {
    series
        .iter()
        .filter(|(pt, _)| *pt <= t)
        .map(|(_, v)| *v)
        .next_back()
        .unwrap_or(0.0)
}

fn main() {
    let opts = HarnessOpts::from_args();
    let minute = opts.pick(60.0, 12.0);
    let term = run(ReclamationPolicy::Termination, minute, opts.seed);
    let defl = run(ReclamationPolicy::Deflation, minute, opts.seed);

    println!("Figure 8 — CPU allocation (fraction of 12 vCPU) under overload\n");
    let widths = [8, 11, 11, 9, 11, 11, 9];
    header(
        &[
            "t(min)",
            "term:BA",
            "term:MN",
            "term:idle",
            "defl:BA",
            "defl:MN",
            "defl:idle",
        ],
        &widths,
    );
    let total = 12_000.0;
    for i in 0..=25 {
        let t = f64::from(i) * minute;
        let tb = sample_at(&term.ba_timeline, t) / total;
        let tm = sample_at(&term.mn_timeline, t) / total;
        let db = sample_at(&defl.ba_timeline, t) / total;
        let dm = sample_at(&defl.mn_timeline, t) / total;
        row(
            &[
                &i,
                &format!("{tb:.2}"),
                &format!("{tm:.2}"),
                &format!("{:.2}", (1.0 - tb - tm).max(0.0)),
                &format!("{db:.2}"),
                &format!("{dm:.2}"),
                &format!("{:.2}", (1.0 - db - dm).max(0.0)),
            ],
            &widths,
        );
    }

    println!("\nSystem utilization (allocated CPU / capacity):");
    let widths2 = [14, 16, 22];
    header(&["policy", "whole run", "overload (10-20min)"], &widths2);
    for r in [&term, &defl] {
        row(
            &[
                &r.policy,
                &format!("{:.1}%", r.utilization_overall * 100.0),
                &format!("{:.1}%", r.utilization_overload_window * 100.0),
            ],
            &widths2,
        );
    }
    let delta = (defl.utilization_overload_window - term.utilization_overload_window) * 100.0;
    println!(
        "\nDeflation improves overload-window utilization by {delta:.1} percentage points\n\
         (paper: 78.2% -> 83.2%, +6.4% relative). SLO attainment — termination: BA {:.3} / MN {:.3};\n\
         deflation: BA {:.3} / MN {:.3} (deflation should be no worse).",
        term.ba_attainment, term.mn_attainment, defl.ba_attainment, defl.mn_attainment
    );
    opts.maybe_write_json(&vec![term, defl]);
}
