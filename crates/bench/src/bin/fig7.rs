//! Experiment E6 — Figure 7: effect of CPU deflation on service time.
//!
//! §6.5: run each of the six functions inside containers, progressively
//! deflate the CPU allocation and measure the mean service time. Five of
//! the functions tolerate ~30 % deflation with only a small penalty (their
//! CPU slack), then slow down roughly in proportion; MobileNet has no
//! slack (it saturates its 2 vCPU) so any deflation hurts immediately.
//!
//! We report both the analytic model and the empirically sampled mean from
//! the simulated containers (which adds exponential service noise).

use lass_bench::{header, row, HarnessOpts};
use lass_functions::standard_catalog;
use lass_simcore::SimRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Curve {
    name: String,
    deflation_pct: Vec<u32>,
    model_ms: Vec<f64>,
    measured_ms: Vec<f64>,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let samples = opts.pick(20_000u32, 2_000);
    let deflations: Vec<u32> = (0..=70).step_by(5).collect();

    let mut curves = Vec::new();
    for f in standard_catalog() {
        let mut rng = SimRng::from_seed_label(opts.seed, &format!("fig7:{}", f.name));
        let mut model_ms = Vec::new();
        let mut measured_ms = Vec::new();
        for &pct in &deflations {
            let d = f64::from(pct) / 100.0;
            model_ms.push(f.service.mean_service_time(d) * 1e3);
            let mean: f64 = (0..samples)
                .map(|_| f.service.sample(d, &mut rng))
                .sum::<f64>()
                / f64::from(samples);
            measured_ms.push(mean * 1e3);
        }
        curves.push(Curve {
            name: f.name.clone(),
            deflation_pct: deflations.clone(),
            model_ms,
            measured_ms,
        });
    }

    println!("Figure 7 — mean service time (ms) vs CPU deflation ratio\n");
    let mut names: Vec<&str> = vec!["defl(%)"];
    for c in &curves {
        names.push(&c.name);
    }
    let widths: Vec<usize> = names.iter().map(|n| n.len().max(9)).collect();
    header(&names, &widths);
    for (i, &pct) in deflations.iter().enumerate() {
        let mut cells: Vec<String> = vec![pct.to_string()];
        for c in &curves {
            cells.push(format!("{:.1}", c.measured_ms[i]));
        }
        let refs: Vec<&dyn std::fmt::Display> =
            cells.iter().map(|c| c as &dyn std::fmt::Display).collect();
        row(&refs, &widths);
    }

    println!("\nSlowdown factors at key deflation levels (measured/baseline):");
    let widths2 = [18, 10, 10, 10];
    header(&["Function", "@30%", "@50%", "@70%"], &widths2);
    for c in &curves {
        let base = c.measured_ms[0];
        let at = |pct: u32| {
            let i = c
                .deflation_pct
                .iter()
                .position(|&p| p == pct)
                .expect("grid");
            c.measured_ms[i] / base
        };
        row(
            &[
                &c.name,
                &format!("{:.2}x", at(30)),
                &format!("{:.2}x", at(50)),
                &format!("{:.2}x", at(70)),
            ],
            &widths2,
        );
    }
    println!(
        "\n(Paper: ~30% deflation costs little for 5 of 6 functions; MobileNet, which\n\
         runs at ~100% CPU inside its container, degrades immediately but gracefully.)"
    );
    opts.maybe_write_json(&curves);
}
