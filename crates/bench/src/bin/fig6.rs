//! Experiment E5 — Figure 6: model-driven auto-scaling under dynamic
//! workloads.
//!
//! §6.4: two functions share the cluster with no resource pressure. In the
//! first half the micro-benchmark's rate steps 5→30→5 req/s while
//! MobileNet stays flat at 3 req/s; in the second half MobileNet steps
//! 3→8→3 req/s while the micro-benchmark stays at 5 req/s. The harness
//! prints both workloads and the container allocations LaSS chooses over
//! time — allocations should track the steps in both directions.

use lass_bench::{header, row, HarnessOpts};
use lass_cluster::{Cluster, CpuMilli, MemMib, PlacementPolicy};
use lass_core::{FunctionSetup, LassConfig, Simulation};
use lass_functions::{micro_benchmark, mobilenet_v2, WorkloadSpec};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Sample {
    t_min: f64,
    micro_rate: f64,
    mobilenet_rate: f64,
    micro_containers: f64,
    mobilenet_containers: f64,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let step = opts.pick(60.0, 20.0); // one rate step per minute
    let half = step * 11.0;

    let micro_wl = WorkloadSpec::fig6_micro_steps(step);
    // Build a two-phase MobileNet workload: flat 3 req/s in the first
    // half, then the 3→8→3 staircase.
    let mobilenet_wl = WorkloadSpec::fig6_mobilenet_steps(half, step);
    let duration = 2.0 * half;

    // Generous cluster: "no resource pressure throughout this experiment".
    let cluster = Cluster::homogeneous(
        6,
        CpuMilli::from_cores(8.0),
        MemMib(32 * 1024),
        PlacementPolicy::WorstFit,
    );
    let mut cfg = LassConfig::default();
    cfg.epoch_secs = opts.pick(10.0, 5.0);
    let mut sim = Simulation::new(cfg, cluster, opts.seed);
    let mut micro = FunctionSetup::new(micro_benchmark(0.1), 0.1, micro_wl.clone());
    micro.initial_containers = 1;
    sim.add_function(micro);
    let mut mobi = FunctionSetup::new(mobilenet_v2(), 0.5, mobilenet_wl.clone());
    mobi.initial_containers = 2;
    sim.add_function(mobi);

    let report = sim.run(Some(duration));
    let micro_report = &report.per_fn[&0];
    let mobi_report = &report.per_fn[&1];

    // Sample the timelines on a 30-second grid.
    let grid: Vec<f64> = (0..)
        .map(|i| f64::from(i) * 30.0)
        .take_while(|&t| t < duration)
        .collect();
    let series: Vec<Sample> = grid
        .iter()
        .map(|&t| Sample {
            t_min: t / 60.0,
            micro_rate: micro_wl.rate_at(t),
            mobilenet_rate: mobilenet_wl.rate_at(t),
            micro_containers: micro_report
                .container_timeline
                .points()
                .iter()
                .filter(|(pt, _)| *pt <= t)
                .map(|(_, v)| *v)
                .next_back()
                .unwrap_or(1.0),
            mobilenet_containers: mobi_report
                .container_timeline
                .points()
                .iter()
                .filter(|(pt, _)| *pt <= t)
                .map(|(_, v)| *v)
                .next_back()
                .unwrap_or(1.0),
        })
        .collect();

    println!("Figure 6 — workloads (top) and provisioned containers (bottom) over time\n");
    let widths = [8, 12, 12, 12, 12];
    header(
        &["t(min)", "micro λ", "mobnet λ", "micro c", "mobnet c"],
        &widths,
    );
    for s in &series {
        row(
            &[
                &format!("{:.1}", s.t_min),
                &format!("{:.0}", s.micro_rate),
                &format!("{:.0}", s.mobilenet_rate),
                &format!("{:.0}", s.micro_containers),
                &format!("{:.0}", s.mobilenet_containers),
            ],
            &widths,
        );
    }

    // Shape check: the allocation tracks the load up and back down.
    let micro_peak = series
        .iter()
        .map(|s| s.micro_containers)
        .fold(0.0f64, f64::max);
    let micro_first = series.first().map(|s| s.micro_containers).unwrap_or(0.0);
    let micro_last_half1 = series
        .iter()
        .filter(|s| s.t_min * 60.0 > half * 0.85 && s.t_min * 60.0 <= half)
        .map(|s| s.micro_containers)
        .next_back()
        .unwrap_or(0.0);
    println!(
        "\nShape: micro-benchmark containers {micro_first:.0} → peak {micro_peak:.0} → {micro_last_half1:.0} \
         across its 5→30→5 req/s staircase"
    );
    println!(
        "SLO attainment: micro {:.3}, MobileNet {:.3}; overloaded epochs: {}",
        micro_report.slo_attainment(),
        mobi_report.slo_attainment(),
        report.overloaded_epochs
    );
    opts.maybe_write_json(&series);
}
