//! Ablation A5 — pluggable load predictors (§5: "one can also plug in any
//! load prediction method of choice into LaSS with ease").
//!
//! Compares the paper's burst-aware dual-window estimator against Holt
//! trend extrapolation and a conservative peak-hold predictor on two
//! workload shapes: a steady ramp (where trend extrapolation shines) and
//! an on/off burst train (where peak-hold avoids repeated cold ramps at
//! the cost of held capacity).

use lass_bench::{header, row, HarnessOpts};
use lass_cluster::{Cluster, CpuMilli, MemMib, PlacementPolicy};
use lass_core::{FunctionSetup, LassConfig, PredictorKind, Simulation};
use lass_functions::{micro_benchmark, WorkloadSpec};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    predictor: String,
    workload: &'static str,
    p95_wait_ms: f64,
    attainment: f64,
    avg_cpu_milli: f64,
}

fn workloads(duration: f64) -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        (
            "ramp",
            WorkloadSpec::Ramp {
                from: 5.0,
                to: 60.0,
                duration,
            },
        ),
        (
            "burst-train",
            WorkloadSpec::Steps {
                steps: (0..)
                    .map(|i| f64::from(i) * 60.0)
                    .take_while(|&t| t < duration)
                    .enumerate()
                    .map(|(i, t)| (t, if i % 2 == 0 { 5.0 } else { 45.0 }))
                    .collect(),
                duration,
            },
        ),
    ]
}

fn run_one(
    kind: PredictorKind,
    label: String,
    wl_name: &'static str,
    wl: WorkloadSpec,
    duration: f64,
    seed: u64,
) -> Point {
    let mut cfg = LassConfig::default();
    cfg.predictor = kind;
    let cluster = Cluster::homogeneous(
        8,
        CpuMilli::from_cores(16.0),
        MemMib(64 * 1024),
        PlacementPolicy::BestFit,
    );
    let mut sim = Simulation::new(cfg, cluster, seed);
    let mut setup = FunctionSetup::new(micro_benchmark(0.1), 0.1, wl);
    setup.initial_containers = 2;
    sim.add_function(setup);
    let mut report = sim.run(Some(duration));
    let f = report.per_fn.get_mut(&0).expect("one function");
    let avg_cpu = f.cpu_timeline.mean_between(0.0, duration).unwrap_or(0.0);
    Point {
        predictor: label,
        workload: wl_name,
        p95_wait_ms: f.wait.percentile(0.95).unwrap_or(0.0) * 1e3,
        attainment: f.slo_attainment(),
        avg_cpu_milli: avg_cpu,
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let duration = opts.pick(900.0, 240.0);
    let predictors = [
        (PredictorKind::BurstAware, "burst-aware".to_string()),
        (
            PredictorKind::Holt {
                alpha: 0.5,
                beta: 0.3,
                horizon_secs: 10.0,
            },
            "holt".to_string(),
        ),
        (
            PredictorKind::Peak { window_secs: 120.0 },
            "peak-hold".to_string(),
        ),
    ];
    let cases: Vec<(PredictorKind, String, &'static str, WorkloadSpec)> = predictors
        .iter()
        .flat_map(|(k, l)| {
            workloads(duration)
                .into_iter()
                .map(move |(n, w)| (*k, l.clone(), n, w))
        })
        .collect();
    let points: Vec<Point> = cases
        .into_par_iter()
        .map(|(k, l, n, w)| run_one(k, l, n, w, duration, opts.seed))
        .collect();

    println!("Ablation A5 — load predictors (micro-benchmark, SLO = P95 wait <= 100ms)\n");
    let widths = [14, 12, 12, 10, 12];
    header(
        &["predictor", "workload", "p95W(ms)", "attain", "avg vCPU"],
        &widths,
    );
    for p in &points {
        row(
            &[
                &p.predictor,
                &p.workload,
                &format!("{:.1}", p.p95_wait_ms),
                &format!("{:.3}", p.attainment),
                &format!("{:.2}", p.avg_cpu_milli / 1000.0),
            ],
            &widths,
        );
    }
    println!(
        "\nReading: Holt anticipates the ramp (better tail at similar capacity);\n\
         peak-hold wins on the burst train by never releasing burst capacity\n\
         (highest average allocation); the paper's burst-aware default balances both."
    );
    opts.maybe_write_json(&points);
}
