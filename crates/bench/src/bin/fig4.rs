//! Experiment E3 — Figure 4: model validation with heterogeneous
//! containers.
//!
//! §6.2.2: run SqueezeNet under static load with just enough homogeneous
//! containers; then manually deflate a proportion (25/50/75/100 %) of the
//! provisioned containers. The function is now under-provisioned with
//! heterogeneous containers; LaSS reacts by adding standard containers
//! sized with the worst-case heterogeneous model (§3.2; re-inflation is
//! disabled so the heterogeneity persists). The empirical P95 waiting time
//! must stay below the 100 ms SLO across λ = 10..100 req/s.

use lass_bench::{header, row, HarnessOpts};
use lass_cluster::{Cluster, CpuMilli, MemMib, PlacementPolicy};
use lass_core::{FunctionSetup, LassConfig, Simulation};
use lass_functions::{squeezenet, WorkloadSpec};
use lass_queueing::{required_containers_exact, SolverConfig};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    deflated_pct: u32,
    lambda: f64,
    initial_containers: u32,
    p95_wait_ms: f64,
    slo_attainment: f64,
    final_containers: f64,
}

fn run_point(deflated_pct: u32, lambda: f64, duration: f64, seed: u64) -> Point {
    let spec = squeezenet(); // mu = 10 at standard size
    let mu = spec.standard_rate();
    let slo = 0.1;
    let solver = SolverConfig {
        target_percentile: 0.99,
        max_containers: 10_000,
    };
    // "Just enough" homogeneous containers for the static load (§6.2.2).
    let c = required_containers_exact(lambda, mu, slo, &solver)
        .expect("feasible")
        .containers;

    // A large cluster: the experiment is about the model, not capacity.
    let cluster = Cluster::homogeneous(
        8,
        CpuMilli::from_cores(16.0),
        MemMib(64 * 1024),
        PlacementPolicy::WorstFit,
    );
    let mut cfg = LassConfig::default();
    cfg.autoscale = true;
    let mut sim = Simulation::new(cfg, cluster, seed);
    let mut setup = FunctionSetup::new(
        spec,
        slo,
        WorkloadSpec::Static {
            rate: lambda,
            duration,
        },
    );
    setup.initial_containers = c;
    let fn_id = sim.add_function(setup);

    // Manually deflate the first `deflated_pct`% of the provisioned
    // containers by a random-ish amount (here: the maximum 30%, the
    // worst case for the model), and disable re-inflation so LaSS must
    // plan with the heterogeneous model.
    let n_deflate = ((c * deflated_pct) as f64 / 100.0).round() as usize;
    let mut report = Simulation::run_with(sim, Some(duration), move |ctl, cluster| {
        ctl.set_reinflate(false);
        let ids: Vec<_> = cluster.containers_of(fn_id).to_vec();
        for cid in ids.into_iter().take(n_deflate) {
            let std = cluster.container(cid).expect("provisioned").standard_cpu();
            cluster
                .resize_container_cpu(cid, std.scale(0.7))
                .expect("deflation fits");
        }
    });
    let f = report.per_fn.get_mut(&0).expect("one function");
    let late_containers = f
        .container_timeline
        .points()
        .iter()
        .filter(|(t, _)| *t > duration * 0.5)
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max);
    Point {
        deflated_pct,
        lambda,
        initial_containers: c,
        p95_wait_ms: f.wait.percentile(0.95).unwrap_or(0.0) * 1e3,
        slo_attainment: f.slo_attainment(),
        final_containers: late_containers,
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    // Paper: 10 min provisioning + 20 min measurement. We run one phase.
    let duration = opts.pick(1200.0, 120.0);
    let mut cases = Vec::new();
    for &pct in &[25u32, 50, 75, 100] {
        for i in 1..=10 {
            cases.push((pct, f64::from(i) * 10.0));
        }
    }
    let points: Vec<Point> = cases
        .par_iter()
        .map(|&(pct, lambda)| run_point(pct, lambda, duration, opts.seed))
        .collect();

    println!("Figure 4 — P95 waiting time (ms) with heterogeneous containers, SLO = 100 ms");
    println!("(SqueezeNet; listed per proportion of containers manually deflated by 30%)\n");
    let widths = [8, 10, 10, 12, 12, 10];
    for &pct in &[25u32, 50, 75, 100] {
        println!("deflated proportion = {pct}%");
        header(
            &["lambda", "c0", "c_final", "p95W(ms)", "attain", "ok?"],
            &widths,
        );
        for p in points.iter().filter(|p| p.deflated_pct == pct) {
            row(
                &[
                    &p.lambda,
                    &p.initial_containers,
                    &p.final_containers,
                    &format!("{:.2}", p.p95_wait_ms),
                    &format!("{:.3}", p.slo_attainment),
                    &(if p.p95_wait_ms <= 100.0 { "yes" } else { "NO" }),
                ],
                &widths,
            );
        }
        println!();
    }
    let ok = points.iter().filter(|p| p.p95_wait_ms <= 100.0).count();
    println!(
        "Summary: {}/{} points keep P95 waiting time below the 100 ms SLO\n\
         (paper: 'in all cases LaSS was able to provision adequate containers').",
        ok,
        points.len()
    );
    opts.maybe_write_json(&points);
}
