//! Experiment E8 — Figure 9: reclamation policies under Azure-like
//! workloads (six functions, two users).
//!
//! §6.7: all six catalog functions run concurrently on the highly-utilized
//! testbed, driven by one-hour per-minute traces shaped like the Azure
//! Functions 2019 dataset (MobileNet's trace is highly sporadic and drives
//! the overloads). Two users own three functions each; user 2 has twice
//! the weight of user 1, so under contention user 1's functions share
//! ~33 % and user 2's ~67 % of the cluster.
//!
//! The harness runs the termination and deflation policies on identical
//! traces and reports the per-user allocation timelines and system
//! utilization (paper: 87.7 % → 93 %).

use lass_bench::{header, row, HarnessOpts};
use lass_cluster::{Cluster, UserId};
use lass_core::{FunctionSetup, LassConfig, ReclamationPolicy, Simulation};
use lass_functions::{fig9_traces, standard_catalog, WorkloadSpec};
use serde::Serialize;

/// User assignment: user 1 (weight 1) owns ShuffleNet, SqueezeNet,
/// GeoFence; user 2 (weight 2) owns MobileNet, BinaryAlert, Image Resizer.
/// (The paper does not list the assignment; MobileNet is placed with the
/// heavier user so its bursts contend for user-2 capacity as in Fig. 9b.)
const USER_OF: [u32; 6] = [2, 1, 1, 2, 1, 2];

#[derive(Debug, Serialize)]
struct PolicyOutcome {
    policy: String,
    utilization: f64,
    busy_utilization: f64,
    overloaded_epochs: usize,
    user1_timeline: Vec<(f64, f64)>,
    user2_timeline: Vec<(f64, f64)>,
    free_timeline: Vec<(f64, f64)>,
    per_fn_attainment: Vec<(String, f64)>,
}

fn run(policy: ReclamationPolicy, minutes: usize, seed: u64) -> PolicyOutcome {
    let catalog = standard_catalog();
    let traces = fig9_traces(seed);
    let mut cfg = LassConfig::default();
    cfg.reclamation = policy;
    let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), seed);
    for (i, spec) in catalog.into_iter().enumerate() {
        let trace: Vec<u64> = traces[i].iter().copied().take(minutes).collect();
        let mut setup = FunctionSetup::new(spec, 0.1, WorkloadSpec::Trace { per_minute: trace });
        setup.user = UserId(USER_OF[i]);
        setup.user_weight = f64::from(USER_OF[i]); // user 2 twice user 1
        setup.initial_containers = 1;
        sim.add_function(setup);
    }
    let duration = minutes as f64 * 60.0;
    let report = sim.run(Some(duration));

    // Aggregate per-user CPU timelines on the epoch grid.
    let epochs: Vec<f64> = report.per_fn[&0]
        .cpu_timeline
        .points()
        .iter()
        .map(|(t, _)| *t)
        .collect();
    let user_sum = |user: u32, t: f64| -> f64 {
        (0..6u32)
            .filter(|&i| USER_OF[i as usize] == user)
            .map(|i| {
                report.per_fn[&i]
                    .cpu_timeline
                    .points()
                    .iter()
                    .filter(|(pt, _)| *pt <= t)
                    .map(|(_, v)| *v)
                    .next_back()
                    .unwrap_or(0.0)
            })
            .sum()
    };
    PolicyOutcome {
        policy: format!("{policy:?}"),
        utilization: report.allocated_utilization,
        busy_utilization: report.busy_utilization,
        overloaded_epochs: report.overloaded_epochs,
        user1_timeline: epochs.iter().map(|&t| (t, user_sum(1, t))).collect(),
        user2_timeline: epochs.iter().map(|&t| (t, user_sum(2, t))).collect(),
        free_timeline: report.free_timeline.points().to_vec(),
        per_fn_attainment: (0..6u32)
            .map(|i| {
                (
                    report.per_fn[&i].name.clone(),
                    report.per_fn[&i].slo_attainment(),
                )
            })
            .collect(),
    }
}

fn sample_at(series: &[(f64, f64)], t: f64) -> f64 {
    series
        .iter()
        .filter(|(pt, _)| *pt <= t)
        .map(|(_, v)| *v)
        .next_back()
        .unwrap_or(0.0)
}

fn main() {
    let opts = HarnessOpts::from_args();
    let minutes = opts.pick(60usize, 12);
    let term = run(ReclamationPolicy::Termination, minutes, opts.seed);
    let defl = run(ReclamationPolicy::Deflation, minutes, opts.seed);

    println!(
        "Figure 9 — per-user CPU share under Azure-like traces ({minutes} min; ideal fair\n\
         shares under contention: user1 = 0.33, user2 = 0.67)\n"
    );
    let widths = [8, 10, 10, 10, 10, 10, 10];
    header(
        &[
            "t(min)",
            "term:u1",
            "term:u2",
            "term:idle",
            "defl:u1",
            "defl:u2",
            "defl:idle",
        ],
        &widths,
    );
    let total = 12_000.0;
    let step = (minutes / 12).max(1);
    for m in (0..=minutes).step_by(step) {
        let t = m as f64 * 60.0;
        let (t1, t2) = (
            sample_at(&term.user1_timeline, t) / total,
            sample_at(&term.user2_timeline, t) / total,
        );
        let (d1, d2) = (
            sample_at(&defl.user1_timeline, t) / total,
            sample_at(&defl.user2_timeline, t) / total,
        );
        row(
            &[
                &m,
                &format!("{t1:.2}"),
                &format!("{t2:.2}"),
                &format!("{:.2}", (1.0 - t1 - t2).max(0.0)),
                &format!("{d1:.2}"),
                &format!("{d2:.2}"),
                &format!("{:.2}", (1.0 - d1 - d2).max(0.0)),
            ],
            &widths,
        );
    }

    println!("\nSystem utilization and SLO attainment:");
    let widths2 = [14, 12, 12, 12];
    header(
        &["policy", "alloc util", "busy util", "overl.ep."],
        &widths2,
    );
    for r in [&term, &defl] {
        row(
            &[
                &r.policy,
                &format!("{:.1}%", r.utilization * 100.0),
                &format!("{:.1}%", r.busy_utilization * 100.0),
                &r.overloaded_epochs,
            ],
            &widths2,
        );
    }
    println!("\nPer-function SLO attainment (termination vs deflation):");
    let widths3 = [18, 12, 12];
    header(&["Function", "term", "defl"], &widths3);
    for (i, (name, ta)) in term.per_fn_attainment.iter().enumerate() {
        row(
            &[
                name,
                &format!("{ta:.3}"),
                &format!("{:.3}", defl.per_fn_attainment[i].1),
            ],
            &widths3,
        );
    }
    let delta = (defl.utilization - term.utilization) * 100.0;
    println!(
        "\nDeflation changes overall allocated utilization by {delta:+.1} percentage points\n\
         (paper: 87.7% -> 93%, +6.1% relative, with fewer container churn events)."
    );
    opts.maybe_write_json(&vec![term, defl]);
}
