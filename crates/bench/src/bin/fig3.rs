//! Experiment E2 — Figure 3: model validation with homogeneous containers.
//!
//! For μ ∈ {5, 10} req/s and SLO ∈ {100, 200} ms, sweep the arrival rate
//! λ = 10..50 req/s. For each point, Algorithm 1 computes the container
//! count `c`; the function is then run with exactly `c` warm containers
//! (autoscaling off, as in §6.2.1) and the empirical P95 waiting time is
//! measured. The paper's claim: measured P95 stays below or close to the
//! SLO line.

use lass_bench::{header, ms, row, HarnessOpts};
use lass_cluster::Cluster;
use lass_core::{DispatchPolicy, FunctionSetup, LassConfig, Simulation};
use lass_functions::{micro_benchmark, WorkloadSpec};
use lass_queueing::{required_containers_exact, SolverConfig};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    mu: f64,
    slo_ms: f64,
    lambda: f64,
    containers: u32,
    p95_wait_ms: f64,
    p99_wait_ms: f64,
    mean_wait_ms: f64,
    slo_attainment: f64,
    completed: usize,
}

fn run_point(mu: f64, slo: f64, lambda: f64, duration: f64, seed: u64) -> Point {
    // Algorithm 1 drives the Eq. 4 sum to 0.99 (the measured SLO is P95;
    // the 0.99 target is the model's headroom — §3.1).
    let solver = SolverConfig {
        target_percentile: 0.99,
        max_containers: 10_000,
    };
    let c = required_containers_exact(lambda, mu, slo, &solver)
        .expect("feasible")
        .containers;

    let mut cfg = LassConfig::default();
    cfg.autoscale = false; // pinned allocation, §6.2.1
    cfg.dispatch = DispatchPolicy::SharedQueue;
    let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), seed);
    let mut setup = FunctionSetup::new(
        micro_benchmark(1.0 / mu),
        slo,
        WorkloadSpec::Static {
            rate: lambda,
            duration,
        },
    );
    setup.initial_containers = c;
    sim.add_function(setup);
    let mut report = sim.run(Some(duration));
    let f = report.per_fn.get_mut(&0).expect("one function");
    Point {
        mu,
        slo_ms: slo * 1e3,
        lambda,
        containers: c,
        p95_wait_ms: f.wait.percentile(0.95).unwrap_or(0.0) * 1e3,
        p99_wait_ms: f.wait.percentile(0.99).unwrap_or(0.0) * 1e3,
        mean_wait_ms: f.wait.mean().unwrap_or(0.0) * 1e3,
        slo_attainment: f.slo_attainment(),
        completed: f.completed,
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let duration = opts.pick(1800.0, 180.0); // paper: 30 minutes per point
    let mut cases = Vec::new();
    for &(mu, slo) in &[(5.0, 0.1), (10.0, 0.1), (5.0, 0.2), (10.0, 0.2)] {
        for i in 1..=5 {
            cases.push((mu, slo, f64::from(i) * 10.0));
        }
    }
    let points: Vec<Point> = cases
        .par_iter()
        .map(|&(mu, slo, lambda)| run_point(mu, slo, lambda, duration, opts.seed))
        .collect();

    for (panel, &(mu, slo)) in [(5.0, 0.1), (10.0, 0.1), (5.0, 0.2), (10.0, 0.2)]
        .iter()
        .enumerate()
    {
        println!(
            "\nFigure 3({}) — mu = {} req/s, SLO = {:.0} ms (P95 waiting-time target)",
            char::from(b'a' + panel as u8),
            mu,
            slo * 1e3
        );
        let widths = [8, 6, 12, 12, 12, 12, 10];
        header(
            &[
                "lambda",
                "c",
                "meanW(ms)",
                "p95W(ms)",
                "p99W(ms)",
                "SLO(ms)",
                "attain",
            ],
            &widths,
        );
        for p in points
            .iter()
            .filter(|p| p.mu == mu && p.slo_ms == slo * 1e3)
        {
            row(
                &[
                    &p.lambda,
                    &p.containers,
                    &ms(p.mean_wait_ms / 1e3),
                    &ms(p.p95_wait_ms / 1e3),
                    &ms(p.p99_wait_ms / 1e3),
                    &format!("{:.0}", p.slo_ms),
                    &format!("{:.3}", p.slo_attainment),
                ],
                &widths,
            );
        }
    }

    let ok = points
        .iter()
        .filter(|p| p.p95_wait_ms <= p.slo_ms * 1.1)
        .count();
    println!(
        "\nSummary: {}/{} configurations have P95 waiting time within 110% of the SLO\n\
         (the paper reports 'below or close to the SLO deadline' for all points).",
        ok,
        points.len()
    );
    opts.maybe_write_json(&points);
}
