//! Experiment E9 — §6.6's vanilla-OpenWhisk comparison: the cascading
//! invoker failure.
//!
//! The same CPU-heavy overload that LaSS survives (Fig. 8) kills stock
//! OpenWhisk: its sharding-pool load balancer admits containers on memory
//! only, over-packs one invoker with MobileNet containers, the node
//! thrashes and goes unresponsive, the controller shifts the workload to
//! the next invoker, and the failure cascades until every invoker is down.
//!
//! This harness runs (a) the OpenWhisk baseline and (b) LaSS with the
//! deflation policy on the same staging and reports invoker health,
//! completed requests, and survival.

use lass_bench::{header, row, HarnessOpts};
use lass_cluster::{Cluster, UserId};
use lass_core::{FunctionSetup, LassConfig, ReclamationPolicy, Simulation};
use lass_functions::{binary_alert, mobilenet_v2, WorkloadSpec};
use lass_openwhisk::{OwConfig, OwFunctionSetup, OwSimulation};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Outcome {
    system: String,
    ba_completed: usize,
    ba_arrivals: usize,
    mn_completed: usize,
    mn_arrivals: usize,
    invoker_failures: Vec<(u32, f64)>,
    cascade_complete_at: Option<f64>,
    survived: bool,
}

fn staging(minute: f64) -> (WorkloadSpec, WorkloadSpec) {
    let ba = WorkloadSpec::Steps {
        steps: vec![(0.0, 40.0)],
        duration: 20.0 * minute,
    };
    // MobileNet burst: the ML workload that kills OpenWhisk (§6.6).
    let mn = WorkloadSpec::Steps {
        steps: vec![(0.0, 0.0), (5.0 * minute, 20.0)],
        duration: 20.0 * minute,
    };
    (ba, mn)
}

fn main() {
    let opts = HarnessOpts::from_args();
    let minute = opts.pick(60.0, 15.0);
    let duration = 20.0 * minute;
    let (ba_wl, mn_wl) = staging(minute);

    // (a) Vanilla OpenWhisk.
    let mut ow = OwSimulation::new(OwConfig {
        seed: opts.seed,
        ..OwConfig::default()
    });
    ow.add_function(OwFunctionSetup {
        spec: binary_alert(),
        workload: ba_wl.clone(),
        slo_deadline: 0.1,
    });
    ow.add_function(OwFunctionSetup {
        spec: mobilenet_v2(),
        workload: mn_wl.clone(),
        slo_deadline: 0.1,
    });
    let ow_report = ow.run(Some(duration));

    // (b) LaSS (deflation policy) on the same staging.
    let mut cfg = LassConfig::default();
    cfg.reclamation = ReclamationPolicy::Deflation;
    cfg.monitor_interval_secs = minute / 12.0;
    cfg.epoch_secs = minute / 6.0;
    cfg.short_window_secs = minute / 6.0;
    cfg.long_window_secs = 2.0 * minute;
    let mut lass = Simulation::new(cfg, Cluster::paper_testbed(), opts.seed);
    let mut ba = FunctionSetup::new(binary_alert(), 0.1, ba_wl);
    ba.user = UserId(0);
    ba.initial_containers = 2;
    lass.add_function(ba);
    let mut mn = FunctionSetup::new(mobilenet_v2(), 0.1, mn_wl);
    mn.user = UserId(1);
    lass.add_function(mn);
    let lass_report = lass.run(Some(duration));

    let outcomes = vec![
        Outcome {
            system: "OpenWhisk".into(),
            ba_completed: ow_report.per_fn[&0].completed,
            ba_arrivals: ow_report.per_fn[&0].arrivals,
            mn_completed: ow_report.per_fn[&1].completed,
            mn_arrivals: ow_report.per_fn[&1].arrivals,
            invoker_failures: ow_report.failures.clone(),
            cascade_complete_at: ow_report.cascade_complete_at,
            survived: ow_report.failures.is_empty(),
        },
        Outcome {
            system: "LaSS".into(),
            ba_completed: lass_report.per_fn[&0].completed,
            ba_arrivals: lass_report.per_fn[&0].arrivals,
            mn_completed: lass_report.per_fn[&1].completed,
            mn_arrivals: lass_report.per_fn[&1].arrivals,
            invoker_failures: vec![],
            cascade_complete_at: None,
            survived: true,
        },
    ];

    println!("§6.6 — vanilla OpenWhisk vs LaSS under the CPU-heavy ML burst\n");
    let widths = [10, 14, 14, 14, 14, 12];
    header(
        &[
            "system",
            "BA done/arr",
            "MN done/arr",
            "failures",
            "cascade(s)",
            "survived",
        ],
        &widths,
    );
    for o in &outcomes {
        row(
            &[
                &o.system,
                &format!("{}/{}", o.ba_completed, o.ba_arrivals),
                &format!("{}/{}", o.mn_completed, o.mn_arrivals),
                &o.invoker_failures.len(),
                &o.cascade_complete_at
                    .map_or("-".to_string(), |t| format!("{t:.0}")),
                &o.survived,
            ],
            &widths,
        );
    }
    println!("\nOpenWhisk invoker failures (invoker, time):");
    for (inv, t) in &outcomes[0].invoker_failures {
        println!("  invoker {inv} went unresponsive at t = {t:.1}s");
    }
    println!(
        "\n(Paper: 'Soon after the ML workload starts, all invokers become unresponsive …\n\
         eventually causing all the invokers to fail. In contrast, LaSS ensures the system\n\
         can survive overload by fair share resource allocation and resource reclamation.')"
    );
    opts.maybe_write_json(&outcomes);
}
