//! Ablation A4 — what the queueing models buy: LaSS's model-driven
//! autoscaler vs a Knative-style concurrency-target heuristic.
//!
//! The heuristic provisions `ceil(λ·E[S] / target)` containers (Little's
//! law over a per-container concurrency target). With `target = 1` it
//! allocates ≈ the offered load `λ/μ` — no tail-percentile headroom — so
//! it violates waiting-time SLOs; smaller targets over-provision across
//! the board. The model-driven rule sizes the headroom from the M/M/c
//! waiting distribution per (λ, μ, SLO) point.

use lass_bench::{header, row, HarnessOpts};
use lass_cluster::{Cluster, CpuMilli, MemMib, PlacementPolicy};
use lass_core::{FunctionSetup, LassConfig, ScalerKind, Simulation};
use lass_functions::{micro_benchmark, WorkloadSpec};
use rayon::prelude::*;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    scaler: String,
    lambda: f64,
    avg_containers: f64,
    p95_wait_ms: f64,
    attainment: f64,
}

fn run_one(scaler: ScalerKind, lambda: f64, duration: f64, seed: u64) -> Point {
    let mut cfg = LassConfig::default();
    cfg.scaler = scaler;
    // Big cluster: compare the scaling *rules*, not capacity limits.
    let cluster = Cluster::homogeneous(
        8,
        CpuMilli::from_cores(16.0),
        MemMib(64 * 1024),
        PlacementPolicy::BestFit,
    );
    let mut sim = Simulation::new(cfg, cluster, seed);
    let mut setup = FunctionSetup::new(
        micro_benchmark(0.1),
        0.1,
        WorkloadSpec::Static {
            rate: lambda,
            duration,
        },
    );
    setup.initial_containers = 2;
    sim.add_function(setup);
    let mut report = sim.run(Some(duration));
    let f = report.per_fn.get_mut(&0).expect("one function");
    let steady: Vec<f64> = f
        .container_timeline
        .points()
        .iter()
        .filter(|(t, _)| *t > duration * 0.3)
        .map(|(_, v)| *v)
        .collect();
    Point {
        scaler: match scaler {
            ScalerKind::ModelDriven => "model-driven".into(),
            ScalerKind::ConcurrencyTarget { target } => format!("conc-target={target}"),
        },
        lambda,
        avg_containers: steady.iter().sum::<f64>() / steady.len().max(1) as f64,
        p95_wait_ms: f.wait.percentile(0.95).unwrap_or(0.0) * 1e3,
        attainment: f.slo_attainment(),
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let duration = opts.pick(900.0, 120.0);
    let scalers = [
        ScalerKind::ModelDriven,
        ScalerKind::ConcurrencyTarget { target: 1.0 },
        ScalerKind::ConcurrencyTarget { target: 0.5 },
    ];
    let cases: Vec<(ScalerKind, f64)> = scalers
        .into_iter()
        .flat_map(|s| [10.0, 30.0, 50.0].map(|l| (s, l)))
        .collect();
    let points: Vec<Point> = cases
        .par_iter()
        .map(|&(s, l)| run_one(s, l, duration, opts.seed))
        .collect();

    println!(
        "Ablation A4 — model-driven (Algorithm 1) vs concurrency-target heuristic\n\
         (micro-benchmark, mu=10, SLO = P95 wait <= 100ms)\n"
    );
    let widths = [16, 8, 10, 12, 10];
    header(
        &["scaler", "lambda", "avg c", "p95W(ms)", "attain"],
        &widths,
    );
    for p in &points {
        row(
            &[
                &p.scaler,
                &p.lambda,
                &format!("{:.1}", p.avg_containers),
                &format!("{:.1}", p.p95_wait_ms),
                &format!("{:.3}", p.attainment),
            ],
            &widths,
        );
    }
    println!(
        "\nExpected: target=1.0 allocates ~λ/μ containers and misses the SLO badly;\n\
         target=0.5 over-provisions ~2x everywhere; the model allocates per-point\n\
         headroom and holds the SLO with fewer containers than the safe heuristic."
    );
    opts.maybe_write_json(&points);
}
