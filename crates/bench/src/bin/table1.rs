//! Experiment E1 — Table 1: the function catalog.
//!
//! Prints the functions used in the evaluation with their languages and
//! standard container sizes, plus the calibrated service-time parameters
//! this reproduction adds (documented in DESIGN.md).

use lass_bench::{header, row};
use lass_functions::{micro_benchmark, standard_catalog};

fn main() {
    println!("Table 1: Functions used in the evaluation experiments\n");
    let widths = [18, 22, 10, 10, 14, 12];
    header(
        &[
            "Function",
            "Language(s)",
            "vCPU",
            "Mem(MB)",
            "base svc (ms)",
            "slack (%)",
        ],
        &widths,
    );
    let mut all = vec![micro_benchmark(0.1)];
    all.extend(standard_catalog());
    for f in &all {
        row(
            &[
                &f.name,
                &f.languages,
                &format!("{:.1}", f.standard_cpu.as_cores()),
                &f.standard_mem.0,
                &format!("{:.0}", f.service.base_time * 1e3),
                &format!("{:.0}", f.service.slack() * 100.0),
            ],
            &widths,
        );
    }
    println!(
        "\n(vCPU / memory columns are Table 1 verbatim; base service time and\n\
         CPU slack are this reproduction's calibrated constants — see DESIGN.md.)"
    );
}
