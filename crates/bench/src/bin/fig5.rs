//! Experiment E4 — Figure 5: scalability of the allocation algorithm.
//!
//! §6.3: for one function with heterogeneous containers, measure how long
//! the allocation algorithm takes to react to a rate spike as the number
//! of running containers grows to 1000. Two spike sizes are tested: +10 %
//! (the figure's blue line) and ×2 (the orange line, which the paper's
//! Scala implementation could not always compute). We compare our two
//! implementations: the numerically-naive direct evaluation (the "Scala"
//! analogue) and the incremental log-space solver (the "Julia" analogue).
//! The paper's claim: sub-second (indeed <100 ms) reaction at 1000
//! containers.

use lass_bench::{header, row, HarnessOpts};
use lass_queueing::{
    required_additional_containers, required_additional_containers_naive, SolverConfig,
};
use lass_simcore::SimRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Point {
    containers: usize,
    spike: &'static str,
    logspace_ms: f64,
    naive_ms: Option<f64>,
    naive_failed: bool,
    added: u32,
}

/// A fleet of `c` containers with deflation-spread service rates around
/// `mu_std`, utilized at ~72% by the base load.
fn fleet(c: usize, mu_std: f64, rng: &mut SimRng) -> (Vec<f64>, f64) {
    let mus: Vec<f64> = (0..c)
        .map(|_| mu_std * (1.0 - 0.3 * rng.uniform()))
        .collect();
    let agg: f64 = mus.iter().sum();
    (mus, 0.72 * agg)
}

fn time_solve(
    lambda: f64,
    existing: &[f64],
    mu_std: f64,
    t: f64,
    cfg: &SolverConfig,
    reps: u32,
) -> (f64, u32) {
    // Warm up once, then time the median of `reps` runs.
    let mut added = 0;
    let mut times = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let start = Instant::now();
        let res = required_additional_containers(lambda, existing, mu_std, t, cfg)
            .expect("feasible spike");
        added = res.containers;
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (times[times.len() / 2] * 1e3, added)
}

fn main() {
    let opts = HarnessOpts::from_args();
    let mu_std = 10.0;
    let t = 0.1;
    let cfg = SolverConfig {
        target_percentile: 0.99,
        max_containers: 100_000,
    };
    let sizes: Vec<usize> = if opts.quick {
        vec![10, 100, 500, 1000]
    } else {
        vec![10, 50, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000]
    };
    let reps = opts.pick(9, 3);

    let mut points = Vec::new();
    for &c in &sizes {
        let mut rng = SimRng::from_seed_label(opts.seed, &format!("fig5:{c}"));
        let (mus, base_lambda) = fleet(c, mu_std, &mut rng);
        for (spike, factor) in [("+10%", 1.1), ("x2", 2.0)] {
            let lambda = base_lambda * factor;
            let (ms_fast, added) = time_solve(lambda, &mus, mu_std, t, &cfg, reps);
            // The naive implementation, timed once (it may fail).
            let start = Instant::now();
            let naive = required_additional_containers_naive(lambda, &mus, mu_std, t, &cfg);
            let naive_ms = start.elapsed().as_secs_f64() * 1e3;
            points.push(Point {
                containers: c,
                spike,
                logspace_ms: ms_fast,
                naive_ms: naive.as_ref().map(|_| naive_ms),
                naive_failed: naive.is_none(),
                added,
            });
        }
    }

    println!("Figure 5 — allocation-algorithm computation time vs running containers");
    println!("(median wall-clock per decision; 'naive' = direct-float Scala analogue,");
    println!(" 'log-space' = incremental Julia analogue)\n");
    let widths = [12, 7, 14, 12, 8];
    header(
        &["containers", "spike", "log-space(ms)", "naive(ms)", "added"],
        &widths,
    );
    for p in &points {
        row(
            &[
                &p.containers,
                &p.spike,
                &format!("{:.3}", p.logspace_ms),
                &match (p.naive_failed, p.naive_ms) {
                    (true, _) => "FAILED".to_string(),
                    (false, Some(ms)) => format!("{ms:.3}"),
                    _ => "-".to_string(),
                },
                &p.added,
            ],
            &widths,
        );
    }
    let max_ms = points.iter().map(|p| p.logspace_ms).fold(0.0f64, f64::max);
    println!(
        "\nSummary: worst-case log-space decision time {max_ms:.2} ms at 1000 containers\n\
         (paper: Julia implementation reacts 'within less than 100 ms even with a 1000\n\
         running containers'; its Scala implementation failed on the x2 spike)."
    );
    let naive_failures = points.iter().filter(|p| p.naive_failed).count();
    println!(
        "Naive implementation failures: {naive_failures}/{} cases.",
        points.len()
    );
    opts.maybe_write_json(&points);
}
