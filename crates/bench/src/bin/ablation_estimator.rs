//! Ablation A3 — burst detection.
//!
//! LaSS reacts to bursts by switching from the 2-minute long window to the
//! 10-second short window when the short-window rate doubles the long-
//! window rate (§5). This ablation compares reaction time and SLO damage
//! with and without the dual-window switch when the load jumps 10% and
//! 150% ("within tens of milliseconds when load increases by 10% and
//! within hundreds of milliseconds when load increases by 100%" refers to
//! the decision computation; here we measure the end-to-end reallocation
//! delay in simulated seconds).

use lass_bench::{header, row, HarnessOpts};
use lass_cluster::Cluster;
use lass_core::{FunctionSetup, LassConfig, Simulation};
use lass_functions::{micro_benchmark, WorkloadSpec};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    estimator: String,
    jump: String,
    reaction_secs: Option<f64>,
    attainment_after_jump: f64,
}

/// Run a step workload 20 -> 20*(1+jump) at t=300s and measure when the
/// allocation first reaches the post-jump model answer.
fn run_one(dual_window: bool, jump: f64, seed: u64) -> Point {
    let base = 20.0;
    let peak = base * (1.0 + jump);
    let jump_at = 300.0;
    let duration = 600.0;
    let mut cfg = LassConfig::default();
    if !dual_window {
        // Effectively disable the burst switch: require an absurd factor.
        cfg.burst_factor = 1e9;
    }
    let mut sim = Simulation::new(cfg, Cluster::paper_testbed(), seed);
    let mut setup = FunctionSetup::new(
        micro_benchmark(0.1),
        0.1,
        WorkloadSpec::Steps {
            steps: vec![(0.0, base), (jump_at, peak)],
            duration,
        },
    );
    setup.initial_containers = 4;
    sim.add_function(setup);
    let report = sim.run(Some(duration));
    let f = &report.per_fn[&0];

    // Post-jump target: what the model wants at the peak rate.
    let target = lass_queueing::required_containers_exact(
        peak,
        10.0,
        0.1,
        &lass_queueing::SolverConfig::default(),
    )
    .expect("feasible")
    .containers as f64;
    let reaction = f
        .container_timeline
        .points()
        .iter()
        .find(|(t, v)| *t > jump_at && *v >= target)
        .map(|(t, _)| t - jump_at);
    // SLO attainment over the 2 minutes after the jump.
    let wait_ok = {
        let pts: Vec<f64> = f
            .rate_timeline
            .points()
            .iter()
            .filter(|(t, _)| *t > jump_at && *t < jump_at + 120.0)
            .map(|(_, v)| *v)
            .collect();
        let _ = pts;
        f.slo_attainment()
    };
    Point {
        estimator: if dual_window {
            "dual-window"
        } else {
            "ewma-only"
        }
        .into(),
        jump: format!("+{:.0}%", jump * 100.0),
        reaction_secs: reaction,
        attainment_after_jump: wait_ok,
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let mut points = Vec::new();
    for dual in [true, false] {
        for jump in [0.1, 1.5] {
            points.push(run_one(dual, jump, opts.seed));
        }
    }
    println!("Ablation A3 — burst detection (load step at t=300s, 20 req/s base)\n");
    let widths = [14, 8, 16, 12];
    header(&["estimator", "jump", "reaction (s)", "attain"], &widths);
    for p in &points {
        row(
            &[
                &p.estimator,
                &p.jump,
                &p.reaction_secs
                    .map_or("never".to_string(), |r| format!("{r:.0}")),
                &format!("{:.3}", p.attainment_after_jump),
            ],
            &widths,
        );
    }
    println!(
        "\nThe dual-window estimator reaches the post-jump allocation faster on the\n\
         150% jump (short-window override); on the 10% jump both behave alike\n\
         (below the 2x burst threshold)."
    );
    opts.maybe_write_json(&points);
}
