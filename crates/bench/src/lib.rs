//! Shared plumbing for the experiment harnesses.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the LaSS
//! paper (see DESIGN.md's per-experiment index). They print the paper's
//! rows/series to stdout and, with `--json <path>`, also dump
//! machine-readable results.

#![warn(missing_docs)]

use std::fmt::Display;

/// Common command-line options for harnesses.
#[derive(Debug, Clone, Default)]
pub struct HarnessOpts {
    /// Shrink experiment durations for a fast smoke run (`--quick`).
    pub quick: bool,
    /// Master seed (`--seed N`, default 42).
    pub seed: u64,
    /// Optional JSON output path (`--json PATH`).
    pub json: Option<String>,
}

impl HarnessOpts {
    /// Parse from `std::env::args`.
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts {
            quick: false,
            seed: 42,
            json: None,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => opts.quick = true,
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--json" => {
                    i += 1;
                    opts.json = Some(args.get(i).expect("--json needs a path").clone());
                }
                other => {
                    eprintln!(
                        "warning: unknown argument {other} (supported: --quick, --seed N, --json PATH)"
                    );
                }
            }
            i += 1;
        }
        opts
    }

    /// `full` normally, `quick` under `--quick`.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Write JSON results if `--json` was given.
    pub fn maybe_write_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            let text = serde_json::to_string_pretty(value).expect("serializable results");
            std::fs::write(path, text).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("(wrote {path})");
        }
    }
}

/// Print a fixed-width table row.
pub fn row(cells: &[&dyn Display], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{:>width$}  ", c, width = w));
    }
    println!("{}", line.trim_end());
}

/// Print a header row followed by a separator.
pub fn header(names: &[&str], widths: &[usize]) {
    let cells: Vec<&dyn Display> = names.iter().map(|n| n as &dyn Display).collect();
    row(&cells, widths);
    let total: usize = widths.iter().map(|w| w + 2).sum();
    println!("{}", "-".repeat(total));
}

/// Format seconds as milliseconds with two decimals.
pub fn ms(secs: f64) -> String {
    format!("{:.2}", secs * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_honours_quick() {
        let mut o = HarnessOpts::default();
        assert_eq!(o.pick(10, 1), 10);
        o.quick = true;
        assert_eq!(o.pick(10, 1), 1);
    }

    #[test]
    fn ms_formats() {
        assert_eq!(ms(0.1), "100.00");
        assert_eq!(ms(0.0005), "0.50");
    }
}
