//! Worker nodes.
//!
//! A node is a bundle of CPU, memory, and network-bandwidth capacity on
//! which containers are placed. The node tracks *reservations* (what
//! containers are entitled to), which is what LaSS's capacity planning
//! and fair sharing reason about; instantaneous busy/idle state lives
//! with the containers. Accounting is an exact integer [`ResourceVec`]
//! on every dimension — the cpu-only entry points are preserved as
//! zero-bandwidth wrappers.

use crate::ids::NodeId;
use crate::resources::{BwMbps, CpuMilli, Dimension, MemMib, ResourceVec};
use serde::{Deserialize, Serialize};

/// Bandwidth capacity assumed for nodes built through the historical
/// cpu+mem constructor: a 100 Gbps NIC. Generous enough that the
/// defaulted zero-bandwidth demands never bind on it, which is what
/// keeps pre-vector scenarios byte-identical.
pub const DEFAULT_NODE_BW: BwMbps = BwMbps(100_000);

/// A worker node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    capacity: ResourceVec,
    used: ResourceVec,
    containers: u32,
}

impl Node {
    /// A node with the given CPU/memory capacities and the default
    /// bandwidth ([`DEFAULT_NODE_BW`]).
    pub fn new(id: NodeId, cpu_capacity: CpuMilli, mem_capacity: MemMib) -> Self {
        Self::with_resources(
            id,
            ResourceVec::new(cpu_capacity, mem_capacity, DEFAULT_NODE_BW),
        )
    }

    /// A node with an explicit capacity vector.
    pub fn with_resources(id: NodeId, capacity: ResourceVec) -> Self {
        Self {
            id,
            capacity,
            used: ResourceVec::ZERO,
            containers: 0,
        }
    }

    /// Node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Total capacity vector.
    pub fn capacity_vec(&self) -> ResourceVec {
        self.capacity
    }

    /// Reserved vector.
    pub fn used_vec(&self) -> ResourceVec {
        self.used
    }

    /// Unreserved vector.
    pub fn free_vec(&self) -> ResourceVec {
        self.capacity.saturating_sub(self.used)
    }

    /// Total CPU capacity.
    pub fn cpu_capacity(&self) -> CpuMilli {
        self.capacity.cpu
    }

    /// Total memory capacity.
    pub fn mem_capacity(&self) -> MemMib {
        self.capacity.mem
    }

    /// Total bandwidth capacity.
    pub fn bw_capacity(&self) -> BwMbps {
        self.capacity.bandwidth
    }

    /// Reserved CPU.
    pub fn cpu_used(&self) -> CpuMilli {
        self.used.cpu
    }

    /// Reserved memory.
    pub fn mem_used(&self) -> MemMib {
        self.used.mem
    }

    /// Reserved bandwidth.
    pub fn bw_used(&self) -> BwMbps {
        self.used.bandwidth
    }

    /// Unreserved CPU.
    pub fn cpu_free(&self) -> CpuMilli {
        self.capacity.cpu.saturating_sub(self.used.cpu)
    }

    /// Unreserved memory.
    pub fn mem_free(&self) -> MemMib {
        self.capacity.mem.saturating_sub(self.used.mem)
    }

    /// Number of resident containers.
    pub fn container_count(&self) -> u32 {
        self.containers
    }

    /// Whether a `(cpu, mem)` reservation fits (zero bandwidth).
    pub fn can_fit(&self, cpu: CpuMilli, mem: MemMib) -> bool {
        self.can_fit_vec(ResourceVec::cpu_mem(cpu, mem))
    }

    /// Whether a demand vector fits on every dimension.
    pub fn can_fit_vec(&self, demand: ResourceVec) -> bool {
        demand.fits_in(self.free_vec())
    }

    /// Reserve resources for a new container. Panics if it does not fit —
    /// callers must check `can_fit` (placement does).
    pub fn reserve(&mut self, cpu: CpuMilli, mem: MemMib) {
        self.reserve_vec(ResourceVec::cpu_mem(cpu, mem));
    }

    /// Reserve a demand vector for a new container. Panics if it does
    /// not fit on some dimension.
    pub fn reserve_vec(&mut self, demand: ResourceVec) {
        assert!(
            self.can_fit_vec(demand),
            "reservation exceeds node capacity"
        );
        self.used += demand;
        self.containers += 1;
    }

    /// Release a container's resources.
    pub fn release(&mut self, cpu: CpuMilli, mem: MemMib) {
        self.release_vec(ResourceVec::cpu_mem(cpu, mem));
    }

    /// Release a container's demand vector.
    pub fn release_vec(&mut self, demand: ResourceVec) {
        assert!(demand.fits_in(self.used), "release underflow");
        self.used -= demand;
        assert!(self.containers > 0, "release with no containers");
        self.containers -= 1;
    }

    /// Adjust a resident container's CPU reservation in place (deflation /
    /// re-inflation). `delta` may grow or shrink the reservation; growth
    /// must fit the free capacity.
    pub fn resize_cpu(&mut self, old: CpuMilli, new: CpuMilli) {
        if new > old {
            let grow = new - old;
            assert!(grow <= self.cpu_free(), "inflation exceeds node capacity");
            self.used.cpu += grow;
        } else {
            self.used.cpu -= old - new;
        }
    }

    /// Fraction of CPU capacity reserved.
    pub fn cpu_utilization(&self) -> f64 {
        self.used.cpu.ratio(self.capacity.cpu)
    }

    /// Fraction of capacity reserved along one dimension.
    pub fn utilization(&self, dim: Dimension) -> f64 {
        self.used.share(self.capacity, dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(NodeId(0), CpuMilli(4000), MemMib(16384))
    }

    #[test]
    fn reserve_and_release_round_trip() {
        let mut n = node();
        assert!(n.can_fit(CpuMilli(2000), MemMib(1024)));
        n.reserve(CpuMilli(2000), MemMib(1024));
        assert_eq!(n.cpu_free(), CpuMilli(2000));
        assert_eq!(n.mem_free(), MemMib(15360));
        assert_eq!(n.container_count(), 1);
        assert!((n.cpu_utilization() - 0.5).abs() < 1e-12);
        n.release(CpuMilli(2000), MemMib(1024));
        assert_eq!(n.cpu_used(), CpuMilli::ZERO);
        assert_eq!(n.container_count(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds node capacity")]
    fn over_reservation_panics() {
        let mut n = node();
        n.reserve(CpuMilli(5000), MemMib(10));
    }

    #[test]
    fn resize_in_place() {
        let mut n = node();
        n.reserve(CpuMilli(1000), MemMib(512));
        // Deflate 1000 -> 700 frees 300.
        n.resize_cpu(CpuMilli(1000), CpuMilli(700));
        assert_eq!(n.cpu_used(), CpuMilli(700));
        // Re-inflate 700 -> 1000.
        n.resize_cpu(CpuMilli(700), CpuMilli(1000));
        assert_eq!(n.cpu_used(), CpuMilli(1000));
    }

    #[test]
    #[should_panic(expected = "inflation exceeds")]
    fn inflation_beyond_capacity_panics() {
        let mut n = node();
        n.reserve(CpuMilli(3900), MemMib(512));
        n.resize_cpu(CpuMilli(3900), CpuMilli(4200));
    }

    #[test]
    fn memory_only_constraint_blocks_fit() {
        let mut n = node();
        n.reserve(CpuMilli(100), MemMib(16384));
        assert!(!n.can_fit(CpuMilli(100), MemMib(1)));
        assert!(n.cpu_free() > CpuMilli::ZERO);
    }

    #[test]
    fn bandwidth_constraint_blocks_vector_fit() {
        let mut n = Node::with_resources(
            NodeId(1),
            ResourceVec::new(CpuMilli(4000), MemMib(16384), BwMbps(1000)),
        );
        let io = ResourceVec::new(CpuMilli(100), MemMib(64), BwMbps(800));
        assert!(n.can_fit_vec(io));
        n.reserve_vec(io);
        assert_eq!(n.bw_used(), BwMbps(800));
        assert!(!n.can_fit_vec(io), "second copy exceeds the NIC");
        assert!(n.can_fit(CpuMilli(100), MemMib(64)), "cpu+mem still fit");
        assert!((n.utilization(Dimension::Bandwidth) - 0.8).abs() < 1e-12);
        n.release_vec(io);
        assert_eq!(n.used_vec(), ResourceVec::ZERO);
    }

    #[test]
    fn legacy_constructor_gets_default_nic() {
        let n = node();
        assert_eq!(n.bw_capacity(), DEFAULT_NODE_BW);
        assert_eq!(
            n.capacity_vec(),
            ResourceVec::new(CpuMilli(4000), MemMib(16384), DEFAULT_NODE_BW)
        );
    }
}
