//! Worker nodes.
//!
//! A node is a bundle of CPU and memory capacity on which containers are
//! placed. The node tracks *reservations* (what containers are entitled
//! to), which is what LaSS's capacity planning and fair sharing reason
//! about; instantaneous busy/idle state lives with the containers.

use crate::ids::NodeId;
use crate::resources::{CpuMilli, MemMib};
use serde::{Deserialize, Serialize};

/// A worker node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    cpu_capacity: CpuMilli,
    mem_capacity: MemMib,
    cpu_used: CpuMilli,
    mem_used: MemMib,
    containers: u32,
}

impl Node {
    /// A node with the given capacities.
    pub fn new(id: NodeId, cpu_capacity: CpuMilli, mem_capacity: MemMib) -> Self {
        Self {
            id,
            cpu_capacity,
            mem_capacity,
            cpu_used: CpuMilli::ZERO,
            mem_used: MemMib::ZERO,
            containers: 0,
        }
    }

    /// Node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Total CPU capacity.
    pub fn cpu_capacity(&self) -> CpuMilli {
        self.cpu_capacity
    }

    /// Total memory capacity.
    pub fn mem_capacity(&self) -> MemMib {
        self.mem_capacity
    }

    /// Reserved CPU.
    pub fn cpu_used(&self) -> CpuMilli {
        self.cpu_used
    }

    /// Reserved memory.
    pub fn mem_used(&self) -> MemMib {
        self.mem_used
    }

    /// Unreserved CPU.
    pub fn cpu_free(&self) -> CpuMilli {
        self.cpu_capacity.saturating_sub(self.cpu_used)
    }

    /// Unreserved memory.
    pub fn mem_free(&self) -> MemMib {
        self.mem_capacity.saturating_sub(self.mem_used)
    }

    /// Number of resident containers.
    pub fn container_count(&self) -> u32 {
        self.containers
    }

    /// Whether a `(cpu, mem)` reservation fits.
    pub fn can_fit(&self, cpu: CpuMilli, mem: MemMib) -> bool {
        cpu <= self.cpu_free() && mem <= self.mem_free()
    }

    /// Reserve resources for a new container. Panics if it does not fit —
    /// callers must check `can_fit` (placement does).
    pub fn reserve(&mut self, cpu: CpuMilli, mem: MemMib) {
        assert!(self.can_fit(cpu, mem), "reservation exceeds node capacity");
        self.cpu_used += cpu;
        self.mem_used += mem;
        self.containers += 1;
    }

    /// Release a container's resources.
    pub fn release(&mut self, cpu: CpuMilli, mem: MemMib) {
        assert!(
            cpu <= self.cpu_used && mem <= self.mem_used,
            "release underflow"
        );
        self.cpu_used -= cpu;
        self.mem_used -= mem;
        assert!(self.containers > 0, "release with no containers");
        self.containers -= 1;
    }

    /// Adjust a resident container's CPU reservation in place (deflation /
    /// re-inflation). `delta` may grow or shrink the reservation; growth
    /// must fit the free capacity.
    pub fn resize_cpu(&mut self, old: CpuMilli, new: CpuMilli) {
        if new > old {
            let grow = new - old;
            assert!(grow <= self.cpu_free(), "inflation exceeds node capacity");
            self.cpu_used += grow;
        } else {
            self.cpu_used -= old - new;
        }
    }

    /// Fraction of CPU capacity reserved.
    pub fn cpu_utilization(&self) -> f64 {
        self.cpu_used.ratio(self.cpu_capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(NodeId(0), CpuMilli(4000), MemMib(16384))
    }

    #[test]
    fn reserve_and_release_round_trip() {
        let mut n = node();
        assert!(n.can_fit(CpuMilli(2000), MemMib(1024)));
        n.reserve(CpuMilli(2000), MemMib(1024));
        assert_eq!(n.cpu_free(), CpuMilli(2000));
        assert_eq!(n.mem_free(), MemMib(15360));
        assert_eq!(n.container_count(), 1);
        assert!((n.cpu_utilization() - 0.5).abs() < 1e-12);
        n.release(CpuMilli(2000), MemMib(1024));
        assert_eq!(n.cpu_used(), CpuMilli::ZERO);
        assert_eq!(n.container_count(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds node capacity")]
    fn over_reservation_panics() {
        let mut n = node();
        n.reserve(CpuMilli(5000), MemMib(10));
    }

    #[test]
    fn resize_in_place() {
        let mut n = node();
        n.reserve(CpuMilli(1000), MemMib(512));
        // Deflate 1000 -> 700 frees 300.
        n.resize_cpu(CpuMilli(1000), CpuMilli(700));
        assert_eq!(n.cpu_used(), CpuMilli(700));
        // Re-inflate 700 -> 1000.
        n.resize_cpu(CpuMilli(700), CpuMilli(1000));
        assert_eq!(n.cpu_used(), CpuMilli(1000));
    }

    #[test]
    #[should_panic(expected = "inflation exceeds")]
    fn inflation_beyond_capacity_panics() {
        let mut n = node();
        n.reserve(CpuMilli(3900), MemMib(512));
        n.resize_cpu(CpuMilli(3900), CpuMilli(4200));
    }

    #[test]
    fn memory_only_constraint_blocks_fit() {
        let mut n = node();
        n.reserve(CpuMilli(100), MemMib(16384));
        assert!(!n.can_fit(CpuMilli(100), MemMib(1)));
        assert!(n.cpu_free() > CpuMilli::ZERO);
    }
}
