//! Edge-cluster substrate for the LaSS reproduction.
//!
//! This crate models the data plane the paper's prototype runs on: worker
//! nodes with CPU/memory capacity, containers with cold starts and
//! per-container FCFS queues, placement policies, and — crucially for the
//! deflation reclamation policy — **in-place CPU resize** of running
//! containers (the capability that made the authors run functions in
//! native Docker rather than Kubernetes pods, §5).
//!
//! The crate is policy-free: deciding *how many* containers a function
//! gets, *when* to deflate and *where* requests go is `lass-core`'s job.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod container;
pub mod ids;
pub mod node;
pub mod placement;
pub mod resources;
pub mod topology;

pub use cluster::{Cluster, ClusterError, Termination, WrrSlot};
pub use container::{Container, ContainerState};
pub use ids::{ContainerId, FnId, FnInterner, NodeId, RequestId, UserId};
pub use node::{Node, DEFAULT_NODE_BW};
pub use placement::{plan_batch, PlacementPolicy};
pub use resources::{BwMbps, CpuMilli, Dimension, MemMib, ResourceVec};
pub use topology::{Site, SiteId, Topology};
