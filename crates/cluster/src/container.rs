//! Container instances.
//!
//! A container hosts exactly one function and serves requests one at a time
//! from its own FCFS queue (the queueing "server" of the paper's M/M/c
//! model). Containers support **in-place CPU resize** — the mechanism
//! behind LaSS's deflation policy (§4.2, §5: functions run in native Docker
//! containers precisely because Kubernetes cannot resize in place).

use crate::ids::{ContainerId, FnId, NodeId, RequestId};
use crate::resources::{BwMbps, CpuMilli, MemMib, ResourceVec};
use lass_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Lifecycle state of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContainerState {
    /// Cold-starting; becomes `Idle` at the given instant.
    Starting {
        /// When the container finishes booting.
        ready_at: SimTime,
    },
    /// Warm and free to accept a request.
    Idle,
    /// Serving one request.
    Busy,
    /// Terminated (kept only for post-mortem accounting).
    Terminated,
}

/// A container instance.
#[derive(Debug, Clone)]
pub struct Container {
    id: ContainerId,
    fn_id: FnId,
    node: NodeId,
    /// The function's standard allocation (Table 1).
    standard_cpu: CpuMilli,
    /// Current allocation after any deflation (≤ standard).
    cpu: CpuMilli,
    mem: MemMib,
    /// Network bandwidth reservation (zero for the historical cpu-only
    /// demand shape; never deflated).
    bandwidth: BwMbps,
    state: ContainerState,
    /// The request currently in service, if `Busy`.
    in_service: Option<RequestId>,
    /// Requests waiting in this container's FCFS queue.
    queue: VecDeque<RequestId>,
    created_at: SimTime,
    /// Lazy-termination mark (§3.3: reclaimed only when needed).
    marked_for_termination: bool,
    busy_since: Option<SimTime>,
    busy_total: SimDuration,
}

impl Container {
    /// Create a container in `Starting` state; it becomes schedulable once
    /// `ready_at` passes (callers deliver a readiness event).
    ///
    /// `cpu` is the initial allocation and may be below `standard_cpu`:
    /// the deflation reclamation policy creates pre-deflated containers to
    /// use capacity fragments (§4.2), and such containers re-inflate to the
    /// standard size later.
    pub fn new(
        id: ContainerId,
        fn_id: FnId,
        node: NodeId,
        standard_cpu: CpuMilli,
        cpu: CpuMilli,
        mem: MemMib,
        created_at: SimTime,
        ready_at: SimTime,
    ) -> Self {
        assert!(standard_cpu > CpuMilli::ZERO, "container needs CPU");
        assert!(cpu > CpuMilli::ZERO, "initial CPU must be positive");
        assert!(cpu <= standard_cpu, "initial CPU exceeds the standard size");
        Self {
            id,
            fn_id,
            node,
            standard_cpu,
            cpu,
            mem,
            bandwidth: BwMbps::ZERO,
            state: ContainerState::Starting { ready_at },
            in_service: None,
            queue: VecDeque::new(),
            created_at,
            marked_for_termination: false,
            busy_since: None,
            busy_total: SimDuration::ZERO,
        }
    }

    /// Container id.
    pub fn id(&self) -> ContainerId {
        self.id
    }

    /// Hosted function.
    pub fn fn_id(&self) -> FnId {
        self.fn_id
    }

    /// Hosting node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Standard (undeflated) CPU allocation.
    pub fn standard_cpu(&self) -> CpuMilli {
        self.standard_cpu
    }

    /// Current CPU allocation.
    pub fn cpu(&self) -> CpuMilli {
        self.cpu
    }

    /// Memory allocation (never deflated; §5 implements CPU deflation only).
    pub fn mem(&self) -> MemMib {
        self.mem
    }

    /// Bandwidth reservation.
    pub fn bandwidth(&self) -> BwMbps {
        self.bandwidth
    }

    /// Set the bandwidth reservation at creation time. Crate-private:
    /// the cluster assigns it before the node reservation is taken, so
    /// the two always agree.
    pub(crate) fn set_bandwidth(&mut self, bandwidth: BwMbps) {
        self.bandwidth = bandwidth;
    }

    /// The container's current demand vector — what its node reservation
    /// holds: the (possibly deflated) CPU, the memory, the bandwidth.
    pub fn demand(&self) -> ResourceVec {
        ResourceVec::new(self.cpu, self.mem, self.bandwidth)
    }

    /// Current state.
    pub fn state(&self) -> ContainerState {
        self.state
    }

    /// Creation instant.
    pub fn created_at(&self) -> SimTime {
        self.created_at
    }

    /// Deflation ratio `d ∈ [0, 1)`: the fraction of the standard
    /// allocation that has been reclaimed.
    pub fn deflation_ratio(&self) -> f64 {
        1.0 - self.cpu.ratio(self.standard_cpu)
    }

    /// Whether the container has been deflated below its standard size.
    pub fn is_deflated(&self) -> bool {
        self.cpu < self.standard_cpu
    }

    /// Lazy-termination mark.
    pub fn is_marked_for_termination(&self) -> bool {
        self.marked_for_termination
    }

    /// Set or clear the lazy-termination mark.
    pub fn set_marked_for_termination(&mut self, marked: bool) {
        self.marked_for_termination = marked;
    }

    /// Resize the CPU allocation in place (deflate or re-inflate). The node
    /// accounting is the cluster's responsibility; this only enforces the
    /// container-local bound `0 < cpu ≤ standard`.
    ///
    /// Crate-private: go through
    /// [`Cluster::resize_container_cpu`](crate::Cluster::resize_container_cpu),
    /// which also updates the node reservation and the dispatch index's
    /// WRR weight.
    pub(crate) fn set_cpu(&mut self, cpu: CpuMilli) {
        assert!(cpu > CpuMilli::ZERO, "cannot deflate to zero");
        assert!(
            cpu <= self.standard_cpu,
            "cannot inflate beyond the standard size"
        );
        self.cpu = cpu;
    }

    /// Whether the container is warm and not serving anything.
    pub fn is_idle(&self) -> bool {
        self.state == ContainerState::Idle
    }

    /// Whether the container can be handed new requests (not terminated).
    pub fn is_schedulable(&self) -> bool {
        !matches!(self.state, ContainerState::Terminated)
    }

    /// Mark boot complete. Panics unless currently `Starting`.
    ///
    /// Crate-private: state transitions must go through the cluster
    /// ([`Cluster::mark_container_ready`](crate::Cluster::mark_container_ready)),
    /// which keeps the per-function weighted dispatch index coherent.
    pub(crate) fn mark_ready(&mut self) {
        match self.state {
            ContainerState::Starting { .. } => self.state = ContainerState::Idle,
            s => panic!("mark_ready on container in state {s:?}"),
        }
    }

    /// Append a request to this container's FCFS queue.
    pub fn enqueue(&mut self, rid: RequestId) {
        debug_assert!(self.is_schedulable(), "enqueue on terminated container");
        self.queue.push_back(rid);
    }

    /// If idle with a non-empty queue, pop the head and begin service.
    /// Returns the request now in service.
    ///
    /// Crate-private: go through
    /// [`Cluster::begin_service`](crate::Cluster::begin_service) so the
    /// dispatch index's idle flag stays coherent.
    pub(crate) fn try_begin_service(&mut self, now: SimTime) -> Option<RequestId> {
        if self.state != ContainerState::Idle {
            return None;
        }
        let rid = self.queue.pop_front()?;
        self.state = ContainerState::Busy;
        self.in_service = Some(rid);
        self.busy_since = Some(now);
        Some(rid)
    }

    /// Finish the in-service request, returning it. Panics unless `Busy`.
    ///
    /// Crate-private: go through
    /// [`Cluster::finish_service`](crate::Cluster::finish_service) so the
    /// dispatch index's idle flag stays coherent.
    pub(crate) fn complete_service(&mut self, now: SimTime) -> RequestId {
        assert_eq!(self.state, ContainerState::Busy, "complete on non-busy");
        let rid = self.in_service.take().expect("busy implies in-service");
        if let Some(since) = self.busy_since.take() {
            self.busy_total = self.busy_total + now.saturating_since(since);
        }
        self.state = ContainerState::Idle;
        rid
    }

    /// Terminate, returning every request that must be re-dispatched (the
    /// in-service one first, then the queue — the paper notes terminated
    /// containers cause "requests that need to be rerun").
    ///
    /// Crate-private: go through
    /// [`Cluster::terminate_container`](crate::Cluster::terminate_container),
    /// which also releases the node reservation and the dispatch index
    /// entry.
    pub(crate) fn terminate(&mut self, now: SimTime) -> Vec<RequestId> {
        if let Some(since) = self.busy_since.take() {
            self.busy_total = self.busy_total + now.saturating_since(since);
        }
        let mut orphans = Vec::with_capacity(self.queue.len() + 1);
        if let Some(rid) = self.in_service.take() {
            orphans.push(rid);
        }
        orphans.extend(self.queue.drain(..));
        self.state = ContainerState::Terminated;
        orphans
    }

    /// The request currently in service.
    pub fn in_service(&self) -> Option<RequestId> {
        self.in_service
    }

    /// Number of queued (not yet in-service) requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Queued plus in-service requests.
    pub fn load(&self) -> usize {
        self.queue.len() + usize::from(self.in_service.is_some())
    }

    /// Fraction of the container's lifetime spent serving requests.
    pub fn busy_fraction(&self, now: SimTime) -> f64 {
        let life = now.saturating_since(self.created_at).as_secs_f64();
        if life <= 0.0 {
            return 0.0;
        }
        let mut busy = self.busy_total.as_secs_f64();
        if let Some(since) = self.busy_since {
            busy += now.saturating_since(since).as_secs_f64();
        }
        (busy / life).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctr() -> Container {
        Container::new(
            ContainerId(1),
            FnId(0),
            NodeId(0),
            CpuMilli(1000),
            CpuMilli(1000),
            MemMib(512),
            SimTime::ZERO,
            SimTime::from_millis(500),
        )
    }

    #[test]
    fn lifecycle_starting_to_idle_to_busy() {
        let mut c = ctr();
        assert!(matches!(c.state(), ContainerState::Starting { .. }));
        assert!(c.is_schedulable());
        c.enqueue(RequestId(1));
        // Not ready yet: no service begins.
        assert_eq!(c.try_begin_service(SimTime::from_millis(100)), None);
        c.mark_ready();
        assert!(c.is_idle());
        let rid = c.try_begin_service(SimTime::from_millis(500));
        assert_eq!(rid, Some(RequestId(1)));
        assert_eq!(c.state(), ContainerState::Busy);
        assert_eq!(c.in_service(), Some(RequestId(1)));
        let done = c.complete_service(SimTime::from_millis(700));
        assert_eq!(done, RequestId(1));
        assert!(c.is_idle());
    }

    #[test]
    fn fcfs_order() {
        let mut c = ctr();
        c.mark_ready();
        c.enqueue(RequestId(1));
        c.enqueue(RequestId(2));
        c.enqueue(RequestId(3));
        assert_eq!(c.queue_len(), 3);
        assert_eq!(c.try_begin_service(SimTime::ZERO), Some(RequestId(1)));
        assert_eq!(c.load(), 3);
        c.complete_service(SimTime::from_millis(10));
        assert_eq!(
            c.try_begin_service(SimTime::from_millis(10)),
            Some(RequestId(2))
        );
    }

    #[test]
    fn busy_container_does_not_double_serve() {
        let mut c = ctr();
        c.mark_ready();
        c.enqueue(RequestId(1));
        c.enqueue(RequestId(2));
        assert!(c.try_begin_service(SimTime::ZERO).is_some());
        assert_eq!(c.try_begin_service(SimTime::ZERO), None);
    }

    #[test]
    fn deflation_ratio_and_resize() {
        let mut c = ctr();
        assert_eq!(c.deflation_ratio(), 0.0);
        assert!(!c.is_deflated());
        c.set_cpu(CpuMilli(700));
        assert!((c.deflation_ratio() - 0.3).abs() < 1e-12);
        assert!(c.is_deflated());
        c.set_cpu(CpuMilli(1000));
        assert_eq!(c.deflation_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "inflate beyond")]
    fn cannot_exceed_standard() {
        let mut c = ctr();
        c.set_cpu(CpuMilli(1200));
    }

    #[test]
    fn terminate_returns_orphans_in_service_first() {
        let mut c = ctr();
        c.mark_ready();
        c.enqueue(RequestId(1));
        c.enqueue(RequestId(2));
        c.try_begin_service(SimTime::ZERO);
        c.enqueue(RequestId(3));
        let orphans = c.terminate(SimTime::from_secs(1));
        assert_eq!(orphans, vec![RequestId(1), RequestId(2), RequestId(3)]);
        assert_eq!(c.state(), ContainerState::Terminated);
        assert!(!c.is_schedulable());
    }

    #[test]
    fn busy_fraction_accounting() {
        let mut c = ctr();
        c.mark_ready();
        c.enqueue(RequestId(1));
        c.try_begin_service(SimTime::from_secs(1));
        c.complete_service(SimTime::from_secs(3));
        // Busy 2s out of 4s.
        let bf = c.busy_fraction(SimTime::from_secs(4));
        assert!((bf - 0.5).abs() < 1e-9, "bf={bf}");
        // While busy, the open interval counts too.
        c.enqueue(RequestId(2));
        c.try_begin_service(SimTime::from_secs(4));
        let bf = c.busy_fraction(SimTime::from_secs(6));
        assert!((bf - 4.0 / 6.0).abs() < 1e-9, "bf={bf}");
    }

    #[test]
    fn termination_mark_is_togglable() {
        let mut c = ctr();
        assert!(!c.is_marked_for_termination());
        c.set_marked_for_termination(true);
        assert!(c.is_marked_for_termination());
        c.set_marked_for_termination(false);
        assert!(!c.is_marked_for_termination());
    }
}
