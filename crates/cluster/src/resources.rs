//! Resource quantities.
//!
//! CPU is accounted in **milli-vCPU** (1000 = one core) — the granularity
//! Docker's `cpu-shares`/`cpus` flags expose and the unit LaSS deflates in.
//! Memory is accounted in MiB, network bandwidth in Mbps. Integer units
//! keep cluster bookkeeping exact (no float drift in capacity invariants).
//!
//! [`ResourceVec`] bundles the three dimensions into one exact integer
//! vector with componentwise arithmetic, fit tests, and the
//! dominant-share / binding-dimension operations multi-dimensional
//! placement ranks on. A vector whose `mem`/`bandwidth` components are
//! zero behaves exactly like the historical cpu-only accounting — the
//! serde defaults exploit this to keep old scenarios byte-identical.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// CPU allocation in milli-vCPU.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CpuMilli(pub u32);

impl CpuMilli {
    /// Zero CPU.
    pub const ZERO: CpuMilli = CpuMilli(0);

    /// From whole vCPUs.
    #[inline]
    pub fn from_cores(cores: f64) -> Self {
        assert!(cores.is_finite() && cores >= 0.0);
        CpuMilli((cores * 1000.0).round() as u32)
    }

    /// As fractional vCPUs.
    #[inline]
    pub fn as_cores(self) -> f64 {
        f64::from(self.0) / 1000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: CpuMilli) -> CpuMilli {
        CpuMilli(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a non-negative factor, rounding to the nearest milli.
    #[inline]
    pub fn scale(self, factor: f64) -> CpuMilli {
        assert!(factor.is_finite() && factor >= 0.0);
        CpuMilli((f64::from(self.0) * factor).round() as u32)
    }

    /// `self / other` as a float (0 when other is zero).
    #[inline]
    pub fn ratio(self, other: CpuMilli) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            f64::from(self.0) / f64::from(other.0)
        }
    }

    /// Smaller of the two.
    #[inline]
    pub fn min(self, other: CpuMilli) -> CpuMilli {
        CpuMilli(self.0.min(other.0))
    }

    /// Larger of the two.
    #[inline]
    pub fn max(self, other: CpuMilli) -> CpuMilli {
        CpuMilli(self.0.max(other.0))
    }
}

/// Memory allocation in MiB.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MemMib(pub u32);

impl MemMib {
    /// Zero memory.
    pub const ZERO: MemMib = MemMib(0);

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: MemMib) -> MemMib {
        MemMib(self.0.saturating_sub(rhs.0))
    }
}

/// Network bandwidth allocation in Mbps.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BwMbps(pub u32);

impl BwMbps {
    /// Zero bandwidth.
    pub const ZERO: BwMbps = BwMbps(0);

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: BwMbps) -> BwMbps {
        BwMbps(self.0.saturating_sub(rhs.0))
    }
}

/// One axis of the resource vector, in dominance order: ties on
/// dominant share break toward the earlier dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Dimension {
    /// CPU (milli-vCPU).
    Cpu,
    /// Memory (MiB).
    Mem,
    /// Network bandwidth (Mbps).
    Bandwidth,
}

impl Dimension {
    /// Every dimension, in dominance order.
    pub const ALL: [Dimension; 3] = [Dimension::Cpu, Dimension::Mem, Dimension::Bandwidth];

    /// Stable lowercase name (report columns, planner logs).
    pub fn as_str(self) -> &'static str {
        match self {
            Dimension::Cpu => "cpu",
            Dimension::Mem => "mem",
            Dimension::Bandwidth => "bandwidth",
        }
    }
}

impl fmt::Display for Dimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An exact integer resource vector over `(cpu, mem, bandwidth)`.
///
/// Arithmetic is componentwise and exact; `mem`/`bandwidth` default to
/// zero under serde so a cpu-only demand keeps the historical
/// single-dimension accounting bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ResourceVec {
    /// CPU component.
    #[serde(default)]
    pub cpu: CpuMilli,
    /// Memory component.
    #[serde(default)]
    pub mem: MemMib,
    /// Network bandwidth component.
    #[serde(default)]
    pub bandwidth: BwMbps,
}

impl ResourceVec {
    /// The zero vector.
    pub const ZERO: ResourceVec = ResourceVec {
        cpu: CpuMilli::ZERO,
        mem: MemMib::ZERO,
        bandwidth: BwMbps::ZERO,
    };

    /// A vector from all three components.
    pub fn new(cpu: CpuMilli, mem: MemMib, bandwidth: BwMbps) -> Self {
        Self {
            cpu,
            mem,
            bandwidth,
        }
    }

    /// A cpu+mem vector with zero bandwidth — the historical demand
    /// shape every pre-vector call site produces.
    pub fn cpu_mem(cpu: CpuMilli, mem: MemMib) -> Self {
        Self {
            cpu,
            mem,
            bandwidth: BwMbps::ZERO,
        }
    }

    /// Raw magnitude along one dimension.
    pub fn get(self, dim: Dimension) -> u32 {
        match dim {
            Dimension::Cpu => self.cpu.0,
            Dimension::Mem => self.mem.0,
            Dimension::Bandwidth => self.bandwidth.0,
        }
    }

    /// Whether every component is zero.
    pub fn is_zero(self) -> bool {
        self == ResourceVec::ZERO
    }

    /// Componentwise saturating subtraction.
    pub fn saturating_sub(self, rhs: ResourceVec) -> ResourceVec {
        ResourceVec {
            cpu: self.cpu.saturating_sub(rhs.cpu),
            mem: self.mem.saturating_sub(rhs.mem),
            bandwidth: self.bandwidth.saturating_sub(rhs.bandwidth),
        }
    }

    /// Whether this demand fits inside `avail` on every dimension.
    pub fn fits_in(self, avail: ResourceVec) -> bool {
        self.cpu <= avail.cpu && self.mem <= avail.mem && self.bandwidth <= avail.bandwidth
    }

    /// Share of `capacity` along one dimension (0 where capacity is 0).
    pub fn share(self, capacity: ResourceVec, dim: Dimension) -> f64 {
        let cap = capacity.get(dim);
        if cap == 0 {
            0.0
        } else {
            f64::from(self.get(dim)) / f64::from(cap)
        }
    }

    /// Dominant share (DRF): the largest per-dimension share of
    /// `capacity`. Zero-capacity dimensions contribute nothing.
    pub fn dominant_share(self, capacity: ResourceVec) -> f64 {
        Dimension::ALL
            .iter()
            .map(|&d| self.share(capacity, d))
            .fold(0.0, f64::max)
    }

    /// The dimension with the largest share of `capacity` — the axis
    /// this demand binds on first. Ties break in dominance order.
    pub fn binding_dimension(self, capacity: ResourceVec) -> Dimension {
        let mut best = Dimension::Cpu;
        let mut best_share = self.share(capacity, Dimension::Cpu);
        for &d in &Dimension::ALL[1..] {
            let s = self.share(capacity, d);
            if s > best_share {
                best = d;
                best_share = s;
            }
        }
        best
    }

    /// How many copies of `demand` fit in this free vector: the minimum
    /// over demanded dimensions of `free / demand`. A zero demand fits
    /// unboundedly often (`u64::MAX`).
    pub fn fit_count(self, demand: ResourceVec) -> u64 {
        let mut fits = u64::MAX;
        for d in Dimension::ALL {
            if let Some(n) = self.get(d).checked_div(demand.get(d)) {
                fits = fits.min(u64::from(n));
            }
        }
        fits
    }
}

impl Add for ResourceVec {
    type Output = ResourceVec;
    fn add(self, rhs: ResourceVec) -> ResourceVec {
        ResourceVec {
            cpu: self.cpu + rhs.cpu,
            mem: self.mem + rhs.mem,
            bandwidth: self.bandwidth + rhs.bandwidth,
        }
    }
}

impl AddAssign for ResourceVec {
    fn add_assign(&mut self, rhs: ResourceVec) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceVec {
    type Output = ResourceVec;
    fn sub(self, rhs: ResourceVec) -> ResourceVec {
        ResourceVec {
            cpu: self.cpu - rhs.cpu,
            mem: self.mem - rhs.mem,
            bandwidth: self.bandwidth - rhs.bandwidth,
        }
    }
}

impl SubAssign for ResourceVec {
    fn sub_assign(&mut self, rhs: ResourceVec) {
        *self = *self - rhs;
    }
}

impl Sum for ResourceVec {
    fn sum<I: Iterator<Item = ResourceVec>>(iter: I) -> ResourceVec {
        iter.fold(ResourceVec::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.cpu, self.mem, self.bandwidth)
    }
}

macro_rules! arith {
    ($t:ident) => {
        impl Add for $t {
            type Output = $t;
            #[inline]
            fn add(self, rhs: $t) -> $t {
                $t(self.0 + rhs.0)
            }
        }
        impl AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, rhs: $t) {
                self.0 += rhs.0;
            }
        }
        impl Sub for $t {
            type Output = $t;
            #[inline]
            fn sub(self, rhs: $t) -> $t {
                debug_assert!(self.0 >= rhs.0, "resource underflow");
                $t(self.0 - rhs.0)
            }
        }
        impl SubAssign for $t {
            #[inline]
            fn sub_assign(&mut self, rhs: $t) {
                debug_assert!(self.0 >= rhs.0, "resource underflow");
                self.0 -= rhs.0;
            }
        }
        impl Sum for $t {
            fn sum<I: Iterator<Item = $t>>(iter: I) -> $t {
                iter.fold($t(0), |a, b| a + b)
            }
        }
    };
}

arith!(CpuMilli);
arith!(MemMib);
arith!(BwMbps);

impl fmt::Display for CpuMilli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}vCPU", self.as_cores())
    }
}

impl fmt::Display for MemMib {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MiB", self.0)
    }
}

impl fmt::Display for BwMbps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}Mbps", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_conversions() {
        assert_eq!(CpuMilli::from_cores(2.0), CpuMilli(2000));
        assert_eq!(CpuMilli::from_cores(0.4), CpuMilli(400));
        assert!((CpuMilli(1500).as_cores() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cpu_arithmetic_and_scaling() {
        let a = CpuMilli(700) + CpuMilli(300);
        assert_eq!(a, CpuMilli(1000));
        assert_eq!(a - CpuMilli(250), CpuMilli(750));
        assert_eq!(CpuMilli(1000).scale(0.7), CpuMilli(700));
        assert_eq!(CpuMilli(300).saturating_sub(CpuMilli(1000)), CpuMilli::ZERO);
        assert!((CpuMilli(500).ratio(CpuMilli(2000)) - 0.25).abs() < 1e-12);
        assert_eq!(CpuMilli(500).ratio(CpuMilli::ZERO), 0.0);
        assert_eq!(CpuMilli(2).min(CpuMilli(5)), CpuMilli(2));
        assert_eq!(CpuMilli(2).max(CpuMilli(5)), CpuMilli(5));
    }

    #[test]
    fn sums() {
        let total: CpuMilli = [CpuMilli(100), CpuMilli(200)].into_iter().sum();
        assert_eq!(total, CpuMilli(300));
        let m: MemMib = [MemMib(256), MemMib(512)].into_iter().sum();
        assert_eq!(m, MemMib(768));
    }

    #[test]
    fn displays() {
        assert_eq!(CpuMilli(2500).to_string(), "2.50vCPU");
        assert_eq!(MemMib(256).to_string(), "256MiB");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "resource underflow")]
    fn underflow_panics_in_debug() {
        let _ = MemMib(1) - MemMib(2);
    }

    fn vec3(cpu: u32, mem: u32, bw: u32) -> ResourceVec {
        ResourceVec::new(CpuMilli(cpu), MemMib(mem), BwMbps(bw))
    }

    #[test]
    fn vector_arithmetic_is_componentwise() {
        let a = vec3(1000, 512, 100);
        let b = vec3(500, 256, 40);
        assert_eq!(a + b, vec3(1500, 768, 140));
        assert_eq!(a - b, vec3(500, 256, 60));
        let mut c = a;
        c += b;
        c -= a;
        assert_eq!(c, b);
        let total: ResourceVec = [a, b].into_iter().sum();
        assert_eq!(total, vec3(1500, 768, 140));
        assert_eq!(b.saturating_sub(a), ResourceVec::ZERO);
    }

    #[test]
    fn fits_and_fit_count() {
        let free = vec3(4000, 1024, 0);
        assert!(vec3(4000, 1024, 0).fits_in(free));
        assert!(!vec3(4001, 0, 0).fits_in(free));
        assert!(!vec3(0, 0, 1).fits_in(free));
        // mem binds: 1024/300 = 3 copies even though cpu fits 8.
        assert_eq!(free.fit_count(vec3(500, 300, 0)), 3);
        assert_eq!(free.fit_count(ResourceVec::ZERO), u64::MAX);
        assert_eq!(free.fit_count(vec3(0, 0, 10)), 0);
    }

    #[test]
    fn dominant_share_and_binding_dimension() {
        let cap = vec3(4000, 16384, 10_000);
        let compute = vec3(2000, 1024, 0);
        assert!((compute.dominant_share(cap) - 0.5).abs() < 1e-12);
        assert_eq!(compute.binding_dimension(cap), Dimension::Cpu);
        let memory = vec3(400, 12288, 0);
        assert_eq!(memory.binding_dimension(cap), Dimension::Mem);
        assert!((memory.dominant_share(cap) - 0.75).abs() < 1e-12);
        let io = vec3(400, 1024, 9000);
        assert_eq!(io.binding_dimension(cap), Dimension::Bandwidth);
        // Zero-capacity dimensions are ignored, and the cpu-tie breaks
        // toward the earlier dimension.
        let flat = vec3(1000, 0, 0);
        assert_eq!(vec3(500, 0, 0).binding_dimension(flat), Dimension::Cpu);
        assert_eq!(vec3(0, 99, 99).dominant_share(vec3(1000, 0, 0)), 0.0);
    }

    #[test]
    fn dimension_names_are_stable() {
        let names: Vec<&str> = Dimension::ALL.iter().map(|d| d.as_str()).collect();
        assert_eq!(names, vec!["cpu", "mem", "bandwidth"]);
        assert_eq!(Dimension::Bandwidth.to_string(), "bandwidth");
    }

    #[test]
    fn vector_display_and_defaults() {
        assert_eq!(vec3(2500, 256, 80).to_string(), "2.50vCPU/256MiB/80Mbps");
        assert_eq!(ResourceVec::default(), ResourceVec::ZERO);
        assert_eq!(
            ResourceVec::cpu_mem(CpuMilli(100), MemMib(5)),
            vec3(100, 5, 0)
        );
    }
}
