//! Resource quantities.
//!
//! CPU is accounted in **milli-vCPU** (1000 = one core) — the granularity
//! Docker's `cpu-shares`/`cpus` flags expose and the unit LaSS deflates in.
//! Memory is accounted in MiB. Integer units keep cluster bookkeeping exact
//! (no float drift in capacity invariants).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// CPU allocation in milli-vCPU.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CpuMilli(pub u32);

impl CpuMilli {
    /// Zero CPU.
    pub const ZERO: CpuMilli = CpuMilli(0);

    /// From whole vCPUs.
    #[inline]
    pub fn from_cores(cores: f64) -> Self {
        assert!(cores.is_finite() && cores >= 0.0);
        CpuMilli((cores * 1000.0).round() as u32)
    }

    /// As fractional vCPUs.
    #[inline]
    pub fn as_cores(self) -> f64 {
        f64::from(self.0) / 1000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: CpuMilli) -> CpuMilli {
        CpuMilli(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a non-negative factor, rounding to the nearest milli.
    #[inline]
    pub fn scale(self, factor: f64) -> CpuMilli {
        assert!(factor.is_finite() && factor >= 0.0);
        CpuMilli((f64::from(self.0) * factor).round() as u32)
    }

    /// `self / other` as a float (0 when other is zero).
    #[inline]
    pub fn ratio(self, other: CpuMilli) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            f64::from(self.0) / f64::from(other.0)
        }
    }

    /// Smaller of the two.
    #[inline]
    pub fn min(self, other: CpuMilli) -> CpuMilli {
        CpuMilli(self.0.min(other.0))
    }

    /// Larger of the two.
    #[inline]
    pub fn max(self, other: CpuMilli) -> CpuMilli {
        CpuMilli(self.0.max(other.0))
    }
}

/// Memory allocation in MiB.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MemMib(pub u32);

impl MemMib {
    /// Zero memory.
    pub const ZERO: MemMib = MemMib(0);

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: MemMib) -> MemMib {
        MemMib(self.0.saturating_sub(rhs.0))
    }
}

macro_rules! arith {
    ($t:ident) => {
        impl Add for $t {
            type Output = $t;
            #[inline]
            fn add(self, rhs: $t) -> $t {
                $t(self.0 + rhs.0)
            }
        }
        impl AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, rhs: $t) {
                self.0 += rhs.0;
            }
        }
        impl Sub for $t {
            type Output = $t;
            #[inline]
            fn sub(self, rhs: $t) -> $t {
                debug_assert!(self.0 >= rhs.0, "resource underflow");
                $t(self.0 - rhs.0)
            }
        }
        impl SubAssign for $t {
            #[inline]
            fn sub_assign(&mut self, rhs: $t) {
                debug_assert!(self.0 >= rhs.0, "resource underflow");
                self.0 -= rhs.0;
            }
        }
        impl Sum for $t {
            fn sum<I: Iterator<Item = $t>>(iter: I) -> $t {
                iter.fold($t(0), |a, b| a + b)
            }
        }
    };
}

arith!(CpuMilli);
arith!(MemMib);

impl fmt::Display for CpuMilli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}vCPU", self.as_cores())
    }
}

impl fmt::Display for MemMib {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MiB", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_conversions() {
        assert_eq!(CpuMilli::from_cores(2.0), CpuMilli(2000));
        assert_eq!(CpuMilli::from_cores(0.4), CpuMilli(400));
        assert!((CpuMilli(1500).as_cores() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cpu_arithmetic_and_scaling() {
        let a = CpuMilli(700) + CpuMilli(300);
        assert_eq!(a, CpuMilli(1000));
        assert_eq!(a - CpuMilli(250), CpuMilli(750));
        assert_eq!(CpuMilli(1000).scale(0.7), CpuMilli(700));
        assert_eq!(CpuMilli(300).saturating_sub(CpuMilli(1000)), CpuMilli::ZERO);
        assert!((CpuMilli(500).ratio(CpuMilli(2000)) - 0.25).abs() < 1e-12);
        assert_eq!(CpuMilli(500).ratio(CpuMilli::ZERO), 0.0);
        assert_eq!(CpuMilli(2).min(CpuMilli(5)), CpuMilli(2));
        assert_eq!(CpuMilli(2).max(CpuMilli(5)), CpuMilli(5));
    }

    #[test]
    fn sums() {
        let total: CpuMilli = [CpuMilli(100), CpuMilli(200)].into_iter().sum();
        assert_eq!(total, CpuMilli(300));
        let m: MemMib = [MemMib(256), MemMib(512)].into_iter().sum();
        assert_eq!(m, MemMib(768));
    }

    #[test]
    fn displays() {
        assert_eq!(CpuMilli(2500).to_string(), "2.50vCPU");
        assert_eq!(MemMib(256).to_string(), "256MiB");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "resource underflow")]
    fn underflow_panics_in_debug() {
        let _ = MemMib(1) - MemMib(2);
    }
}
