//! Strongly-typed identifiers for cluster entities.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// A serverless function registered with the platform.
    FnId, u32, "fn-"
);
id_type!(
    /// A worker node in the edge cluster.
    NodeId, u32, "node-"
);
id_type!(
    /// A container instance hosting a function.
    ContainerId, u64, "ctr-"
);
id_type!(
    /// A platform user (namespace) owning functions.
    UserId, u32, "user-"
);
id_type!(
    /// One function invocation request.
    RequestId, u64, "req-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(FnId(3).to_string(), "fn-3");
        assert_eq!(NodeId(0).to_string(), "node-0");
        assert_eq!(ContainerId(12).to_string(), "ctr-12");
        assert_eq!(UserId(1).to_string(), "user-1");
        assert_eq!(RequestId(9).to_string(), "req-9");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let s: BTreeSet<FnId> = [FnId(3), FnId(1), FnId(2)].into_iter().collect();
        assert_eq!(s.into_iter().next(), Some(FnId(1)));
        assert_eq!(ContainerId::from(5u64), ContainerId(5));
    }
}
