//! Strongly-typed identifiers for cluster entities, plus the function-name
//! interner that maps trace strings to dense [`FnId`]s.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// A serverless function registered with the platform.
    FnId, u32, "fn-"
);
id_type!(
    /// A worker node in the edge cluster.
    NodeId, u32, "node-"
);
id_type!(
    /// A container instance hosting a function.
    ContainerId, u64, "ctr-"
);
id_type!(
    /// A platform user (namespace) owning functions.
    UserId, u32, "user-"
);
id_type!(
    /// One function invocation request.
    RequestId, u64, "req-"
);

/// Interns external function names (trace hashes, action names) into
/// dense [`FnId`]s assigned in first-seen order, so per-function state
/// everywhere downstream can live in flat vectors indexed by `FnId(0)..`
/// instead of string-keyed maps. Ids are stable for the interner's
/// lifetime; `name()` recovers the original string for reports.
#[derive(Debug, Clone, Default)]
pub struct FnInterner {
    names: Vec<Box<str>>,
    index: HashMap<Box<str>, u32>,
}

impl FnInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id for `name`, allocating the next dense id on first sight.
    pub fn intern(&mut self, name: &str) -> FnId {
        if let Some(&idx) = self.index.get(name) {
            return FnId(idx);
        }
        let idx = u32::try_from(self.names.len()).expect("more than u32::MAX functions");
        let owned: Box<str> = name.into();
        self.names.push(owned.clone());
        self.index.insert(owned, idx);
        FnId(idx)
    }

    /// The id for `name` if it has been interned.
    pub fn get(&self, name: &str) -> Option<FnId> {
        self.index.get(name).map(|&idx| FnId(idx))
    }

    /// The original name behind `id`.
    pub fn name(&self, id: FnId) -> Option<&str> {
        self.names.get(id.0 as usize).map(|s| &**s)
    }

    /// Number of interned names. Ids are exactly `0..len()`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All names in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FnId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, s)| (FnId(i as u32), &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(FnId(3).to_string(), "fn-3");
        assert_eq!(NodeId(0).to_string(), "node-0");
        assert_eq!(ContainerId(12).to_string(), "ctr-12");
        assert_eq!(UserId(1).to_string(), "user-1");
        assert_eq!(RequestId(9).to_string(), "req-9");
    }

    #[test]
    fn interner_assigns_dense_first_seen_ids() {
        let mut i = FnInterner::new();
        assert!(i.is_empty());
        let a = i.intern("mobilenet");
        let b = i.intern("binary-alert");
        assert_eq!(a, FnId(0));
        assert_eq!(b, FnId(1));
        // Re-interning is idempotent.
        assert_eq!(i.intern("mobilenet"), a);
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("binary-alert"), Some(b));
        assert_eq!(i.get("unknown"), None);
        assert_eq!(i.name(a), Some("mobilenet"));
        assert_eq!(i.name(FnId(7)), None);
        let collected: Vec<_> = i.iter().collect();
        assert_eq!(
            collected,
            vec![(FnId(0), "mobilenet"), (FnId(1), "binary-alert")]
        );
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let s: BTreeSet<FnId> = [FnId(3), FnId(1), FnId(2)].into_iter().collect();
        assert_eq!(s.into_iter().next(), Some(FnId(1)));
        assert_eq!(ContainerId::from(5u64), ContainerId(5));
    }
}
