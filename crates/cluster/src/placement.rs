//! Container placement policies.
//!
//! LaSS's control node "finds a cluster node with enough spare capacity or
//! finds a number of nodes that can collectively host the new containers"
//! (§3.3). The policy choice is orthogonal to the paper's contribution, so
//! all three classic heuristics are provided; LaSS defaults to worst-fit
//! (spread for headroom), while the OpenWhisk baseline uses its own
//! sharding scheme in `lass-openwhisk`.
//!
//! With multi-dimensional demands ([`ResourceVec`]) the classic policies
//! still rank on free CPU (their historical behavior — a zero-bandwidth
//! demand places identically to the old cpu+mem path), while
//! [`PlacementPolicy::VectorBestFit`] ranks on the *dominant share* of
//! the post-placement free vector, and [`plan_batch`] runs best-fit-
//! decreasing vector bin-packing over a whole batch of demands.

use crate::node::Node;
use crate::resources::{CpuMilli, MemMib, ResourceVec};
use crate::NodeId;
use serde::{Deserialize, Serialize};

/// Node-selection heuristic for new containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// First node (by id) that fits.
    FirstFit,
    /// Fitting node with the least free CPU (pack tightly; the default —
    /// it keeps large contiguous blocks available so big DNN containers
    /// are not stranded by fragments of small ones).
    #[default]
    BestFit,
    /// Fitting node with the most free CPU (spread for load headroom).
    WorstFit,
    /// Fitting node that minimizes the dominant share of the remaining
    /// free vector — best fit in vector terms, so a memory-heavy demand
    /// packs against memory fragments and an io-heavy one against NIC
    /// fragments instead of everything ranking on CPU.
    VectorBestFit,
}

impl PlacementPolicy {
    /// Choose a node for a `(cpu, mem)` reservation; `None` if nothing fits.
    pub fn choose(self, nodes: &[Node], cpu: CpuMilli, mem: MemMib) -> Option<NodeId> {
        self.choose_vec(nodes, ResourceVec::cpu_mem(cpu, mem))
    }

    /// Choose a node for a full demand vector; `None` if nothing fits on
    /// every dimension. For the classic policies this ranks exactly as
    /// the historical cpu+mem path did (free CPU), so defaulted
    /// zero-bandwidth demands place byte-identically.
    pub fn choose_vec(self, nodes: &[Node], demand: ResourceVec) -> Option<NodeId> {
        let fitting = nodes.iter().filter(|n| n.can_fit_vec(demand));
        match self {
            PlacementPolicy::FirstFit => fitting.min_by_key(|n| n.id()).map(|n| n.id()),
            PlacementPolicy::BestFit => fitting
                .min_by_key(|n| (n.cpu_free(), n.id()))
                .map(|n| n.id()),
            PlacementPolicy::WorstFit => fitting
                .max_by_key(|n| (n.cpu_free(), std::cmp::Reverse(n.id())))
                .map(|n| n.id()),
            PlacementPolicy::VectorBestFit => fitting
                .map(|n| {
                    let left = n.free_vec() - demand;
                    (left.dominant_share(n.capacity_vec()), n.id())
                })
                .min_by(|(a, ai), (b, bi)| a.total_cmp(b).then(ai.cmp(bi)))
                .map(|(_, id)| id),
        }
    }
}

/// Best-fit-decreasing vector bin-packing: place a whole batch of
/// demands, biggest dominant share first, each on the node the policy
/// picks against a scratch copy of the free vectors. Returns the chosen
/// node per demand **in the original demand order**, or `None` if some
/// demand cannot be placed (nothing is partially committed — callers
/// either apply the whole plan or fall back).
pub fn plan_batch(
    policy: PlacementPolicy,
    nodes: &[Node],
    demands: &[ResourceVec],
) -> Option<Vec<NodeId>> {
    let mut scratch: Vec<Node> = nodes.to_vec();
    // Decreasing dominant share against the *total* capacity — the batch
    // ordering heuristic; ties keep submission order (stable sort).
    let total: ResourceVec = nodes.iter().map(Node::capacity_vec).sum();
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|&a, &b| {
        demands[b]
            .dominant_share(total)
            .total_cmp(&demands[a].dominant_share(total))
    });
    let mut out = vec![NodeId(0); demands.len()];
    for i in order {
        let node_id = policy.choose_vec(&scratch, demands[i])?;
        scratch[node_id.0 as usize].reserve_vec(demands[i]);
        out[i] = node_id;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::BwMbps;

    fn nodes() -> Vec<Node> {
        let mut a = Node::new(NodeId(0), CpuMilli(4000), MemMib(16384));
        let mut b = Node::new(NodeId(1), CpuMilli(4000), MemMib(16384));
        let c = Node::new(NodeId(2), CpuMilli(4000), MemMib(16384));
        a.reserve(CpuMilli(3000), MemMib(1024)); // 1000 free
        b.reserve(CpuMilli(1000), MemMib(1024)); // 3000 free
        vec![a, b, c] // c: 4000 free
    }

    #[test]
    fn first_fit_takes_lowest_id() {
        let ns = nodes();
        assert_eq!(
            PlacementPolicy::FirstFit.choose(&ns, CpuMilli(500), MemMib(256)),
            Some(NodeId(0))
        );
        // Too big for node 0.
        assert_eq!(
            PlacementPolicy::FirstFit.choose(&ns, CpuMilli(2000), MemMib(256)),
            Some(NodeId(1))
        );
    }

    #[test]
    fn best_fit_packs_tightest() {
        let ns = nodes();
        assert_eq!(
            PlacementPolicy::BestFit.choose(&ns, CpuMilli(500), MemMib(256)),
            Some(NodeId(0))
        );
        assert_eq!(
            PlacementPolicy::BestFit.choose(&ns, CpuMilli(1500), MemMib(256)),
            Some(NodeId(1))
        );
    }

    #[test]
    fn worst_fit_spreads() {
        let ns = nodes();
        assert_eq!(
            PlacementPolicy::WorstFit.choose(&ns, CpuMilli(500), MemMib(256)),
            Some(NodeId(2))
        );
    }

    #[test]
    fn nothing_fits() {
        let ns = nodes();
        for p in [
            PlacementPolicy::FirstFit,
            PlacementPolicy::BestFit,
            PlacementPolicy::WorstFit,
            PlacementPolicy::VectorBestFit,
        ] {
            assert_eq!(p.choose(&ns, CpuMilli(4500), MemMib(256)), None);
            assert_eq!(p.choose(&ns, CpuMilli(100), MemMib(20000)), None);
        }
    }

    #[test]
    fn ties_break_deterministically() {
        let ns = vec![
            Node::new(NodeId(0), CpuMilli(4000), MemMib(1024)),
            Node::new(NodeId(1), CpuMilli(4000), MemMib(1024)),
        ];
        assert_eq!(
            PlacementPolicy::WorstFit.choose(&ns, CpuMilli(100), MemMib(1)),
            Some(NodeId(0))
        );
        assert_eq!(
            PlacementPolicy::BestFit.choose(&ns, CpuMilli(100), MemMib(1)),
            Some(NodeId(0))
        );
        assert_eq!(
            PlacementPolicy::VectorBestFit
                .choose_vec(&ns, ResourceVec::cpu_mem(CpuMilli(100), MemMib(1))),
            Some(NodeId(0))
        );
    }

    #[test]
    fn vector_best_fit_ranks_on_the_binding_dimension() {
        // Node 0 has lots of CPU but a memory fragment; node 1 the
        // reverse. A memory-heavy demand should pack onto node 0's
        // fragment under VectorBestFit (tightest post-placement free
        // dominant share), where CPU-ranked BestFit would pick node 1.
        let mut a = Node::with_resources(
            NodeId(0),
            ResourceVec::new(CpuMilli(4000), MemMib(4096), BwMbps(10_000)),
        );
        let b = Node::with_resources(
            NodeId(1),
            ResourceVec::new(CpuMilli(4000), MemMib(4096), BwMbps(10_000)),
        );
        a.reserve_vec(ResourceVec::cpu_mem(CpuMilli(100), MemMib(3000)));
        let ns = vec![a, b];
        let demand = ResourceVec::cpu_mem(CpuMilli(200), MemMib(1000));
        assert_eq!(
            PlacementPolicy::VectorBestFit.choose_vec(&ns, demand),
            Some(NodeId(0)),
            "memory fragment on node 0 is the tightest vector fit"
        );
        assert_eq!(
            PlacementPolicy::BestFit.choose_vec(&ns, demand),
            Some(NodeId(0)),
            "cpu ranking also lands on node 0 here (least cpu free)"
        );
        // An io demand binds on bandwidth: the node with the NIC
        // fragment is the tighter vector fit even with equal CPU.
        let mut c = Node::with_resources(
            NodeId(0),
            ResourceVec::new(CpuMilli(4000), MemMib(4096), BwMbps(1000)),
        );
        let d = Node::with_resources(
            NodeId(1),
            ResourceVec::new(CpuMilli(4000), MemMib(4096), BwMbps(10_000)),
        );
        c.reserve_vec(ResourceVec::new(CpuMilli(100), MemMib(64), BwMbps(500)));
        let ns = vec![c, d];
        let io = ResourceVec::new(CpuMilli(200), MemMib(128), BwMbps(400));
        assert_eq!(
            PlacementPolicy::VectorBestFit.choose_vec(&ns, io),
            Some(NodeId(0)),
            "NIC fragment is consumed before the big NIC is broken"
        );
    }

    #[test]
    fn plan_batch_places_big_dominant_shares_first() {
        let ns = vec![
            Node::with_resources(
                NodeId(0),
                ResourceVec::new(CpuMilli(4000), MemMib(4096), BwMbps(10_000)),
            ),
            Node::with_resources(
                NodeId(1),
                ResourceVec::new(CpuMilli(4000), MemMib(4096), BwMbps(10_000)),
            ),
        ];
        // Two big memory demands and two small ones: BFD must not
        // strand a big one behind small fragments.
        let demands = vec![
            ResourceVec::cpu_mem(CpuMilli(100), MemMib(1000)),
            ResourceVec::cpu_mem(CpuMilli(100), MemMib(3000)),
            ResourceVec::cpu_mem(CpuMilli(100), MemMib(1000)),
            ResourceVec::cpu_mem(CpuMilli(100), MemMib(3000)),
        ];
        let plan = plan_batch(PlacementPolicy::VectorBestFit, &ns, &demands).expect("batch fits");
        assert_eq!(plan.len(), 4);
        // Per-node totals must respect capacity.
        let mut used = [ResourceVec::ZERO; 2];
        for (d, n) in demands.iter().zip(&plan) {
            used[n.0 as usize] += *d;
        }
        for (i, u) in used.iter().enumerate() {
            assert!(u.fits_in(ns[i].capacity_vec()), "node {i} over-packed: {u}");
        }
        // The two 3000-MiB demands must land on different nodes (one
        // per node — 6000 MiB would not fit together).
        assert_ne!(plan[1], plan[3]);
        // An unsatisfiable batch yields None, not a partial plan.
        let demands = vec![ResourceVec::cpu_mem(CpuMilli(100), MemMib(5000))];
        assert!(plan_batch(PlacementPolicy::VectorBestFit, &ns, &demands).is_none());
    }
}
