//! Container placement policies.
//!
//! LaSS's control node "finds a cluster node with enough spare capacity or
//! finds a number of nodes that can collectively host the new containers"
//! (§3.3). The policy choice is orthogonal to the paper's contribution, so
//! all three classic heuristics are provided; LaSS defaults to worst-fit
//! (spread for headroom), while the OpenWhisk baseline uses its own
//! sharding scheme in `lass-openwhisk`.

use crate::node::Node;
use crate::resources::{CpuMilli, MemMib};
use crate::NodeId;
use serde::{Deserialize, Serialize};

/// Node-selection heuristic for new containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// First node (by id) that fits.
    FirstFit,
    /// Fitting node with the least free CPU (pack tightly; the default —
    /// it keeps large contiguous blocks available so big DNN containers
    /// are not stranded by fragments of small ones).
    #[default]
    BestFit,
    /// Fitting node with the most free CPU (spread for load headroom).
    WorstFit,
}

impl PlacementPolicy {
    /// Choose a node for a `(cpu, mem)` reservation; `None` if nothing fits.
    pub fn choose(self, nodes: &[Node], cpu: CpuMilli, mem: MemMib) -> Option<NodeId> {
        let fitting = nodes.iter().filter(|n| n.can_fit(cpu, mem));
        match self {
            PlacementPolicy::FirstFit => fitting.min_by_key(|n| n.id()).map(|n| n.id()),
            PlacementPolicy::BestFit => fitting
                .min_by_key(|n| (n.cpu_free(), n.id()))
                .map(|n| n.id()),
            PlacementPolicy::WorstFit => fitting
                .max_by_key(|n| (n.cpu_free(), std::cmp::Reverse(n.id())))
                .map(|n| n.id()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes() -> Vec<Node> {
        let mut a = Node::new(NodeId(0), CpuMilli(4000), MemMib(16384));
        let mut b = Node::new(NodeId(1), CpuMilli(4000), MemMib(16384));
        let c = Node::new(NodeId(2), CpuMilli(4000), MemMib(16384));
        a.reserve(CpuMilli(3000), MemMib(1024)); // 1000 free
        b.reserve(CpuMilli(1000), MemMib(1024)); // 3000 free
        vec![a, b, c] // c: 4000 free
    }

    #[test]
    fn first_fit_takes_lowest_id() {
        let ns = nodes();
        assert_eq!(
            PlacementPolicy::FirstFit.choose(&ns, CpuMilli(500), MemMib(256)),
            Some(NodeId(0))
        );
        // Too big for node 0.
        assert_eq!(
            PlacementPolicy::FirstFit.choose(&ns, CpuMilli(2000), MemMib(256)),
            Some(NodeId(1))
        );
    }

    #[test]
    fn best_fit_packs_tightest() {
        let ns = nodes();
        assert_eq!(
            PlacementPolicy::BestFit.choose(&ns, CpuMilli(500), MemMib(256)),
            Some(NodeId(0))
        );
        assert_eq!(
            PlacementPolicy::BestFit.choose(&ns, CpuMilli(1500), MemMib(256)),
            Some(NodeId(1))
        );
    }

    #[test]
    fn worst_fit_spreads() {
        let ns = nodes();
        assert_eq!(
            PlacementPolicy::WorstFit.choose(&ns, CpuMilli(500), MemMib(256)),
            Some(NodeId(2))
        );
    }

    #[test]
    fn nothing_fits() {
        let ns = nodes();
        for p in [
            PlacementPolicy::FirstFit,
            PlacementPolicy::BestFit,
            PlacementPolicy::WorstFit,
        ] {
            assert_eq!(p.choose(&ns, CpuMilli(4500), MemMib(256)), None);
            assert_eq!(p.choose(&ns, CpuMilli(100), MemMib(20000)), None);
        }
    }

    #[test]
    fn ties_break_deterministically() {
        let ns = vec![
            Node::new(NodeId(0), CpuMilli(4000), MemMib(1024)),
            Node::new(NodeId(1), CpuMilli(4000), MemMib(1024)),
        ];
        assert_eq!(
            PlacementPolicy::WorstFit.choose(&ns, CpuMilli(100), MemMib(1)),
            Some(NodeId(0))
        );
        assert_eq!(
            PlacementPolicy::BestFit.choose(&ns, CpuMilli(100), MemMib(1)),
            Some(NodeId(0))
        );
    }
}
