//! The edge cluster: nodes + containers + capacity accounting.
//!
//! All mutation of containers and node reservations goes through
//! [`Cluster`], which maintains the invariant that every node's reserved
//! resources equal the sum of its resident (non-terminated) containers'
//! allocations. Iteration orders are deterministic (`BTreeMap`s) so
//! simulations replay exactly.

use crate::container::{Container, ContainerState};
use crate::ids::{ContainerId, FnId, NodeId};
use crate::node::Node;
use crate::placement::PlacementPolicy;
use crate::resources::{CpuMilli, Dimension, MemMib, ResourceVec};
use crate::RequestId;
use lass_simcore::SimTime;
use std::collections::BTreeMap;

/// Errors from cluster operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// No node can host the requested reservation.
    InsufficientCapacity {
        /// CPU that was requested.
        cpu: CpuMilli,
        /// Memory that was requested.
        mem: MemMib,
    },
    /// Unknown container id.
    NoSuchContainer(ContainerId),
    /// The requested resize would exceed the hosting node's capacity.
    ResizeExceedsNode(ContainerId),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::InsufficientCapacity { cpu, mem } => {
                write!(f, "no node can host {cpu} + {mem}")
            }
            ClusterError::NoSuchContainer(id) => write!(f, "unknown container {id}"),
            ClusterError::ResizeExceedsNode(id) => {
                write!(f, "resize of {id} exceeds node capacity")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Result of terminating a container: its final record plus the requests
/// that must be re-dispatched elsewhere.
#[derive(Debug)]
pub struct Termination {
    /// The terminated container (state is `Terminated`).
    pub container: Container,
    /// In-service + queued requests orphaned by the termination.
    pub orphans: Vec<RequestId>,
}

/// One candidate in a function's incrementally-maintained weighted
/// dispatch index (see [`Cluster::wrr_candidates`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WrrSlot {
    /// The container.
    pub cid: ContainerId,
    /// WRR dispatch weight: the container's *current* CPU allocation in
    /// milli (never below 1.0), updated in place on every resize.
    pub weight: f64,
    /// Whether the container is warm and not serving anything.
    pub idle: bool,
    /// Whether the container has finished booting (idle or busy) — the
    /// affinity census predicate.
    pub warm: bool,
}

/// A function's dense per-function record: its live container ids and its
/// dispatch index — the containers' WRR weights and readiness flags in
/// creation order (`slots` mirrors `containers` slot for slot) plus the
/// warm census, all maintained incrementally so the per-request dispatch
/// path never walks the container map.
#[derive(Debug, Clone, Default)]
struct FnEntry {
    containers: Vec<ContainerId>,
    slots: Vec<WrrSlot>,
    /// Number of warm slots (kept in lockstep with the flags).
    warm: u64,
}

/// The edge cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    containers: BTreeMap<ContainerId, Container>,
    /// Per-function records, indexed densely by `FnId` (ids are interned
    /// first-seen, so this is a flat vector rather than a map — O(1)
    /// lookups with no tree walk or hashing even at 10⁶ functions).
    /// Weights change only on create/terminate/resize and the idle/warm
    /// flags only through the cluster-level service transitions, so the
    /// index is updated at those (rare) points instead of being rebuilt
    /// per request.
    fns: Vec<FnEntry>,
    next_container: u64,
    placement: PlacementPolicy,
}

/// The WRR dispatch weight of a container allocation.
fn wrr_weight(cpu: CpuMilli) -> f64 {
    f64::from(cpu.0).max(1.0)
}

impl Cluster {
    /// A homogeneous cluster of `node_count` nodes (the paper's testbed is
    /// 3 × (4-core, 16 GB)).
    pub fn homogeneous(
        node_count: u32,
        cpu_per_node: CpuMilli,
        mem_per_node: MemMib,
        placement: PlacementPolicy,
    ) -> Self {
        let nodes = (0..node_count)
            .map(|i| Node::new(NodeId(i), cpu_per_node, mem_per_node))
            .collect();
        Self {
            nodes,
            containers: BTreeMap::new(),
            fns: Vec::new(),
            next_container: 0,
            placement,
        }
    }

    /// A homogeneous cluster with an explicit per-node capacity vector
    /// (bandwidth included).
    pub fn homogeneous_vec(
        node_count: u32,
        capacity_per_node: ResourceVec,
        placement: PlacementPolicy,
    ) -> Self {
        let nodes = (0..node_count)
            .map(|i| Node::with_resources(NodeId(i), capacity_per_node))
            .collect();
        Self {
            nodes,
            containers: BTreeMap::new(),
            fns: Vec::new(),
            next_container: 0,
            placement,
        }
    }

    /// The paper's testbed: 3 nodes × 4 vCPU × 16 GiB. Best-fit packing is
    /// used so large (e.g. 2-vCPU MobileNet) containers are not stranded
    /// by fragments of small ones.
    pub fn paper_testbed() -> Self {
        Self::homogeneous(
            3,
            CpuMilli::from_cores(4.0),
            MemMib(16 * 1024),
            PlacementPolicy::BestFit,
        )
    }

    /// Nodes (read-only).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Placement policy in force.
    pub fn placement(&self) -> PlacementPolicy {
        self.placement
    }

    /// Total CPU capacity across nodes.
    pub fn total_cpu_capacity(&self) -> CpuMilli {
        self.nodes.iter().map(Node::cpu_capacity).sum()
    }

    /// Total reserved CPU across nodes.
    pub fn total_cpu_used(&self) -> CpuMilli {
        self.nodes.iter().map(Node::cpu_used).sum()
    }

    /// Total free CPU across nodes (fragmented; a single container may not
    /// fit even when this is large).
    pub fn total_cpu_free(&self) -> CpuMilli {
        self.nodes.iter().map(Node::cpu_free).sum()
    }

    /// Total memory capacity across nodes.
    pub fn total_mem_capacity(&self) -> MemMib {
        self.nodes.iter().map(Node::mem_capacity).sum()
    }

    /// Total capacity vector across nodes.
    pub fn total_capacity_vec(&self) -> ResourceVec {
        self.nodes.iter().map(Node::capacity_vec).sum()
    }

    /// Total reserved vector across nodes.
    pub fn total_used_vec(&self) -> ResourceVec {
        self.nodes.iter().map(Node::used_vec).sum()
    }

    /// Fraction of cluster CPU currently reserved (the paper's "system
    /// utilization" in §6.6/6.7).
    pub fn cpu_utilization(&self) -> f64 {
        self.total_cpu_used().ratio(self.total_cpu_capacity())
    }

    /// Fraction of cluster capacity reserved along one dimension.
    pub fn utilization(&self, dim: Dimension) -> f64 {
        self.total_used_vec().share(self.total_capacity_vec(), dim)
    }

    /// Create a standard-size container for `fn_id`, choosing a node by the
    /// cluster's placement policy. The container starts cold and becomes
    /// ready at `ready_at`.
    pub fn create_container(
        &mut self,
        fn_id: FnId,
        cpu: CpuMilli,
        mem: MemMib,
        now: SimTime,
        ready_at: SimTime,
    ) -> Result<ContainerId, ClusterError> {
        self.create_container_sized(fn_id, cpu, cpu, mem, now, ready_at)
    }

    /// Create a container whose initial allocation `cpu` may be below its
    /// `standard_cpu` (a pre-deflated container using a capacity fragment;
    /// it may re-inflate to `standard_cpu` later).
    pub fn create_container_sized(
        &mut self,
        fn_id: FnId,
        standard_cpu: CpuMilli,
        cpu: CpuMilli,
        mem: MemMib,
        now: SimTime,
        ready_at: SimTime,
    ) -> Result<ContainerId, ClusterError> {
        self.create_container_vec(
            fn_id,
            standard_cpu,
            ResourceVec::cpu_mem(cpu, mem),
            now,
            ready_at,
        )
    }

    /// Create a container from a full demand vector (`demand.cpu` is the
    /// initial — possibly pre-deflated — allocation), choosing a node by
    /// the cluster's placement policy over every dimension.
    pub fn create_container_vec(
        &mut self,
        fn_id: FnId,
        standard_cpu: CpuMilli,
        demand: ResourceVec,
        now: SimTime,
        ready_at: SimTime,
    ) -> Result<ContainerId, ClusterError> {
        let node_id = self.placement.choose_vec(&self.nodes, demand).ok_or(
            ClusterError::InsufficientCapacity {
                cpu: demand.cpu,
                mem: demand.mem,
            },
        )?;
        self.create_container_on_vec(fn_id, node_id, standard_cpu, demand, now, ready_at)
    }

    /// Create a container on a specific node (used by the OpenWhisk
    /// baseline's sharding scheduler).
    pub fn create_container_on(
        &mut self,
        fn_id: FnId,
        node_id: NodeId,
        standard_cpu: CpuMilli,
        cpu: CpuMilli,
        mem: MemMib,
        now: SimTime,
        ready_at: SimTime,
    ) -> Result<ContainerId, ClusterError> {
        self.create_container_on_vec(
            fn_id,
            node_id,
            standard_cpu,
            ResourceVec::cpu_mem(cpu, mem),
            now,
            ready_at,
        )
    }

    /// Create a container with a full demand vector on a specific node.
    pub fn create_container_on_vec(
        &mut self,
        fn_id: FnId,
        node_id: NodeId,
        standard_cpu: CpuMilli,
        demand: ResourceVec,
        now: SimTime,
        ready_at: SimTime,
    ) -> Result<ContainerId, ClusterError> {
        let node = &mut self.nodes[node_id.0 as usize];
        if !node.can_fit_vec(demand) {
            return Err(ClusterError::InsufficientCapacity {
                cpu: demand.cpu,
                mem: demand.mem,
            });
        }
        node.reserve_vec(demand);
        let id = ContainerId(self.next_container);
        self.next_container += 1;
        let mut ctr = Container::new(
            id,
            fn_id,
            node_id,
            standard_cpu,
            demand.cpu,
            demand.mem,
            now,
            ready_at,
        );
        ctr.set_bandwidth(demand.bandwidth);
        self.containers.insert(id, ctr);
        let entry = self.fn_entry_mut(fn_id);
        entry.containers.push(id);
        entry.slots.push(WrrSlot {
            cid: id,
            weight: wrr_weight(demand.cpu),
            idle: false, // cold-starting until marked ready
            warm: false,
        });
        Ok(id)
    }

    /// Terminate a container, releasing its node reservation and returning
    /// the orphaned requests for re-dispatch.
    pub fn terminate_container(
        &mut self,
        cid: ContainerId,
        now: SimTime,
    ) -> Result<Termination, ClusterError> {
        let mut ctr = self
            .containers
            .remove(&cid)
            .ok_or(ClusterError::NoSuchContainer(cid))?;
        let orphans = ctr.terminate(now);
        let node = &mut self.nodes[ctr.node().0 as usize];
        node.release_vec(ctr.demand());
        if let Some(e) = self.fns.get_mut(ctr.fn_id().0 as usize) {
            e.containers.retain(|&c| c != cid);
            if let Some(pos) = e.slots.iter().position(|s| s.cid == cid) {
                if e.slots[pos].warm {
                    e.warm -= 1;
                }
                e.slots.remove(pos);
            }
        }
        Ok(Termination {
            container: ctr,
            orphans,
        })
    }

    /// Resize a container's CPU allocation in place (deflation or
    /// re-inflation). Memory is never resized (§5).
    pub fn resize_container_cpu(
        &mut self,
        cid: ContainerId,
        new_cpu: CpuMilli,
    ) -> Result<(), ClusterError> {
        let ctr = self
            .containers
            .get(&cid)
            .ok_or(ClusterError::NoSuchContainer(cid))?;
        let old = ctr.cpu();
        if new_cpu > ctr.standard_cpu() {
            return Err(ClusterError::ResizeExceedsNode(cid));
        }
        let node = &mut self.nodes[ctr.node().0 as usize];
        if new_cpu > old && (new_cpu - old) > node.cpu_free() {
            return Err(ClusterError::ResizeExceedsNode(cid));
        }
        node.resize_cpu(old, new_cpu);
        let fn_id = {
            let c = self.containers.get_mut(&cid).expect("checked above");
            c.set_cpu(new_cpu);
            c.fn_id()
        };
        // Keep the dispatch index's weight current: resizes are the only
        // way a live container's WRR weight changes.
        if let Some(slot) = self.slot_mut(fn_id, cid) {
            slot.weight = wrr_weight(new_cpu);
        }
        Ok(())
    }

    /// The function's record, growing the dense vector on first sight.
    fn fn_entry_mut(&mut self, fn_id: FnId) -> &mut FnEntry {
        let idx = fn_id.0 as usize;
        if idx >= self.fns.len() {
            self.fns.resize_with(idx + 1, FnEntry::default);
        }
        &mut self.fns[idx]
    }

    /// Mutable access to a container's dispatch-index slot.
    fn slot_mut(&mut self, fn_id: FnId, cid: ContainerId) -> Option<&mut WrrSlot> {
        self.fns
            .get_mut(fn_id.0 as usize)?
            .slots
            .iter_mut()
            .find(|s| s.cid == cid)
    }

    /// Mark a cold-starting container ready (idle, warm). Returns
    /// `false` — without touching anything — when the container is gone
    /// or not in the `Starting` state, so stale readiness events are
    /// harmless.
    pub fn mark_container_ready(&mut self, cid: ContainerId) -> bool {
        let Some(c) = self.containers.get_mut(&cid) else {
            return false;
        };
        if !matches!(c.state(), ContainerState::Starting { .. }) {
            return false;
        }
        c.mark_ready();
        let fn_id = c.fn_id();
        let slot = self.slot_mut(fn_id, cid).expect("live container indexed");
        slot.idle = true;
        slot.warm = true;
        self.fns[fn_id.0 as usize].warm += 1;
        true
    }

    /// Begin service on `cid` if it is idle with queued work, keeping
    /// the dispatch index coherent. `None` when the container is gone,
    /// not idle, or has nothing queued.
    pub fn begin_service(&mut self, cid: ContainerId, now: SimTime) -> Option<RequestId> {
        let c = self.containers.get_mut(&cid)?;
        let rid = c.try_begin_service(now)?;
        let fn_id = c.fn_id();
        self.slot_mut(fn_id, cid)
            .expect("live container indexed")
            .idle = false;
        Some(rid)
    }

    /// Finish the in-service request on `cid`, keeping the dispatch
    /// index coherent. `None` when the container is gone; panics (like
    /// the underlying container) when it is not busy.
    pub fn finish_service(&mut self, cid: ContainerId, now: SimTime) -> Option<RequestId> {
        let c = self.containers.get_mut(&cid)?;
        let rid = c.complete_service(now);
        let fn_id = c.fn_id();
        self.slot_mut(fn_id, cid)
            .expect("live container indexed")
            .idle = true;
        Some(rid)
    }

    /// The function's weighted dispatch index: every live container's
    /// WRR weight and readiness flags, in creation order — the same
    /// candidates (same order, same weights) the historical per-request
    /// walk over [`Cluster::fn_containers`] produced, but maintained
    /// incrementally on create/terminate/resize and the service
    /// transitions instead of being rebuilt per request.
    pub fn wrr_candidates(&self, fn_id: FnId) -> &[WrrSlot] {
        self.fns
            .get(fn_id.0 as usize)
            .map_or(&[], |e| e.slots.as_slice())
    }

    /// Immutable container access.
    pub fn container(&self, cid: ContainerId) -> Option<&Container> {
        self.containers.get(&cid)
    }

    /// Mutable container access.
    pub fn container_mut(&mut self, cid: ContainerId) -> Option<&mut Container> {
        self.containers.get_mut(&cid)
    }

    /// Ids of the live containers of a function (deterministic order).
    pub fn containers_of(&self, fn_id: FnId) -> &[ContainerId] {
        self.fns
            .get(fn_id.0 as usize)
            .map_or(&[], |e| e.containers.as_slice())
    }

    /// Live containers of a function.
    pub fn fn_containers(&self, fn_id: FnId) -> impl Iterator<Item = &Container> {
        self.containers_of(fn_id)
            .iter()
            .filter_map(move |cid| self.containers.get(cid))
    }

    /// Aggregate CPU currently allocated to a function.
    pub fn fn_cpu(&self, fn_id: FnId) -> CpuMilli {
        self.fn_containers(fn_id).map(Container::cpu).sum()
    }

    /// Number of live containers of a function.
    pub fn fn_container_count(&self, fn_id: FnId) -> usize {
        self.containers_of(fn_id).len()
    }

    /// Number of *warm* containers of a function: booted (past their
    /// cold start) and not terminated — the fleet that could serve a
    /// request right now without paying a cold start. The affinity
    /// router's per-site census, answered in O(1) from the maintained
    /// count (the federation sums this over every function at every
    /// routing decision).
    pub fn fn_warm_count(&self, fn_id: FnId) -> u64 {
        self.fns.get(fn_id.0 as usize).map_or(0, |e| e.warm)
    }

    /// The fastest (highest-CPU) idle schedulable container of a
    /// function, resolved in one pass over the weighted dispatch index
    /// (no container-map lookups) — the hot-path query behind the
    /// default shared-queue dispatch. Ties keep the later container in
    /// index order, matching a `max_by` scan over the same sequence.
    pub fn fastest_idle_container(&self, fn_id: FnId) -> Option<ContainerId> {
        let mut best: Option<(ContainerId, f64)> = None;
        for s in self.wrr_candidates(fn_id) {
            if !s.idle {
                continue;
            }
            match best {
                Some((_, bw)) if s.weight < bw => {}
                _ => best = Some((s.cid, s.weight)),
            }
        }
        best.map(|(cid, _)| cid)
    }

    /// All live containers (deterministic order).
    pub fn all_containers(&self) -> impl Iterator<Item = &Container> {
        self.containers.values()
    }

    /// Ids of all live containers, in id (creation) order — the
    /// deterministic victim pool for fault-injection bursts.
    pub fn container_ids(&self) -> Vec<ContainerId> {
        self.containers.keys().copied().collect()
    }

    /// Total number of live containers.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Verify capacity bookkeeping: each node's reserved resources must
    /// equal the sum of its resident containers **on every dimension**
    /// (cpu, mem, bandwidth), and allocated + free must re-compose the
    /// capacity vector. Panics on violation; intended for tests and
    /// debug builds.
    pub fn check_invariants(&self) {
        for node in &self.nodes {
            let mut used = ResourceVec::ZERO;
            let mut count = 0u32;
            for ctr in self.containers.values() {
                if ctr.node() == node.id() {
                    assert!(
                        ctr.state() != ContainerState::Terminated,
                        "terminated container retained in cluster"
                    );
                    used += ctr.demand();
                    count += 1;
                }
            }
            for dim in Dimension::ALL {
                assert_eq!(
                    node.used_vec().get(dim),
                    used.get(dim),
                    "{dim} accounting drift on {}",
                    node.id()
                );
                assert_eq!(
                    node.used_vec().get(dim) + node.free_vec().get(dim),
                    node.capacity_vec().get(dim),
                    "{dim} allocated+free != capacity on {}",
                    node.id()
                );
            }
            assert_eq!(
                node.container_count(),
                count,
                "count drift on {}",
                node.id()
            );
        }
        for (idx, entry) in self.fns.iter().enumerate() {
            let fn_id = FnId(idx as u32);
            let list = &entry.containers;
            for cid in list {
                let ctr = self
                    .containers
                    .get(cid)
                    .expect("fn entry points at live container");
                assert_eq!(ctr.fn_id(), fn_id, "container index corrupted");
            }
            // The dispatch index must be the container walk, slot for
            // slot: same containers in the same order, weights equal to
            // the current allocation, flags equal to the current state.
            let slots = self.wrr_candidates(fn_id);
            assert_eq!(slots.len(), list.len(), "dispatch index drift on {fn_id}");
            let mut warm = 0u64;
            for (slot, cid) in slots.iter().zip(list) {
                assert_eq!(slot.cid, *cid, "dispatch order drift on {fn_id}");
                let ctr = self.containers.get(cid).expect("checked above");
                assert_eq!(
                    slot.weight,
                    wrr_weight(ctr.cpu()),
                    "stale weight for {cid} of {fn_id}"
                );
                assert_eq!(
                    slot.idle,
                    ctr.state() == ContainerState::Idle,
                    "stale idle flag for {cid} of {fn_id}"
                );
                let is_warm = matches!(ctr.state(), ContainerState::Idle | ContainerState::Busy);
                assert_eq!(slot.warm, is_warm, "stale warm flag for {cid} of {fn_id}");
                warm += u64::from(is_warm);
            }
            assert_eq!(
                self.fn_warm_count(fn_id),
                warm,
                "warm census drift on {fn_id}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cluster {
        Cluster::homogeneous(2, CpuMilli(4000), MemMib(8192), PlacementPolicy::WorstFit)
    }

    #[test]
    fn create_and_terminate_round_trip() {
        let mut cl = small();
        let cid = cl
            .create_container(
                FnId(0),
                CpuMilli(1000),
                MemMib(512),
                SimTime::ZERO,
                SimTime::from_millis(500),
            )
            .unwrap();
        assert_eq!(cl.container_count(), 1);
        assert_eq!(cl.fn_container_count(FnId(0)), 1);
        assert_eq!(cl.total_cpu_used(), CpuMilli(1000));
        cl.check_invariants();
        let term = cl.terminate_container(cid, SimTime::from_secs(1)).unwrap();
        assert!(term.orphans.is_empty());
        assert_eq!(cl.container_count(), 0);
        assert_eq!(cl.total_cpu_used(), CpuMilli::ZERO);
        cl.check_invariants();
    }

    #[test]
    fn placement_spreads_with_worst_fit() {
        let mut cl = small();
        let a = cl
            .create_container(
                FnId(0),
                CpuMilli(1000),
                MemMib(512),
                SimTime::ZERO,
                SimTime::ZERO,
            )
            .unwrap();
        let b = cl
            .create_container(
                FnId(0),
                CpuMilli(1000),
                MemMib(512),
                SimTime::ZERO,
                SimTime::ZERO,
            )
            .unwrap();
        let na = cl.container(a).unwrap().node();
        let nb = cl.container(b).unwrap().node();
        assert_ne!(na, nb, "worst-fit should alternate nodes");
        cl.check_invariants();
    }

    #[test]
    fn capacity_exhaustion_is_reported() {
        let mut cl = small();
        for _ in 0..8 {
            cl.create_container(
                FnId(0),
                CpuMilli(1000),
                MemMib(512),
                SimTime::ZERO,
                SimTime::ZERO,
            )
            .unwrap();
        }
        let err = cl
            .create_container(
                FnId(0),
                CpuMilli(1000),
                MemMib(512),
                SimTime::ZERO,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, ClusterError::InsufficientCapacity { .. }));
        cl.check_invariants();
    }

    #[test]
    fn deflation_frees_capacity_for_new_containers() {
        let mut cl = small();
        let mut ids = Vec::new();
        for _ in 0..8 {
            ids.push(
                cl.create_container(
                    FnId(0),
                    CpuMilli(1000),
                    MemMib(512),
                    SimTime::ZERO,
                    SimTime::ZERO,
                )
                .unwrap(),
            );
        }
        // Deflate four containers by 30% => frees 1200 milli spread 2/2.
        for cid in ids.iter().take(4) {
            cl.resize_container_cpu(*cid, CpuMilli(700)).unwrap();
        }
        cl.check_invariants();
        assert_eq!(cl.total_cpu_used(), CpuMilli(8000 - 1200));
        // A 0.5-vCPU container now fits.
        cl.create_container(
            FnId(1),
            CpuMilli(500),
            MemMib(256),
            SimTime::ZERO,
            SimTime::ZERO,
        )
        .unwrap();
        cl.check_invariants();
    }

    #[test]
    fn reinflation_respects_node_capacity() {
        let mut cl =
            Cluster::homogeneous(1, CpuMilli(2000), MemMib(4096), PlacementPolicy::FirstFit);
        let a = cl
            .create_container(
                FnId(0),
                CpuMilli(1000),
                MemMib(512),
                SimTime::ZERO,
                SimTime::ZERO,
            )
            .unwrap();
        cl.resize_container_cpu(a, CpuMilli(600)).unwrap();
        // Fill the freed space.
        cl.create_container(
            FnId(1),
            CpuMilli(1400),
            MemMib(512),
            SimTime::ZERO,
            SimTime::ZERO,
        )
        .unwrap();
        // Re-inflation no longer fits.
        let err = cl.resize_container_cpu(a, CpuMilli(1000)).unwrap_err();
        assert!(matches!(err, ClusterError::ResizeExceedsNode(_)));
        cl.check_invariants();
    }

    #[test]
    fn resize_rejects_above_standard() {
        let mut cl = small();
        let a = cl
            .create_container(
                FnId(0),
                CpuMilli(1000),
                MemMib(512),
                SimTime::ZERO,
                SimTime::ZERO,
            )
            .unwrap();
        assert!(cl.resize_container_cpu(a, CpuMilli(1500)).is_err());
    }

    #[test]
    fn terminate_unknown_container() {
        let mut cl = small();
        let err = cl
            .terminate_container(ContainerId(99), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, ClusterError::NoSuchContainer(ContainerId(99)));
    }

    #[test]
    fn orphans_survive_termination() {
        let mut cl = small();
        let a = cl
            .create_container(
                FnId(0),
                CpuMilli(1000),
                MemMib(512),
                SimTime::ZERO,
                SimTime::ZERO,
            )
            .unwrap();
        cl.mark_container_ready(a);
        {
            let c = cl.container_mut(a).unwrap();
            c.enqueue(RequestId(1));
            c.enqueue(RequestId(2));
        }
        cl.begin_service(a, SimTime::ZERO);
        let term = cl.terminate_container(a, SimTime::from_secs(1)).unwrap();
        assert_eq!(term.orphans, vec![RequestId(1), RequestId(2)]);
    }

    #[test]
    fn fn_cpu_aggregates_deflated_sizes() {
        let mut cl = small();
        let a = cl
            .create_container(
                FnId(3),
                CpuMilli(1000),
                MemMib(512),
                SimTime::ZERO,
                SimTime::ZERO,
            )
            .unwrap();
        cl.create_container(
            FnId(3),
            CpuMilli(1000),
            MemMib(512),
            SimTime::ZERO,
            SimTime::ZERO,
        )
        .unwrap();
        cl.resize_container_cpu(a, CpuMilli(750)).unwrap();
        assert_eq!(cl.fn_cpu(FnId(3)), CpuMilli(1750));
        assert_eq!(cl.fn_container_count(FnId(3)), 2);
    }

    #[test]
    fn warm_census_tracks_container_lifecycle() {
        let mut cl = small();
        let a = cl
            .create_container(
                FnId(0),
                CpuMilli(1000),
                MemMib(512),
                SimTime::ZERO,
                SimTime::from_millis(500),
            )
            .unwrap();
        cl.create_container(
            FnId(0),
            CpuMilli(1000),
            MemMib(512),
            SimTime::ZERO,
            SimTime::from_millis(500),
        )
        .unwrap();
        // Both containers still cold-starting: nothing is warm.
        assert_eq!(cl.fn_warm_count(FnId(0)), 0);
        assert_eq!(cl.fn_container_count(FnId(0)), 2);
        cl.mark_container_ready(a);
        assert_eq!(cl.fn_warm_count(FnId(0)), 1);
        // A busy container still counts as warm.
        cl.container_mut(a).unwrap().enqueue(RequestId(1));
        cl.begin_service(a, SimTime::from_secs(1));
        assert_eq!(cl.fn_warm_count(FnId(0)), 1);
        // Other functions see their own (empty) census.
        assert_eq!(cl.fn_warm_count(FnId(9)), 0);
        cl.check_invariants();
    }

    #[test]
    fn paper_testbed_shape() {
        let cl = Cluster::paper_testbed();
        assert_eq!(cl.nodes().len(), 3);
        assert_eq!(cl.total_cpu_capacity(), CpuMilli(12000));
        assert_eq!(cl.total_mem_capacity(), MemMib(3 * 16 * 1024));
    }
}
