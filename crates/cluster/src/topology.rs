//! A federated topology: named cluster sites behind a front-end router.
//!
//! The paper's testbed is one edge cluster; its future-work direction —
//! and the federation layer built on top of this type — runs a single
//! logical serverless platform over *several* resource pools (an edge
//! rack plus a regional cloud, say), each an independent [`Cluster`]
//! reached over a network hop of known latency. [`Topology`] is the
//! policy-free description of that fleet: who the sites are, what they
//! can host, and how far away they sit. Deciding *which* site serves a
//! request is the router's job (`lass_simcore::router`).

use crate::cluster::Cluster;
use crate::resources::CpuMilli;
use std::fmt;

/// Identifies a site within one [`Topology`] (its index, in insertion
/// order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// One site: a named cluster plus its network distance from the
/// front-end router.
#[derive(Debug, Clone)]
pub struct Site {
    /// Display name, unique within the topology (`"edge"`, `"cloud"`…).
    pub name: String,
    /// The site's resource pool.
    pub cluster: Cluster,
    /// One-way network latency (seconds) from the front-end router to
    /// the site. Requests dispatched here arrive this much later, and
    /// the hop counts toward their response time.
    pub latency_secs: f64,
}

/// An ordered collection of sites, keyed by [`SiteId`].
///
/// The degenerate single-site topology (see [`Topology::single`])
/// represents the classic one-cluster deployment; policies built for it
/// run unchanged when more sites are added.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    sites: Vec<Site>,
}

impl Topology {
    /// An empty topology; add sites with [`Topology::add_site`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The degenerate topology: one zero-latency site named `"local"`.
    /// Simulations over it reproduce the plain single-cluster runs.
    pub fn single(cluster: Cluster) -> Self {
        let mut t = Self::new();
        t.add_site("local", cluster, 0.0);
        t
    }

    /// Append a site and return its id.
    pub fn add_site(
        &mut self,
        name: impl Into<String>,
        cluster: Cluster,
        latency_secs: f64,
    ) -> SiteId {
        let id = SiteId(self.sites.len() as u32);
        self.sites.push(Site {
            name: name.into(),
            cluster,
            latency_secs,
        });
        id
    }

    /// Check the topology is usable: at least one site, unique names,
    /// finite non-negative latencies, non-empty clusters.
    pub fn validate(&self) -> Result<(), String> {
        if self.sites.is_empty() {
            return Err("topology needs at least one site".into());
        }
        for (i, site) in self.sites.iter().enumerate() {
            if site.name.is_empty() {
                return Err(format!("site {i} has an empty name"));
            }
            if !(site.latency_secs.is_finite() && site.latency_secs >= 0.0) {
                return Err(format!(
                    "site {:?}: latency must be finite and non-negative",
                    site.name
                ));
            }
            if site.cluster.nodes().is_empty() {
                return Err(format!("site {:?} has no nodes", site.name));
            }
            if self.sites[..i].iter().any(|s| s.name == site.name) {
                return Err(format!("duplicate site name {:?}", site.name));
            }
        }
        Ok(())
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the topology has no sites yet.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The site with the given id.
    pub fn site(&self, id: SiteId) -> Option<&Site> {
        self.sites.get(id.0 as usize)
    }

    /// All sites in id order.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Consume the topology into its sites (id order).
    pub fn into_sites(self) -> Vec<Site> {
        self.sites
    }

    /// Total CPU capacity across every site.
    pub fn total_cpu_capacity(&self) -> CpuMilli {
        self.sites
            .iter()
            .map(|s| s.cluster.total_cpu_capacity())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementPolicy;
    use crate::resources::MemMib;

    fn cluster(nodes: u32) -> Cluster {
        Cluster::homogeneous(
            nodes,
            CpuMilli(4000),
            MemMib(16 * 1024),
            PlacementPolicy::BestFit,
        )
    }

    #[test]
    fn single_site_is_valid_and_degenerate() {
        let t = Topology::single(Cluster::paper_testbed());
        assert!(t.validate().is_ok());
        assert_eq!(t.len(), 1);
        assert_eq!(t.site(SiteId(0)).unwrap().latency_secs, 0.0);
        assert_eq!(t.total_cpu_capacity(), CpuMilli(12000));
    }

    #[test]
    fn multi_site_capacity_aggregates() {
        let mut t = Topology::new();
        let edge = t.add_site("edge", cluster(2), 0.002);
        let cloud = t.add_site("cloud", cluster(8), 0.040);
        assert_eq!((edge, cloud), (SiteId(0), SiteId(1)));
        assert!(t.validate().is_ok());
        assert_eq!(t.total_cpu_capacity(), CpuMilli(40_000));
        assert_eq!(t.site(cloud).unwrap().name, "cloud");
    }

    #[test]
    fn validation_rejects_bad_topologies() {
        assert!(Topology::new().validate().is_err());

        let mut dup = Topology::new();
        dup.add_site("a", cluster(1), 0.0);
        dup.add_site("a", cluster(1), 0.0);
        assert!(dup.validate().is_err());

        let mut neg = Topology::new();
        neg.add_site("a", cluster(1), -1.0);
        assert!(neg.validate().is_err());

        let mut empty = Topology::new();
        empty.add_site("a", cluster(0), 0.0);
        assert!(empty.validate().is_err());
    }
}
