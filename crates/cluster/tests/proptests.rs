//! Property tests: cluster capacity accounting must survive arbitrary
//! interleavings of create / terminate / resize operations, and the
//! incrementally-maintained weighted dispatch index must stay
//! equivalent to a full walk of the container map through arbitrary
//! lifecycle/resize sequences.

use lass_cluster::{
    BwMbps, Cluster, ClusterError, ContainerId, ContainerState, CpuMilli, Dimension, FnId, MemMib,
    PlacementPolicy, RequestId, ResourceVec,
};
use lass_simcore::SimTime;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Create {
        fn_id: u32,
        cpu: u32,
        mem: u32,
    },
    /// Vector create: a full three-dimensional demand (io-class shapes
    /// carry bandwidth, memory-class shapes skew toward `mem`).
    CreateVec {
        fn_id: u32,
        cpu: u32,
        mem: u32,
        bw: u32,
    },
    Terminate {
        idx: usize,
    },
    Resize {
        idx: usize,
        ratio: f64,
    },
    Reinflate {
        idx: usize,
    },
    Ready {
        idx: usize,
    },
    Serve {
        idx: usize,
    },
    Finish {
        idx: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..4, 100u32..2500, 64u32..2048).prop_map(|(fn_id, cpu, mem)| Op::Create {
            fn_id,
            cpu,
            mem
        }),
        (0usize..64).prop_map(|idx| Op::Terminate { idx }),
        ((0usize..64), 0.3f64..1.0).prop_map(|(idx, ratio)| Op::Resize { idx, ratio }),
        (0usize..64).prop_map(|idx| Op::Reinflate { idx }),
        (0usize..64).prop_map(|idx| Op::Ready { idx }),
        (0usize..64).prop_map(|idx| Op::Serve { idx }),
        (0usize..64).prop_map(|idx| Op::Finish { idx }),
    ]
}

/// Apply one lifecycle operation to the cluster — the single driver
/// shared by the capacity-accounting and index-equivalence proptests,
/// so the two suites cannot silently diverge in what they exercise.
/// Unplaceable creates are skipped; lifecycle ops against containers in
/// the wrong state are no-ops (both are part of the property space).
fn apply_op(
    cluster: &mut Cluster,
    live: &mut Vec<ContainerId>,
    next_rid: &mut u64,
    op: Op,
    now: SimTime,
) {
    match op {
        Op::Create { fn_id, cpu, mem } => {
            match cluster.create_container(FnId(fn_id), CpuMilli(cpu), MemMib(mem), now, now) {
                Ok(cid) => live.push(cid),
                Err(ClusterError::InsufficientCapacity { .. }) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        Op::CreateVec {
            fn_id,
            cpu,
            mem,
            bw,
        } => {
            let demand = ResourceVec::new(CpuMilli(cpu), MemMib(mem), BwMbps(bw));
            match cluster.create_container_vec(FnId(fn_id), CpuMilli(cpu), demand, now, now) {
                Ok(cid) => live.push(cid),
                Err(ClusterError::InsufficientCapacity { .. }) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        Op::Terminate { idx } => {
            if !live.is_empty() {
                let cid = live.remove(idx % live.len());
                cluster
                    .terminate_container(cid, now)
                    .expect("live container");
            }
        }
        Op::Resize { idx, ratio } => {
            if !live.is_empty() {
                let cid = live[idx % live.len()];
                let std = cluster.container(cid).expect("live").standard_cpu();
                // Down-resizes always succeed; treat as exercised.
                let _ = cluster.resize_container_cpu(cid, std.scale(ratio).max(CpuMilli(1)));
            }
        }
        Op::Reinflate { idx } => {
            if !live.is_empty() {
                let cid = live[idx % live.len()];
                let std = cluster.container(cid).expect("live").standard_cpu();
                // May fail when the node filled up meanwhile: fine.
                let _ = cluster.resize_container_cpu(cid, std);
            }
        }
        Op::Ready { idx } => {
            if !live.is_empty() {
                // A no-op unless the container is still starting.
                cluster.mark_container_ready(live[idx % live.len()]);
            }
        }
        Op::Serve { idx } => {
            if !live.is_empty() {
                let cid = live[idx % live.len()];
                if cluster.container(cid).expect("live").is_idle() {
                    *next_rid += 1;
                    cluster
                        .container_mut(cid)
                        .expect("live")
                        .enqueue(RequestId(*next_rid));
                    assert!(cluster.begin_service(cid, now).is_some());
                }
            }
        }
        Op::Finish { idx } => {
            if !live.is_empty() {
                let cid = live[idx % live.len()];
                if cluster.container(cid).expect("live").state() == ContainerState::Busy {
                    assert!(cluster.finish_service(cid, now).is_some());
                }
            }
        }
    }
}

/// The vector-era operation mix: everything the legacy mix exercises
/// plus three-dimensional creates, so the bandwidth axis sees the same
/// interleavings the cpu/mem axes always have.
fn vec_op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        op_strategy(),
        (0u32..4, 100u32..2500, 64u32..2048, 0u32..600).prop_map(|(fn_id, cpu, mem, bw)| {
            Op::CreateVec {
                fn_id,
                cpu,
                mem,
                bw,
            }
        }),
    ]
}

/// Weighted candidates: (container, WRR weight) pairs.
type Candidates = Vec<(ContainerId, f64)>;

/// The historical per-request dispatch walk: every live container of the
/// function in index order with its current WRR weight, plus the idle
/// subset — the reference the maintained index must match exactly.
fn full_walk(cluster: &Cluster, f: FnId) -> (Candidates, Candidates) {
    let mut all = Vec::new();
    let mut idle = Vec::new();
    for c in cluster.fn_containers(f) {
        if !c.is_schedulable() {
            continue;
        }
        let w = f64::from(c.cpu().0).max(1.0);
        all.push((c.id(), w));
        if c.state() == ContainerState::Idle {
            idle.push((c.id(), w));
        }
    }
    (all, idle)
}

/// The historical `fastest_idle_container` walk over the container map.
fn fastest_idle_walk(cluster: &Cluster, f: FnId) -> Option<ContainerId> {
    let mut best: Option<(ContainerId, f64)> = None;
    for c in cluster.fn_containers(f) {
        if !c.is_schedulable() || c.state() != ContainerState::Idle {
            continue;
        }
        let w = f64::from(c.cpu().0).max(1.0);
        match best {
            Some((_, bw)) if w < bw => {}
            _ => best = Some((c.id(), w)),
        }
    }
    best.map(|(cid, _)| cid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn accounting_survives_random_operations(
        ops in prop::collection::vec(op_strategy(), 1..120),
        policy in prop_oneof![
            Just(PlacementPolicy::FirstFit),
            Just(PlacementPolicy::BestFit),
            Just(PlacementPolicy::WorstFit),
        ],
    ) {
        let mut cluster = Cluster::homogeneous(3, CpuMilli(4000), MemMib(8192), policy);
        let mut live: Vec<ContainerId> = Vec::new();
        let mut next_rid = 0u64;
        let mut t = 0u64;
        for op in ops {
            t += 1;
            let now = SimTime::from_secs(t);
            apply_op(&mut cluster, &mut live, &mut next_rid, op, now);
            // The load-bearing check: per-node accounting equals the sum of
            // resident containers after every single operation.
            cluster.check_invariants();
            // Aggregates stay within physical limits.
            prop_assert!(cluster.total_cpu_used() <= cluster.total_cpu_capacity());
            prop_assert!(cluster.cpu_utilization() <= 1.0 + 1e-12);
        }
        // Tear-down still balances.
        for cid in live {
            cluster.terminate_container(cid, SimTime::from_secs(t + 1)).expect("live");
        }
        cluster.check_invariants();
        prop_assert_eq!(cluster.total_cpu_used(), CpuMilli::ZERO);
        prop_assert_eq!(cluster.container_count(), 0);
    }

    /// Equivalence of the incrementally-maintained weighted dispatch
    /// index with a full container-map walk across arbitrary
    /// create / terminate / resize / ready / serve / finish sequences:
    /// same candidates in the same order with the same (bit-equal)
    /// weights, the same idle subset, the same fastest-idle answer, and
    /// the same warm census.
    #[test]
    fn wrr_index_matches_full_walk(
        ops in prop::collection::vec(op_strategy(), 1..160),
    ) {
        let mut cluster =
            Cluster::homogeneous(3, CpuMilli(4000), MemMib(8192), PlacementPolicy::BestFit);
        let mut live: Vec<ContainerId> = Vec::new();
        let mut next_rid = 0u64;
        let mut t = 0u64;
        for op in ops {
            t += 1;
            let now = SimTime::from_secs(t);
            apply_op(&mut cluster, &mut live, &mut next_rid, op, now);
            // Index ≡ walk, for every function after every operation.
            for f in 0..4u32 {
                let f = FnId(f);
                let (all, idle) = full_walk(&cluster, f);
                let slots = cluster.wrr_candidates(f);
                prop_assert_eq!(slots.len(), all.len(), "candidate count drift");
                for (slot, (cid, w)) in slots.iter().zip(&all) {
                    prop_assert_eq!(slot.cid, *cid, "order drift");
                    prop_assert_eq!(slot.weight.to_bits(), w.to_bits(), "weight drift");
                }
                let idle_slots: Vec<(ContainerId, f64)> = slots
                    .iter()
                    .filter(|s| s.idle)
                    .map(|s| (s.cid, s.weight))
                    .collect();
                prop_assert_eq!(idle_slots, idle, "idle subset drift");
                prop_assert_eq!(
                    cluster.fastest_idle_container(f),
                    fastest_idle_walk(&cluster, f),
                    "fastest-idle drift"
                );
                let warm_walk = cluster
                    .fn_containers(f)
                    .filter(|c| {
                        matches!(c.state(), ContainerState::Idle | ContainerState::Busy)
                    })
                    .count() as u64;
                prop_assert_eq!(cluster.fn_warm_count(f), warm_walk, "warm census drift");
            }
            cluster.check_invariants();
        }
    }

    /// Per-dimension conservation under the full container lifecycle —
    /// including chaos-style kills: `Op::Terminate` removes a container
    /// in *any* state (busy included), which is exactly what the chaos
    /// layer's container-crash fault does. After every operation,
    /// allocated + free must equal capacity in **every** dimension, on
    /// every node (via `check_invariants`) and in aggregate, and a full
    /// tear-down must return every dimension to zero.
    #[test]
    fn vector_accounting_conserves_every_dimension(
        ops in prop::collection::vec(vec_op_strategy(), 1..120),
        policy in prop_oneof![
            Just(PlacementPolicy::FirstFit),
            Just(PlacementPolicy::BestFit),
            Just(PlacementPolicy::WorstFit),
            Just(PlacementPolicy::VectorBestFit),
        ],
    ) {
        let cap = ResourceVec::new(CpuMilli(4000), MemMib(8192), BwMbps(2000));
        let mut cluster = Cluster::homogeneous_vec(3, cap, policy);
        let mut live: Vec<ContainerId> = Vec::new();
        let mut next_rid = 0u64;
        let mut t = 0u64;
        for op in ops {
            t += 1;
            let now = SimTime::from_secs(t);
            apply_op(&mut cluster, &mut live, &mut next_rid, op, now);
            cluster.check_invariants();
            let used = cluster.total_used_vec();
            let capacity = cluster.total_capacity_vec();
            let mut free = ResourceVec::ZERO;
            for node in cluster.nodes() {
                free += node.free_vec();
            }
            for dim in Dimension::ALL {
                prop_assert!(used.get(dim) <= capacity.get(dim), "{} over capacity", dim);
                prop_assert_eq!(
                    used.get(dim) + free.get(dim),
                    capacity.get(dim),
                    "{} allocated+free != capacity",
                    dim
                );
            }
        }
        for cid in live {
            cluster.terminate_container(cid, SimTime::from_secs(t + 1)).expect("live");
        }
        cluster.check_invariants();
        prop_assert_eq!(cluster.total_used_vec(), ResourceVec::ZERO);
        prop_assert_eq!(cluster.container_count(), 0);
    }

    /// A cpu/mem-only create is *defined* as a vector create whose
    /// bandwidth demand is zero: replaying the same operation sequence
    /// through `create_container` and through `create_container_vec` +
    /// a zero-bandwidth vector must produce identical clusters — same
    /// container ids on the same nodes, same per-node used/free vectors
    /// in every dimension, after every operation.
    #[test]
    fn defaulted_vector_create_matches_legacy(
        ops in prop::collection::vec(op_strategy(), 1..100),
        policy in prop_oneof![
            Just(PlacementPolicy::FirstFit),
            Just(PlacementPolicy::BestFit),
            Just(PlacementPolicy::WorstFit),
        ],
    ) {
        let mut legacy =
            Cluster::homogeneous(3, CpuMilli(4000), MemMib(8192), policy);
        let mut vector =
            Cluster::homogeneous(3, CpuMilli(4000), MemMib(8192), policy);
        let (mut live_l, mut live_v): (Vec<ContainerId>, Vec<ContainerId>) =
            (Vec::new(), Vec::new());
        let (mut rid_l, mut rid_v) = (0u64, 0u64);
        let mut t = 0u64;
        for op in ops {
            t += 1;
            let now = SimTime::from_secs(t);
            let twin = match op {
                Op::Create { fn_id, cpu, mem } => Op::CreateVec { fn_id, cpu, mem, bw: 0 },
                ref other => other.clone(),
            };
            apply_op(&mut legacy, &mut live_l, &mut rid_l, op, now);
            apply_op(&mut vector, &mut live_v, &mut rid_v, twin, now);
            prop_assert_eq!(&live_l, &live_v, "container id stream diverged");
            for (a, b) in legacy.nodes().iter().zip(vector.nodes()) {
                prop_assert_eq!(a.used_vec(), b.used_vec());
                prop_assert_eq!(a.free_vec(), b.free_vec());
                prop_assert_eq!(a.container_count(), b.container_count());
            }
            for &cid in &live_l {
                prop_assert_eq!(
                    legacy.container(cid).expect("live").node(),
                    vector.container(cid).expect("live").node(),
                    "placement diverged"
                );
            }
        }
    }

    #[test]
    fn placement_never_overfills_a_node(
        sizes in prop::collection::vec((100u32..3000, 64u32..4096), 1..40),
        policy in prop_oneof![
            Just(PlacementPolicy::FirstFit),
            Just(PlacementPolicy::BestFit),
            Just(PlacementPolicy::WorstFit),
        ],
    ) {
        let mut cluster = Cluster::homogeneous(2, CpuMilli(4000), MemMib(4096), policy);
        for (i, (cpu, mem)) in sizes.into_iter().enumerate() {
            let _ = cluster.create_container(
                FnId(i as u32 % 3),
                CpuMilli(cpu),
                MemMib(mem),
                SimTime::ZERO,
                SimTime::ZERO,
            );
        }
        for node in cluster.nodes() {
            prop_assert!(node.cpu_used() <= node.cpu_capacity());
            prop_assert!(node.mem_used() <= node.mem_capacity());
        }
        cluster.check_invariants();
    }
}
