//! Property tests: cluster capacity accounting must survive arbitrary
//! interleavings of create / terminate / resize operations.

use lass_cluster::{Cluster, ClusterError, ContainerId, CpuMilli, FnId, MemMib, PlacementPolicy};
use lass_simcore::SimTime;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Create { fn_id: u32, cpu: u32, mem: u32 },
    Terminate { idx: usize },
    Resize { idx: usize, ratio: f64 },
    Reinflate { idx: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..4, 100u32..2500, 64u32..2048).prop_map(|(fn_id, cpu, mem)| Op::Create {
            fn_id,
            cpu,
            mem
        }),
        (0usize..64).prop_map(|idx| Op::Terminate { idx }),
        ((0usize..64), 0.3f64..1.0).prop_map(|(idx, ratio)| Op::Resize { idx, ratio }),
        (0usize..64).prop_map(|idx| Op::Reinflate { idx }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn accounting_survives_random_operations(
        ops in prop::collection::vec(op_strategy(), 1..120),
        policy in prop_oneof![
            Just(PlacementPolicy::FirstFit),
            Just(PlacementPolicy::BestFit),
            Just(PlacementPolicy::WorstFit),
        ],
    ) {
        let mut cluster = Cluster::homogeneous(3, CpuMilli(4000), MemMib(8192), policy);
        let mut live: Vec<ContainerId> = Vec::new();
        let mut t = 0u64;
        for op in ops {
            t += 1;
            let now = SimTime::from_secs(t);
            match op {
                Op::Create { fn_id, cpu, mem } => {
                    match cluster.create_container(
                        FnId(fn_id),
                        CpuMilli(cpu),
                        MemMib(mem),
                        now,
                        now,
                    ) {
                        Ok(cid) => live.push(cid),
                        Err(ClusterError::InsufficientCapacity { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected error: {e}"),
                    }
                }
                Op::Terminate { idx } => {
                    if !live.is_empty() {
                        let cid = live.remove(idx % live.len());
                        cluster.terminate_container(cid, now).expect("live container");
                    }
                }
                Op::Resize { idx, ratio } => {
                    if !live.is_empty() {
                        let cid = live[idx % live.len()];
                        let std = cluster.container(cid).expect("live").standard_cpu();
                        let target = std.scale(ratio).max(CpuMilli(1));
                        // Down-resizes always succeed; treat as exercised.
                        let _ = cluster.resize_container_cpu(cid, target);
                    }
                }
                Op::Reinflate { idx } => {
                    if !live.is_empty() {
                        let cid = live[idx % live.len()];
                        let std = cluster.container(cid).expect("live").standard_cpu();
                        // May fail when the node filled up meanwhile: fine.
                        let _ = cluster.resize_container_cpu(cid, std);
                    }
                }
            }
            // The load-bearing check: per-node accounting equals the sum of
            // resident containers after every single operation.
            cluster.check_invariants();
            // Aggregates stay within physical limits.
            prop_assert!(cluster.total_cpu_used() <= cluster.total_cpu_capacity());
            prop_assert!(cluster.cpu_utilization() <= 1.0 + 1e-12);
        }
        // Tear-down still balances.
        for cid in live {
            cluster.terminate_container(cid, SimTime::from_secs(t + 1)).expect("live");
        }
        cluster.check_invariants();
        prop_assert_eq!(cluster.total_cpu_used(), CpuMilli::ZERO);
        prop_assert_eq!(cluster.container_count(), 0);
    }

    #[test]
    fn placement_never_overfills_a_node(
        sizes in prop::collection::vec((100u32..3000, 64u32..4096), 1..40),
        policy in prop_oneof![
            Just(PlacementPolicy::FirstFit),
            Just(PlacementPolicy::BestFit),
            Just(PlacementPolicy::WorstFit),
        ],
    ) {
        let mut cluster = Cluster::homogeneous(2, CpuMilli(4000), MemMib(4096), policy);
        for (i, (cpu, mem)) in sizes.into_iter().enumerate() {
            let _ = cluster.create_container(
                FnId(i as u32 % 3),
                CpuMilli(cpu),
                MemMib(mem),
                SimTime::ZERO,
                SimTime::ZERO,
            );
        }
        for node in cluster.nodes() {
            prop_assert!(node.cpu_used() <= node.cpu_capacity());
            prop_assert!(node.mem_used() <= node.mem_capacity());
        }
        cluster.check_invariants();
    }
}
